// The observability invariants (ISSUE 4): convergence traces must
// faithfully mirror what the solvers did. Three anchor properties —
// the CG residual trajectory is non-increasing on a well-conditioned
// SPD system, the Chebyshev trajectory stays under its a-priori
// (√κ−1)/(√κ+1) bound, and the push arc-work total equals the
// WorkBudget accounting *exactly* — plus the bounded-memory contracts
// of the ring and the collector, and the metrics registry semantics.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/impreg.h"
#include "util/json.h"

namespace impreg {
namespace {

#ifdef IMPREG_OBSERVABILITY

// Metrics collection is process-global; leave it the way we found it.
class ScopedMetrics {
 public:
  ScopedMetrics() {
    ImpregEnableMetrics(true);
    MetricsRegistry::Get().Reset();
  }
  ~ScopedMetrics() { ImpregEnableMetrics(false); }
};

Graph RingOfCliques() { return CavemanGraph(12, 8); }

// —— Solver-trajectory invariants ————————————————————————————————

TEST(TraceTest, CgResidualTraceIsMonotoneNonIncreasingOnSpd) {
  const Graph g = RingOfCliques();
  const NormalizedLaplacianOperator lap(g);
  // γI + (1−γ)ℒ with γ = 0.5: spectrum in [0.5, 1.5], κ = 3 — well
  // conditioned, where the CG residual-norm trajectory is monotone
  // (CG only guarantees monotone A-norm error in general).
  const ShiftedOperator a(lap, 0.5, 0.5);
  Vector b(g.NumNodes());
  Rng rng(7);
  for (double& v : b) v = rng.NextGaussian();

  ScopedTraceCapture capture;
  const CgResult result = ConjugateGradient(a, b);
  ASSERT_TRUE(result.converged);

  const SolverTrace* trace = TraceCollector::Get().Latest("cg");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->finished());
  EXPECT_EQ(trace->status(), SolveStatus::kConverged);
  EXPECT_EQ(trace->iterations(), result.iterations);

  std::vector<double> residuals;
  for (const TraceEvent& e : trace->Events()) {
    if (e.kind == TraceEventKind::kResidual) residuals.push_back(e.value);
  }
  ASSERT_GE(residuals.size(), 3u);
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    EXPECT_LE(residuals[i], residuals[i - 1] * (1.0 + 1e-12))
        << "residual rose at iteration " << i;
  }
  EXPECT_DOUBLE_EQ(residuals.back(), result.diagnostics.final_residual);
}

TEST(TraceTest, ChebyshevTraceStaysUnderAprioriBound) {
  const Graph g = RingOfCliques();
  const NormalizedLaplacianOperator lap(g);
  const double lo = 0.5, hi = 1.5;  // Exact bounds for γI + (1−γ)ℒ, γ=.5.
  const ShiftedOperator a(lap, 0.5, 0.5);
  Vector b(g.NumNodes());
  Rng rng(8);
  for (double& v : b) v = rng.NextGaussian();

  ScopedTraceCapture capture;
  const ChebyshevResult result = ChebyshevSolve(a, b, lo, hi);
  ASSERT_TRUE(result.converged);

  const SolverTrace* trace = TraceCollector::Get().Latest("chebyshev");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->status(), SolveStatus::kConverged);

  // A-priori shape: ‖r_k‖ ≲ C·ρ^k·‖b‖ with ρ = (√κ−1)/(√κ+1). The
  // classical bound is on the A-norm of the error with C = 2; going
  // through the residual 2-norm costs at most another √κ·κ factor, so
  // C = 10 is a safe envelope for κ = 3.
  const double kappa = hi / lo;
  const double rho = (std::sqrt(kappa) - 1.0) / (std::sqrt(kappa) + 1.0);
  const double norm_b = Norm2(b);
  for (const TraceEvent& e : trace->Events()) {
    if (e.kind != TraceEventKind::kResidual) continue;
    const double bound = 10.0 * std::pow(rho, e.iteration) * norm_b;
    EXPECT_LE(e.value, bound)
        << "iteration " << e.iteration << " above the Chebyshev envelope";
  }
}

TEST(TraceTest, PushArcWorkTotalEqualsWorkBudgetAccountingExactly) {
  const Graph g = RingOfCliques();
  WorkBudget budget(1 << 30);  // Effectively unlimited; push charges it.
  PushOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-5;
  options.budget = &budget;

  ScopedTraceCapture capture;
  const PushResult result = ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
  ASSERT_TRUE(result.converged);
  ASSERT_GT(result.pushes, 0);

  const SolverTrace* trace = TraceCollector::Get().Latest("push");
  ASSERT_NE(trace, nullptr);
  // One kArcWork event per push, value = outdegree of the pushed node:
  // the trace total, the result's work field, and the budget's charge
  // are three accountings of the same quantity and must agree exactly.
  EXPECT_EQ(trace->KindCount(TraceEventKind::kArcWork), result.pushes);
  EXPECT_EQ(static_cast<std::int64_t>(trace->KindTotal(TraceEventKind::kArcWork)),
            result.work);
  EXPECT_EQ(budget.Spent(), result.work);
}

TEST(TraceTest, PushArcWorkEqualityHoldsThroughBudgetExhaustion) {
  const Graph g = RingOfCliques();
  WorkBudget budget(40);  // Exhausts almost immediately.
  PushOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-6;
  options.budget = &budget;

  ScopedTraceCapture capture;
  const PushResult result = ApproximatePageRank(g, SingleNodeSeed(g, 3), options);
  ASSERT_EQ(result.diagnostics.status, SolveStatus::kBudgetExhausted);

  const SolverTrace* trace = TraceCollector::Get().Latest("push");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(trace->KindTotal(TraceEventKind::kArcWork)),
            result.work);
  EXPECT_EQ(budget.Spent(), result.work);
  // The budget event records the arcs spent at the stop.
  EXPECT_EQ(trace->KindCount(TraceEventKind::kBudget), 1);
  EXPECT_EQ(static_cast<std::int64_t>(trace->KindTotal(TraceEventKind::kBudget)),
            budget.Spent());
}

TEST(TraceTest, IncrementalPprTraceMatchesBudgetAndMetrics) {
  ScopedMetrics metrics;
  Rng rng(21);
  const Graph base = ErdosRenyi(50, 0.15, rng);
  Vector seed(50, 0.0);
  seed[0] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-7;
  WorkBudget budget(1 << 30);  // Never exhausts; push still charges it.
  options.budget = &budget;

  ScopedTraceCapture capture;
  IncrementalPersonalizedPageRank inc(DynamicGraph::FromGraph(base), seed,
                                      options);
  const SolverTrace* trace =
      TraceCollector::Get().Latest("incremental_ppr");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->finished());
  EXPECT_EQ(trace->status(), SolveStatus::kConverged);
  // One kArcWork event per push (value = outdegree): the trace total,
  // the push count, and the budget's charge must agree exactly.
  EXPECT_EQ(trace->KindCount(TraceEventKind::kArcWork), inc.TotalPushes());
  EXPECT_EQ(
      static_cast<std::int64_t>(trace->KindTotal(TraceEventKind::kArcWork)),
      budget.Spent());

  MetricsRegistry& registry = MetricsRegistry::Get();
  EXPECT_EQ(
      registry.FindOrCreateCounter("solver.incremental_ppr.solves")->Value(),
      1);
  EXPECT_EQ(
      registry.FindOrCreateCounter("solver.incremental_ppr.pushes")->Value(),
      inc.TotalPushes());

  inc.AddEdge(0, 7);
  EXPECT_EQ(registry.FindOrCreateCounter("solver.incremental_ppr.add_edges")
                ->Value(),
            1);
  EXPECT_GE(
      registry.FindOrCreateCounter("solver.incremental_ppr.repaired_columns")
          ->Value(),
      1);
  EXPECT_EQ(
      registry.FindOrCreateCounter("solver.incremental_ppr.pushes")->Value(),
      inc.TotalPushes());
}

TEST(TraceTest, MonteCarloTraceAndMetricsMirrorWalksAndSteps) {
  ScopedMetrics metrics;
  const Graph g = CavemanGraph(4, 6);
  MonteCarloOptions options;
  options.walks_per_node = 64;

  ScopedTraceCapture capture;
  const MonteCarloResult result =
      MonteCarloPersonalizedPageRankSolve(g, 0, options);
  ASSERT_EQ(result.diagnostics.status, SolveStatus::kConverged);

  const SolverTrace* trace = TraceCollector::Get().Latest("montecarlo");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->finished());
  // One kArcWork event per walk (value = edges traversed): counts and
  // totals are the result's own walk/step accounting.
  EXPECT_EQ(trace->KindCount(TraceEventKind::kArcWork), result.walks);
  EXPECT_EQ(
      static_cast<std::int64_t>(trace->KindTotal(TraceEventKind::kArcWork)),
      result.steps);

  MetricsRegistry& registry = MetricsRegistry::Get();
  EXPECT_EQ(registry.FindOrCreateCounter("solver.montecarlo.solves")->Value(),
            1);
  EXPECT_EQ(registry.FindOrCreateCounter("solver.montecarlo.walks")->Value(),
            result.walks);
  EXPECT_EQ(registry.FindOrCreateCounter("solver.montecarlo.steps")->Value(),
            result.steps);
}

TEST(TraceTest, CacheInvalidationCountersMirrorEpochBumps) {
  ScopedMetrics metrics;
  const Graph g = CavemanGraph(4, 6);
  QueryEngine engine(g);

  // Two push queries (state-bearing) + one nibble (no warm state), all
  // inserted at epoch 0.
  Query push1;
  push1.seeds = {0};
  Query push2;
  push2.seeds = {7};
  Query nib;
  nib.method = QueryMethod::kNibble;
  nib.seeds = {3};
  engine.RunBatch({push1, push2, nib});
  ASSERT_EQ(engine.cache().Size(), 3u);

  // The bump retires epoch 0: all three entries stop exact-matching
  // (service.cache.invalidated), and only the two push entries keep
  // serving warm (service.cache.warm_demoted).
  engine.AddEdge(0, 12);
  MetricsRegistry& registry = MetricsRegistry::Get();
  EXPECT_EQ(registry.FindOrCreateCounter("service.cache.invalidated")->Value(),
            3);
  EXPECT_EQ(
      registry.FindOrCreateCounter("service.cache.warm_demoted")->Value(), 2);
  EXPECT_EQ(engine.cache().stats().invalidated, 3);
  EXPECT_EQ(engine.cache().stats().warm_demoted, 2);

  // A second bump counts only epoch-1 entries; the epoch-0 ones were
  // already retired and must not be re-counted.
  engine.RunBatch({push1});
  engine.AddEdge(1, 13);
  EXPECT_EQ(registry.FindOrCreateCounter("service.cache.invalidated")->Value(),
            4);
  EXPECT_EQ(
      registry.FindOrCreateCounter("service.cache.warm_demoted")->Value(), 3);
}

// —— Bounded-memory contracts ————————————————————————————————————

TEST(TraceTest, RingOverwritesOldestAndKeepsEvictionProofTotals) {
  SolverTrace trace("test", /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(i, TraceEventKind::kResidual, static_cast<double>(i + 1));
  }
  EXPECT_EQ(trace.TotalRecorded(), 10);
  EXPECT_EQ(trace.EventsDropped(), 6);

  const std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: iterations 6, 7, 8, 9 survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].iteration, 6 + i);
    EXPECT_DOUBLE_EQ(events[i].value, 7.0 + i);
  }
  // SumValues covers the retained tail only; KindTotal survives
  // eviction (1 + 2 + … + 10 = 55, tail is 7 + 8 + 9 + 10 = 34).
  EXPECT_DOUBLE_EQ(trace.SumValues(TraceEventKind::kResidual), 34.0);
  EXPECT_DOUBLE_EQ(trace.KindTotal(TraceEventKind::kResidual), 55.0);
  EXPECT_EQ(trace.KindCount(TraceEventKind::kResidual), 10);
  EXPECT_EQ(trace.KindCount(TraceEventKind::kFault), 0);
}

TEST(TraceTest, CollectorRefusesBeginPastTheTraceCap) {
  TraceCollector& collector = TraceCollector::Get();
  collector.Enable(/*ring_capacity=*/16, /*max_traces=*/2);
  collector.Clear();
  SolverTrace* a = collector.Begin("a");
  SolverTrace* b = collector.Begin("b");
  SolverTrace* c = collector.Begin("c");
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(c, nullptr);  // Refused, not evicted: a and b stay valid.
  EXPECT_EQ(collector.TracesDropped(), 1);
  EXPECT_EQ(collector.Traces().size(), 2u);
  EXPECT_EQ(collector.Latest("b"), b);
  EXPECT_EQ(collector.Latest("c"), nullptr);
  collector.Disable();
}

TEST(TraceTest, BeginReturnsNullWhenDisabled) {
  TraceCollector& collector = TraceCollector::Get();
  collector.Disable();
  EXPECT_EQ(collector.Begin("cg"), nullptr);
}

TEST(TraceTest, CollectorJsonIsParseableAndCarriesTheSchema) {
  const Graph g = RingOfCliques();
  ScopedTraceCapture capture;
  ApproximatePageRank(g, SingleNodeSeed(g, 0), {});
  const std::string json = TraceCollector::Get().ToJson();
  const JsonParseResult parsed = JsonParse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const JsonValue* schema =
      parsed.value.FindOfType("schema", JsonValue::Type::kString);
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), "impreg-trace-v1");
  const JsonValue* traces =
      parsed.value.FindOfType("traces", JsonValue::Type::kArray);
  ASSERT_NE(traces, nullptr);
  ASSERT_FALSE(traces->Items().empty());
}

// —— Metrics registry semantics ——————————————————————————————————

TEST(MetricsTest, CounterMergesShardsDeterministically) {
  ScopedMetrics metrics;
  Counter* counter = MetricsRegistry::Get().FindOrCreateCounter("test.adds");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 1000; ++i) counter->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), 8000);
}

TEST(MetricsTest, RegistryHandlesAreStableAndSnapshotIsNameSorted) {
  ScopedMetrics metrics;
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* c1 = registry.FindOrCreateCounter("test.zeta");
  Counter* c2 = registry.FindOrCreateCounter("test.alpha");
  EXPECT_EQ(registry.FindOrCreateCounter("test.zeta"), c1);
  c1->Add(2);
  c2->Add(1);
  registry.FindOrCreateGauge("test.gauge")->Set(3.5);
  registry.FindOrCreateHistogram("test.hist")->Observe(100.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  bool saw_alpha = false, saw_zeta = false;
  for (const auto& c : snapshot.counters) {
    if (c.name == "test.alpha") {
      saw_alpha = true;
      EXPECT_EQ(c.value, 1);
    }
    if (c.name == "test.zeta") {
      saw_zeta = true;
      EXPECT_EQ(c.value, 2);
    }
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_zeta);

  // The snapshot JSON must parse with our own parser.
  const JsonParseResult parsed = JsonParse(snapshot.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_NE(parsed.value.FindOfType("counters", JsonValue::Type::kObject),
            nullptr);
}

TEST(MetricsTest, HistogramBucketsByLog2AndKeepsSum) {
  ScopedMetrics metrics;
  Histogram* hist = MetricsRegistry::Get().FindOrCreateHistogram("test.h");
  hist->Observe(0.5);  // Bucket 0 absorbs values < 1.
  hist->Observe(1.0);  // [1, 2) → bucket 0.
  hist->Observe(5.0);  // [4, 8) → bucket 2.
  hist->Observe(5.5);
  EXPECT_EQ(hist->Count(), 4);
  EXPECT_DOUBLE_EQ(hist->Sum(), 12.0);
  const std::vector<std::int64_t> buckets = hist->BucketCounts();
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[2], 2);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsHandles) {
  ScopedMetrics metrics;
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* counter = registry.FindOrCreateCounter("test.reset");
  counter->Add(7);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(registry.FindOrCreateCounter("test.reset"), counter);
  counter->Add(1);
  EXPECT_EQ(counter->Value(), 1);
}

TEST(MetricsTest, ScopedTimerRecordsIntoItsHistogram) {
  ScopedMetrics metrics;
  { ScopedMetricTimer timer("test.timer_ns"); }
  Histogram* hist =
      MetricsRegistry::Get().FindOrCreateHistogram("test.timer_ns");
  EXPECT_EQ(hist->Count(), 1);
}

TEST(MetricsTest, SolverCountersFlowThroughTheMacros) {
  ScopedMetrics metrics;
  const Graph g = RingOfCliques();
  const PushResult result = ApproximatePageRank(g, SingleNodeSeed(g, 0), {});
  MetricsRegistry& registry = MetricsRegistry::Get();
  EXPECT_EQ(registry.FindOrCreateCounter("solver.push.solves")->Value(), 1);
  EXPECT_EQ(registry.FindOrCreateCounter("solver.push.pushes")->Value(),
            result.pushes);
  EXPECT_EQ(registry.FindOrCreateCounter("solver.push.arc_work")->Value(),
            result.work);
}

#endif  // IMPREG_OBSERVABILITY

}  // namespace
}  // namespace impreg
