#include "graph/io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(IoTest, ParseSimpleEdgeList) {
  const auto g = ParseEdgeList("0 1\n1 2\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3);
  EXPECT_EQ(g->NumEdges(), 2);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 1.0);
}

TEST(IoTest, ParseWeights) {
  const auto g = ParseEdgeList("0 1 2.5\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 2.5);
}

TEST(IoTest, CrlfAndTrailingWhitespaceAccepted) {
  // CRLF line endings: every line (weighted or not) carries a '\r' that
  // the trailing-garbage probe must not mistake for a fourth field.
  const auto crlf = ParseEdgeList("# nodes 4\r\n0 1\r\n1 2 2.5\r\n");
  ASSERT_TRUE(crlf.has_value());
  EXPECT_EQ(crlf->NumNodes(), 4);
  EXPECT_EQ(crlf->NumEdges(), 2);
  EXPECT_DOUBLE_EQ(crlf->EdgeWeight(1, 2), 2.5);

  // Trailing blanks and tabs after the last field.
  const auto blanks = ParseEdgeList("0 1 \n1 2 2.5 \t\n2 3\t\n");
  ASSERT_TRUE(blanks.has_value());
  EXPECT_EQ(blanks->NumEdges(), 3);
  EXPECT_DOUBLE_EQ(blanks->EdgeWeight(1, 2), 2.5);

  // Tolerance must not weaken the probe: interior garbage still fails.
  EXPECT_FALSE(ParseEdgeList("0 1 2.5 x\r\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 1 2 3\r\n").has_value());
}

TEST(MetisTest, CrlfAndTrailingWhitespaceAccepted) {
  const auto g = ParseMetisOrError("3 2 001\r\n2 0.5 \r\n1 0.5 3 2.0\t\r\n2 2.0 \n");
  ASSERT_TRUE(g.ok()) << g.error;
  EXPECT_EQ(g.graph->NumNodes(), 3);
  EXPECT_EQ(g.graph->NumEdges(), 2);
  EXPECT_DOUBLE_EQ(g.graph->EdgeWeight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g.graph->EdgeWeight(1, 2), 2.0);
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  const auto g = ParseEdgeList("# header\n\n% other comment\n0 1\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 1);
}

TEST(IoTest, NodesHeaderAllowsIsolatedTrailingNodes) {
  const auto g = ParseEdgeList("# nodes 10\n0 1\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 10);
  EXPECT_EQ(g->NumEdges(), 1);
}

TEST(IoTest, NodesHeaderSmallerThanMaxIdFails) {
  EXPECT_FALSE(ParseEdgeList("# nodes 2\n0 5\n").has_value());
}

TEST(IoTest, MalformedInputs) {
  EXPECT_FALSE(ParseEdgeList("0\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 x\n").has_value());
  EXPECT_FALSE(ParseEdgeList("-1 2\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 1 0.0\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 1 -3\n").has_value());
  EXPECT_FALSE(ParseEdgeList("0 1 2 3\n").has_value());
}

TEST(IoTest, EmptyInputIsEmptyGraph) {
  const auto g = ParseEdgeList("");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 0);
}

TEST(IoTest, RoundTripThroughString) {
  Rng rng(5);
  const Graph original = ErdosRenyi(50, 0.15, rng);
  const auto parsed = ParseEdgeList(WriteEdgeListString(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->NumNodes(), original.NumNodes());
  ASSERT_EQ(parsed->NumEdges(), original.NumEdges());
  for (NodeId u = 0; u < original.NumNodes(); ++u) {
    const auto na = original.Neighbors(u);
    const auto nb = parsed->Neighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].head, nb[i].head);
      EXPECT_DOUBLE_EQ(na[i].weight, nb[i].weight);
    }
  }
}

TEST(IoTest, RoundTripWeightsExactly) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.1234567890123456789);
  builder.AddEdge(1, 2, 7.0);
  builder.AddEdge(2, 2, 3.25);  // Self-loop.
  const Graph g = builder.Build();
  const auto parsed = ParseEdgeList(WriteEdgeListString(g));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->EdgeWeight(0, 1), g.EdgeWeight(0, 1));
  EXPECT_DOUBLE_EQ(parsed->EdgeWeight(2, 2), 3.25);
}

TEST(IoTest, FileRoundTrip) {
  const Graph g = CompleteGraph(5);
  const std::string path = testing::TempDir() + "/impreg_io_test.txt";
  ASSERT_TRUE(WriteEdgeList(g, path));
  const auto parsed = ReadEdgeList(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumEdges(), 10);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadEdgeList("/nonexistent/impreg/file.txt").has_value());
}


TEST(MetisTest, ParseUnweighted) {
  // Triangle: 3 nodes, 3 edges.
  const auto g = ParseMetis("3 3\n2 3\n1 3\n1 2\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3);
  EXPECT_EQ(g->NumEdges(), 3);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
}

TEST(MetisTest, ParseWeighted) {
  const auto g = ParseMetis("2 1 001\n2 2.5\n1 2.5\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 2.5);
}

TEST(MetisTest, CommentsAndIsolatedNodes) {
  const auto g = ParseMetis("% header comment\n4 1\n2\n1\n\n\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 4);
  EXPECT_EQ(g->NumEdges(), 1);
  EXPECT_DOUBLE_EQ(g->Degree(2), 0.0);
}

TEST(MetisTest, MalformedInputs) {
  EXPECT_FALSE(ParseMetis("").has_value());
  EXPECT_FALSE(ParseMetis("junk\n").has_value());
  // Edge count mismatch.
  EXPECT_FALSE(ParseMetis("3 2\n2\n1\n\n").has_value());
  // Asymmetric adjacency.
  EXPECT_FALSE(ParseMetis("3 1\n2\n\n\n").has_value());
  // Out-of-range neighbor.
  EXPECT_FALSE(ParseMetis("2 1\n3\n1\n").has_value());
  // Self-loop.
  EXPECT_FALSE(ParseMetis("1 1\n1\n").has_value());
  // Unsupported vertex-weight format.
  EXPECT_FALSE(ParseMetis("2 1 011\n2 1\n1 1\n").has_value());
}

TEST(MetisTest, RoundTripUnweighted) {
  Rng rng(9);
  const Graph original = ErdosRenyi(40, 0.2, rng);
  const auto parsed = ParseMetis(WriteMetisString(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->NumNodes(), original.NumNodes());
  ASSERT_EQ(parsed->NumEdges(), original.NumEdges());
  for (NodeId u = 0; u < original.NumNodes(); ++u) {
    EXPECT_DOUBLE_EQ(parsed->Degree(u), original.Degree(u));
  }
}

TEST(MetisTest, RoundTripWeighted) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(1, 2, 3.25);
  builder.AddEdge(0, 3);
  const Graph g = builder.Build();
  const auto parsed = ParseMetis(WriteMetisString(g));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->EdgeWeight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(parsed->EdgeWeight(1, 2), 3.25);
  EXPECT_DOUBLE_EQ(parsed->EdgeWeight(0, 3), 1.0);
}

TEST(MetisTest, SelfLoopWriteDies) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0);
  const Graph g = builder.Build();
  EXPECT_DEATH(WriteMetisString(g), "self-loops");
}

TEST(MetisTest, FileRoundTrip) {
  const Graph g = CompleteGraph(6);
  const std::string path = testing::TempDir() + "/impreg_metis_test.graph";
  ASSERT_TRUE(WriteMetis(g, path));
  const auto parsed = ReadMetis(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumEdges(), 15);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace impreg
