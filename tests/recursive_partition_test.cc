#include "flow/recursive_partition.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(KwayTest, OneBlockIsTrivial) {
  const Graph g = CycleGraph(10);
  const KwayResult result = KwayPartition(g, 1);
  EXPECT_EQ(result.sizes, std::vector<std::int64_t>{10});
  EXPECT_DOUBLE_EQ(result.cut, 0.0);
}

TEST(KwayTest, FourWayGridIsBalancedAndCheap) {
  const Graph g = GridGraph(16, 16);
  const KwayResult result = KwayPartition(g, 4);
  ASSERT_EQ(result.sizes.size(), 4u);
  for (std::int64_t size : result.sizes) {
    EXPECT_NEAR(size, 64, 20);
  }
  // Ideal 4-way grid cut ~2*16=32 edges; random assignment ~360.
  EXPECT_LT(result.cut, 120.0);
  // Every node labeled in range.
  for (int p : result.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(KwayTest, NonPowerOfTwoBlocks) {
  Rng rng(1);
  const Graph g = ErdosRenyi(300, 0.04, rng);
  const KwayResult result = KwayPartition(g, 3);
  ASSERT_EQ(result.sizes.size(), 3u);
  std::int64_t total = 0;
  for (std::int64_t size : result.sizes) {
    EXPECT_GT(size, 0);
    EXPECT_NEAR(size, 100, 45);
    total += size;
  }
  EXPECT_EQ(total, 300);
}

TEST(KwayTest, RecoversCavemanCliques) {
  const Graph g = CavemanGraph(4, 10);
  const KwayResult result = KwayPartition(g, 4);
  // The 4 ring bridges are the only cut candidates; a perfect 4-way
  // partition cuts exactly 4 edges.
  EXPECT_LE(result.cut, 8.0);
  // Each clique should be monochromatic.
  int pure_cliques = 0;
  for (int c = 0; c < 4; ++c) {
    const int label = result.part[c * 10];
    bool pure = true;
    for (NodeId i = 0; i < 10; ++i) {
      if (result.part[c * 10 + i] != label) pure = false;
    }
    if (pure) ++pure_cliques;
  }
  EXPECT_GE(pure_cliques, 3);
}

TEST(KwayTest, KEqualsNGivesSingletons) {
  const Graph g = CompleteGraph(6);
  const KwayResult result = KwayPartition(g, 6);
  std::vector<int> sorted = result.part;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 6; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_DOUBLE_EQ(result.cut, 15.0);  // All edges cut.
}

TEST(KwayTest, CutMatchesManualCount) {
  Rng rng(2);
  const Graph g = ErdosRenyi(50, 0.2, rng);
  const KwayResult result = KwayPartition(g, 5);
  double manual = 0.0;
  for (NodeId u = 0; u < 50; ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (arc.head > u && result.part[u] != result.part[arc.head]) {
        manual += arc.weight;
      }
    }
  }
  EXPECT_DOUBLE_EQ(result.cut, manual);
}

TEST(KwayTest, TooManyBlocksDies) {
  const Graph g = PathGraph(3);
  EXPECT_DEATH(KwayPartition(g, 4), "");
}

}  // namespace
}  // namespace impreg
