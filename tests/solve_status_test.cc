// The status taxonomy (core/solve_status.h) and the cooperative
// WorkBudget (core/work_budget.h): the severity fold behind every
// driver's "summarize my sub-solves" step, pinned as a full truth
// table, plus the budget's arc accounting and its opt-in wall-clock
// deadline.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_status.h"
#include "core/work_budget.h"

namespace impreg {
namespace {

const std::vector<SolveStatus> kAllStatuses = {
    SolveStatus::kConverged,       SolveStatus::kMaxIterations,
    SolveStatus::kBudgetExhausted, SolveStatus::kShed,
    SolveStatus::kBreakdown,       SolveStatus::kNonFinite,
    SolveStatus::kInvalidInput,
};

TEST(SolveStatusTest, MergeStatusFoldsToTheHigherSeverityOverAllPairs) {
  // kAllStatuses is ordered by severity, so the expected merge of any
  // pair is simply whichever sits later in the list — all 49 pairs.
  for (std::size_t i = 0; i < kAllStatuses.size(); ++i) {
    for (std::size_t j = 0; j < kAllStatuses.size(); ++j) {
      const SolveStatus a = kAllStatuses[i];
      const SolveStatus b = kAllStatuses[j];
      const SolveStatus expected = i >= j ? a : b;
      EXPECT_EQ(MergeStatus(a, b), expected)
          << SolveStatusName(a) << " + " << SolveStatusName(b);
    }
  }
}

TEST(SolveStatusTest, MergeStatusIsCommutativeUpToSeverity) {
  for (const SolveStatus a : kAllStatuses) {
    for (const SolveStatus b : kAllStatuses) {
      EXPECT_EQ(StatusSeverity(MergeStatus(a, b)),
                StatusSeverity(MergeStatus(b, a)));
    }
  }
}

TEST(SolveStatusTest, SeverityRanksAreDistinctAndUsabilityIsConsistent) {
  // Distinct ranks (the fold needs a total order), and exactly the
  // three early-stop-or-better outcomes count as usable.
  std::vector<bool> seen(7, false);
  for (const SolveStatus s : kAllStatuses) {
    const int rank = StatusSeverity(s);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 7);
    EXPECT_FALSE(seen[rank]) << "duplicate severity " << rank;
    seen[rank] = true;
    EXPECT_EQ(StatusIsUsable(s), rank <= StatusSeverity(
                                             SolveStatus::kBudgetExhausted));
  }
}

TEST(SolveStatusTest, MergingAUsableWithAnUnusableIsUnusable) {
  EXPECT_FALSE(StatusIsUsable(
      MergeStatus(SolveStatus::kConverged, SolveStatus::kNonFinite)));
  EXPECT_TRUE(StatusIsUsable(
      MergeStatus(SolveStatus::kMaxIterations, SolveStatus::kBudgetExhausted)));
}

TEST(WorkBudgetTest, ArcCapIsDeterministicAndSticky) {
  WorkBudget budget(100);
  budget.Charge(60);
  EXPECT_FALSE(budget.Exhausted());
  budget.Charge(40);
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.Spent(), 100);
  EXPECT_EQ(budget.Limit(), 100);
  // Sticky: the flag survives even though no further charges arrive.
  EXPECT_TRUE(budget.Exhausted());
}

TEST(WorkBudgetTest, UnlimitedBudgetNeverExhausts) {
  WorkBudget budget;
  budget.Charge(1 << 30);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.Limit(), 0);
}

TEST(WorkBudgetTest, ForceExhaustedShortCircuits) {
  WorkBudget budget(1 << 20);
  budget.ForceExhausted();
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.Spent(), 0);
}

TEST(WorkBudgetTest, WallClockDeadlineIsOptInAndOnlyCheckedInExhausted) {
  // A generous arc cap with a ~10ms deadline: Charge() alone never
  // trips it (the deadline is consulted only at chunk boundaries,
  // i.e. inside Exhausted()).
  WorkBudget budget(1 << 30, /*wall_clock_seconds=*/0.01);
  budget.Charge(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  budget.Charge(5);  // Still a bare add; no deadline check here.
  EXPECT_EQ(budget.Spent(), 10);
  EXPECT_TRUE(budget.Exhausted());
}

TEST(WorkBudgetTest, ZeroWallClockMeansNoDeadline) {
  WorkBudget budget(1 << 30, /*wall_clock_seconds=*/0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(budget.Exhausted());
}

}  // namespace
}  // namespace impreg
