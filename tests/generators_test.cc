#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace impreg {
namespace {

TEST(GeneratorsTest, PathGraphStructure) {
  const Graph g = PathGraph(6);
  EXPECT_EQ(g.NumNodes(), 6);
  EXPECT_EQ(g.NumEdges(), 5);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_DOUBLE_EQ(g.Degree(0), 1.0);
  EXPECT_DOUBLE_EQ(g.Degree(3), 2.0);
}

TEST(GeneratorsTest, CycleGraphIsTwoRegular) {
  const Graph g = CycleGraph(7);
  EXPECT_EQ(g.NumEdges(), 7);
  for (NodeId u = 0; u < 7; ++u) EXPECT_DOUBLE_EQ(g.Degree(u), 2.0);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, CompleteGraphEdgeCount) {
  const Graph g = CompleteGraph(8);
  EXPECT_EQ(g.NumEdges(), 28);
  for (NodeId u = 0; u < 8; ++u) EXPECT_DOUBLE_EQ(g.Degree(u), 7.0);
}

TEST(GeneratorsTest, StarGraphDegrees) {
  const Graph g = StarGraph(9);
  EXPECT_DOUBLE_EQ(g.Degree(0), 8.0);
  for (NodeId u = 1; u < 9; ++u) EXPECT_DOUBLE_EQ(g.Degree(u), 1.0);
}

TEST(GeneratorsTest, GridGraphStructure) {
  const Graph g = GridGraph(4, 5);
  EXPECT_EQ(g.NumNodes(), 20);
  // Edges: 4*4 horizontal rows... rows*(cols-1) + (rows-1)*cols.
  EXPECT_EQ(g.NumEdges(), 4 * 4 + 3 * 5);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, TorusIsFourRegular) {
  const Graph g = TorusGraph(4, 6);
  EXPECT_EQ(g.NumNodes(), 24);
  EXPECT_EQ(g.NumEdges(), 48);
  for (NodeId u = 0; u < 24; ++u) EXPECT_DOUBLE_EQ(g.Degree(u), 4.0);
}

TEST(GeneratorsTest, HypercubeIsDRegular) {
  const Graph g = HypercubeGraph(4);
  EXPECT_EQ(g.NumNodes(), 16);
  EXPECT_EQ(g.NumEdges(), 32);
  for (NodeId u = 0; u < 16; ++u) EXPECT_DOUBLE_EQ(g.Degree(u), 4.0);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, BinaryTreeIsATree) {
  const Graph g = CompleteBinaryTree(15);
  EXPECT_EQ(g.NumEdges(), 14);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(EstimateDiameter(g), 6);  // Leaf to leaf via root.
}

TEST(GeneratorsTest, LadderStructure) {
  const Graph g = LadderGraph(5);
  EXPECT_EQ(g.NumNodes(), 10);
  EXPECT_EQ(g.NumEdges(), 5 + 2 * 4);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, LollipopStructure) {
  const Graph g = LollipopGraph(6, 4);
  EXPECT_EQ(g.NumNodes(), 10);
  EXPECT_EQ(g.NumEdges(), 15 + 4);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_DOUBLE_EQ(g.Degree(9), 1.0);  // Tail end.
}

TEST(GeneratorsTest, DumbbellStructure) {
  const Graph g = DumbbellGraph(5, 3);
  EXPECT_EQ(g.NumNodes(), 13);
  EXPECT_EQ(g.NumEdges(), 2 * 10 + 4);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, DumbbellZeroBridgeIsDirectEdge) {
  const Graph g = DumbbellGraph(4, 0);
  EXPECT_EQ(g.NumNodes(), 8);
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, CockroachStructure) {
  const NodeId k = 4;
  const Graph g = CockroachGraph(k);
  EXPECT_EQ(g.NumNodes(), 4 * k);
  // Two paths of 2k nodes (2k−1 edges each) + k rungs.
  EXPECT_EQ(g.NumEdges(), 2 * (2 * k - 1) + k);
  EXPECT_TRUE(IsConnected(g));
  // Antenna tips have degree 1.
  EXPECT_DOUBLE_EQ(g.Degree(0), 1.0);
  EXPECT_DOUBLE_EQ(g.Degree(2 * k), 1.0);
}

TEST(GeneratorsTest, CavemanStructure) {
  const Graph g = CavemanGraph(4, 5);
  EXPECT_EQ(g.NumNodes(), 20);
  EXPECT_EQ(g.NumEdges(), 4 * 10 + 4);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, CavemanTwoCliquesSingleBridge) {
  const Graph g = CavemanGraph(2, 4);
  EXPECT_EQ(g.NumEdges(), 2 * 6 + 1);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, SingleCliqueCaveman) {
  const Graph g = CavemanGraph(1, 5);
  EXPECT_EQ(g.NumEdges(), 10);
}

TEST(GeneratorsTest, InvalidParametersDie) {
  EXPECT_DEATH(PathGraph(0), "");
  EXPECT_DEATH(CycleGraph(2), "");
  EXPECT_DEATH(CockroachGraph(1), "");
  EXPECT_DEATH(HypercubeGraph(0), "");
}

}  // namespace
}  // namespace impreg
