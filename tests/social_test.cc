#include "graph/social.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "partition/conductance.h"

namespace impreg {
namespace {

SocialGraphParams SmallParams() {
  SocialGraphParams params;
  params.core_nodes = 1500;
  params.num_communities = 8;
  params.min_community_size = 12;
  params.max_community_size = 80;
  params.num_whiskers = 30;
  return params;
}

TEST(SocialGraphTest, IsConnectedAndSized) {
  Rng rng(1);
  const SocialGraph sg = MakeWhiskeredSocialGraph(SmallParams(), rng);
  EXPECT_TRUE(IsConnected(sg.graph));
  EXPECT_GE(sg.graph.NumNodes(), 1500);
  EXPECT_EQ(sg.core_size, 1500);
  EXPECT_EQ(sg.communities.size(), 8u);
  EXPECT_EQ(sg.whiskers.size(), 30u);
}

TEST(SocialGraphTest, CommunitiesHaveLowConductance) {
  Rng rng(2);
  const SocialGraph sg = MakeWhiskeredSocialGraph(SmallParams(), rng);
  for (const auto& community : sg.communities) {
    const double phi = Conductance(sg.graph, community);
    // Few boundary edges vs dense interior: conductance well below 0.5.
    EXPECT_LT(phi, 0.5) << "community of size " << community.size();
    EXPECT_GT(phi, 0.0);
  }
}

TEST(SocialGraphTest, WhiskersAreTheBestSmallCuts) {
  Rng rng(3);
  const SocialGraph sg = MakeWhiskeredSocialGraph(SmallParams(), rng);
  for (const auto& whisker : sg.whiskers) {
    const CutStats stats = ComputeCutStats(sg.graph, whisker);
    // One attachment edge.
    EXPECT_DOUBLE_EQ(stats.cut, 1.0);
    EXPECT_LE(stats.conductance, 1.0 / (2.0 * whisker.size() - 1.0) + 1e-12);
  }
}

TEST(SocialGraphTest, CommunitySizesSpanRequestedRange) {
  Rng rng(4);
  const SocialGraph sg = MakeWhiskeredSocialGraph(SmallParams(), rng);
  std::size_t smallest = sg.communities.front().size();
  std::size_t largest = sg.communities.back().size();
  EXPECT_LE(smallest, 15u);
  EXPECT_GE(largest, 70u);
}

TEST(SocialGraphTest, CommunitiesAreInternallyConnected) {
  Rng rng(5);
  const SocialGraph sg = MakeWhiskeredSocialGraph(SmallParams(), rng);
  for (const auto& community : sg.communities) {
    const Subgraph sub = InducedSubgraph(sg.graph, community);
    EXPECT_TRUE(IsConnected(sub.graph));
  }
}

TEST(SocialGraphTest, CoreHasHeavyTailedDegrees) {
  Rng rng(6);
  SocialGraphParams params = SmallParams();
  params.core_nodes = 4000;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const Subgraph core = InducedSubgraph(
      sg.graph, [&] {
        std::vector<NodeId> nodes(sg.core_size);
        for (NodeId u = 0; u < sg.core_size; ++u) nodes[u] = u;
        return nodes;
      }());
  const DegreeStats stats = ComputeDegreeStats(core.graph);
  EXPECT_GT(stats.max, 8.0 * stats.mean);  // Power-law hub.
}

TEST(SocialGraphTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const SocialGraph sa = MakeWhiskeredSocialGraph(SmallParams(), a);
  const SocialGraph sb = MakeWhiskeredSocialGraph(SmallParams(), b);
  EXPECT_EQ(sa.graph.NumNodes(), sb.graph.NumNodes());
  EXPECT_EQ(sa.graph.NumEdges(), sb.graph.NumEdges());
}

TEST(SocialGraphTest, NoCommunitiesOrWhiskersIsJustCore) {
  Rng rng(8);
  SocialGraphParams params = SmallParams();
  params.num_communities = 0;
  params.num_whiskers = 0;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  EXPECT_EQ(sg.graph.NumNodes(), params.core_nodes);
  EXPECT_TRUE(sg.communities.empty());
  EXPECT_TRUE(sg.whiskers.empty());
  EXPECT_TRUE(IsConnected(sg.graph));
}

}  // namespace
}  // namespace impreg
