// Failure-injection and boundary-condition tests across the library:
// the inputs a downstream user will eventually feed it — empty graphs,
// isolated nodes, saturated parameters, starved iteration budgets —
// must produce defined behavior (a clean result, a documented fallback,
// or a CHECK), never garbage.

#include <gtest/gtest.h>

#include "core/impreg.h"

namespace impreg {
namespace {

// ---------------------------------------------------------------- graphs

TEST(EdgeCasesTest, SingleNodeGraphEverywhere) {
  GraphBuilder builder(1);
  const Graph g = builder.Build();
  EXPECT_EQ(CountComponents(g), 1);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(Degeneracy(g), 0);
  EXPECT_EQ(CountTriangles(g), 0);
  EXPECT_TRUE(FindBridges(g).empty());
  EXPECT_TRUE(FindWhiskers(g).empty());
}

TEST(EdgeCasesTest, SelfLoopOnlyGraph) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0, 3.0);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 3.0);
  // Conductance of {0}: no edge can cross a self-loop.
  EXPECT_DOUBLE_EQ(ComputeCutStats(g, {0}).cut, 0.0);
  // The lazy walk fixes the loop's mass.
  LazyWalkOptions walk;
  walk.steps = 5;
  const Vector out = LazyWalk(g, SingleNodeSeed(g, 0), walk);
  EXPECT_NEAR(out[0], 1.0, 1e-12);
}

TEST(EdgeCasesTest, IsolatedNodesSurviveDiffusions) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  // PPR from a connected seed never reaches isolated nodes.
  const Vector p = PersonalizedPageRank(g, SingleNodeSeed(g, 0)).scores;
  EXPECT_DOUBLE_EQ(p[3], 0.0);
  // Heat kernel keeps isolated mass exactly in place.
  HeatKernelOptions hk;
  hk.t = 2.0;
  const Vector rho = HeatKernelWalk(g, SingleNodeSeed(g, 4), hk);
  EXPECT_NEAR(rho[4], 1.0, 1e-12);
}

// --------------------------------------------------------------- budgets

TEST(EdgeCasesTest, PushWithTinyCapStopsCleanly) {
  Rng rng(1);
  const Graph g = ErdosRenyi(100, 0.1, rng);
  PushOptions options;
  options.alpha = 0.05;
  options.epsilon = 1e-8;
  options.max_pushes = 10;
  const PushResult result =
      ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.pushes, 10);
  // Mass conservation still holds at the point it stopped.
  EXPECT_NEAR(Sum(result.p) + Sum(result.residual), 1.0, 1e-10);
}

TEST(EdgeCasesTest, LanczosWithOneIterationReportsHonestly) {
  Rng rng(2);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  const NormalizedLaplacianOperator lap(g);
  LanczosOptions options;
  options.max_iterations = 1;
  const LanczosResult result = LanczosSmallest(lap, 1, options);
  EXPECT_EQ(result.iterations, 1);
  ASSERT_EQ(result.eigenvectors.size(), 1u);
  EXPECT_NEAR(Norm2(result.eigenvectors[0]), 1.0, 1e-12);
}

TEST(EdgeCasesTest, MqiSingleRound) {
  const Graph g = LollipopGraph(10, 8);
  std::vector<NodeId> sloppy;
  for (NodeId u = 10; u < 18; ++u) sloppy.push_back(u);
  sloppy.push_back(0);
  const double before = Conductance(g, sloppy);
  const MqiResult result = Mqi(g, sloppy, /*max_rounds=*/1);
  EXPECT_LE(result.stats.conductance, before + 1e-12);
  EXPECT_LE(result.rounds, 1);
}

// ----------------------------------------------------------- saturation

TEST(EdgeCasesTest, SweepWithConstantValues) {
  const Graph g = CycleGraph(10);
  const SweepResult result = SweepCut(g, Vector(10, 1.0));
  // Deterministic order (by id), a valid nonempty cut.
  EXPECT_FALSE(result.set.empty());
  EXPECT_LE(result.stats.conductance, 1.0);
}

TEST(EdgeCasesTest, NibbleOneStep) {
  const Graph g = CavemanGraph(2, 6);
  NibbleOptions options;
  options.steps = 1;
  const NibbleResult result = Nibble(g, 0, options);
  EXPECT_LE(result.best_step, 1);
  EXPECT_NEAR(Sum(result.distribution) + result.truncated_mass, 1.0, 1e-10);
}

TEST(EdgeCasesTest, HkRelaxTinyTime) {
  const Graph g = PathGraph(20);
  HkRelaxOptions options;
  options.t = 1e-6;
  const HkRelaxResult result = HeatKernelRelax(g, 10, options);
  // Almost nothing diffuses: the seed dominates.
  EXPECT_GT(result.rho[10], 0.999);
}

TEST(EdgeCasesTest, PageRankGammaExtremes) {
  const Graph g = CycleGraph(8);
  PageRankOptions high;
  high.gamma = 1.0 - 1e-9;
  const Vector p = PersonalizedPageRank(g, SingleNodeSeed(g, 0), high).scores;
  EXPECT_GT(p[0], 1.0 - 1e-6);
}

TEST(EdgeCasesTest, MultilevelOnCompleteGraph) {
  // No good cut exists; the bisection must still return a balanced one.
  const MultilevelResult result = MultilevelBisection(CompleteGraph(32));
  EXPECT_NEAR(static_cast<double>(result.set.size()), 16.0, 4.0);
}

TEST(EdgeCasesTest, MultilevelOnStarGraph) {
  // Star: every balanced cut must cut ~half the edges; must not crash
  // or return a degenerate side.
  const MultilevelResult result = MultilevelBisection(StarGraph(64));
  EXPECT_GE(result.set.size(), 1u);
  EXPECT_LT(result.set.size(), 64u);
}

TEST(EdgeCasesTest, KwayOnDisconnectedGraph) {
  GraphBuilder builder(12);
  for (NodeId i = 0; i < 5; ++i) builder.AddEdge(i, (i + 1) % 6);
  builder.AddEdge(5, 0);
  for (NodeId i = 6; i < 11; ++i) builder.AddEdge(i, i + 1);
  const Graph g = builder.Build();
  const KwayResult result = KwayPartition(g, 3);
  std::int64_t total = 0;
  for (std::int64_t s : result.sizes) {
    EXPECT_GT(s, 0);
    total += s;
  }
  EXPECT_EQ(total, 12);
}

TEST(EdgeCasesTest, NcpOnTinyGraph) {
  const Graph g = CycleGraph(8);
  SpectralFamilyOptions options;
  options.num_seeds = 2;
  options.alphas = {0.1};
  options.epsilons = {1e-3};
  const auto clusters = SpectralFamilyClusters(g, options);
  for (const NcpCluster& c : clusters) {
    EXPECT_GE(c.stats.conductance, 0.0);
    EXPECT_LE(c.stats.conductance, 1.0);
    EXPECT_LT(c.nodes.size(), 8u);
  }
}

TEST(EdgeCasesTest, EquivalenceAtExtremeEta) {
  // Very small and very large regularization must both stay exact.
  const Graph g = CycleGraph(12);
  EXPECT_LT(VerifyHeatKernelEquivalence(g, 1e-4).trace_distance, 1e-8);
  EXPECT_LT(VerifyHeatKernelEquivalence(g, 500.0).trace_distance, 1e-8);
  EXPECT_LT(VerifyPageRankEquivalence(g, 0.999).trace_distance, 1e-8);
  EXPECT_LT(VerifyLazyWalkEquivalence(g, 0.5, 1).trace_distance, 1e-8);
}

TEST(EdgeCasesTest, MovAtSigmaFarBelowSpectrum) {
  const Graph g = GridGraph(4, 5);
  const MovResult result = MovSolveAtSigma(g, {0}, -1e4);
  // x collapses onto (the projected) seed; still unit and well-formed.
  EXPECT_NEAR(Norm2(result.x), 1.0, 1e-10);
  EXPECT_GT(result.correlation_sq, 0.9);
}

TEST(EdgeCasesTest, IncrementalPprOnEmptyGraphThenEdges) {
  DynamicGraph empty(4);
  Vector seed(4, 0.0);
  seed[0] = 1.0;
  IncrementalPersonalizedPageRank inc(empty, seed);
  // With no edges, all mass is teleport mass at the seed.
  EXPECT_NEAR(inc.Scores()[0], inc.Scores()[0], 0.0);
  inc.AddEdge(0, 1);
  inc.AddEdge(1, 2);
  EXPECT_GT(inc.Scores()[1], 0.0);
  EXPECT_GT(inc.Scores()[2], 0.0);
  EXPECT_DOUBLE_EQ(inc.Scores()[3], 0.0);
}

TEST(EdgeCasesTest, WeightedGraphsFlowThroughTheStack) {
  // One weighted path, exercised end to end.
  GraphBuilder builder(6);
  for (NodeId i = 0; i + 1 < 6; ++i) {
    builder.AddEdge(i, i + 1, 0.5 + i);
  }
  const Graph g = builder.Build();
  const SpectralPartitionResult spectral = SpectralPartition(g);
  EXPECT_GT(spectral.lambda2, 0.0);
  const MqiResult mqi = Mqi(g, {0, 1, 2});
  EXPECT_LE(mqi.stats.conductance, Conductance(g, {0, 1, 2}) + 1e-12);
  const Vector ppr = PersonalizedPageRank(g, SingleNodeSeed(g, 2)).scores;
  EXPECT_NEAR(Sum(ppr), 1.0, 1e-9);
}

}  // namespace
}  // namespace impreg
