#include "linalg/chebyshev.h"

#include <gtest/gtest.h>

#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/graph_operators.h"

namespace impreg {
namespace {

TEST(ChebyshevTest, SolvesScaledIdentity) {
  // A = 3I: δ = 0 branch, solved in one step.
  class ScaledIdentity : public LinearOperator {
   public:
    int Dimension() const override { return 4; }
    void Apply(const Vector& x, Vector& y) const override {
      y = x;
      Scale(3.0, y);
    }
  } op;
  const Vector b = {3.0, 6.0, 9.0, 12.0};
  const ChebyshevResult result = ChebyshevSolve(op, b, 3.0, 3.0);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(DistanceL2(result.x, {1.0, 2.0, 3.0, 4.0}), 1e-10);
}

TEST(ChebyshevTest, SolvesShiftedLaplacian) {
  Rng rng(1);
  const Graph g = ErdosRenyi(60, 0.12, rng);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 0.8, 0.2);  // Spectrum [0.2, 1.8].
  Vector b(60);
  for (double& v : b) v = rng.NextGaussian();
  const ChebyshevResult result = ChebyshevSolve(system, b, 0.2, 1.8);
  EXPECT_TRUE(result.converged);
  Vector ax;
  system.Apply(result.x, ax);
  EXPECT_LT(DistanceL2(ax, b), 1e-8 * Norm2(b));
}

TEST(ChebyshevTest, ZeroRhs) {
  const Graph g = CycleGraph(8);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0, 0.5);
  const ChebyshevResult result = ChebyshevSolve(system, Vector(8, 0.0),
                                                0.5, 2.5);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(Norm2(result.x), 0.0);
}

TEST(ChebyshevTest, IterationCapReported) {
  Rng rng(2);
  const Graph g = ErdosRenyi(80, 0.08, rng);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 0.999, 0.001);  // Ill-conditioned.
  Vector b(80);
  for (double& v : b) v = rng.NextGaussian();
  ChebyshevOptions options;
  options.max_iterations = 3;
  options.relative_tolerance = 1e-14;
  const ChebyshevResult result =
      ChebyshevSolve(system, b, 0.001, 1.999, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

TEST(ChebyshevTest, PprSolverMatchesCgSolver) {
  Rng rng(3);
  const Graph g = ErdosRenyi(70, 0.1, rng);
  const Vector seed = SingleNodeSeed(g, 5);
  PageRankOptions options;
  options.gamma = 0.15;
  options.tolerance = 1e-12;
  const PageRankResult cheb =
      PersonalizedPageRankChebyshev(g, seed, options);
  const PageRankResult cg = PersonalizedPageRankExact(g, seed, options);
  EXPECT_TRUE(cheb.converged);
  EXPECT_LT(DistanceL1(cheb.scores, cg.scores), 1e-8);
}

TEST(ChebyshevTest, BeatsRichardsonIterationCount) {
  // √κ vs κ: at small γ the Richardson (power-style) iteration needs
  // ~1/γ iterations, Chebyshev ~1/√γ.
  Rng rng(4);
  const Graph g = ErdosRenyi(200, 0.05, rng);
  const Vector seed = SingleNodeSeed(g, 0);
  PageRankOptions options;
  options.gamma = 0.01;
  options.tolerance = 1e-10;
  options.max_iterations = 100000;
  const PageRankResult richardson = PersonalizedPageRank(g, seed, options);
  const PageRankResult cheb =
      PersonalizedPageRankChebyshev(g, seed, options);
  EXPECT_TRUE(richardson.converged);
  EXPECT_TRUE(cheb.converged);
  EXPECT_LT(cheb.iterations * 3, richardson.iterations);
}

TEST(ChebyshevTest, InvalidBoundsDie) {
  const Graph g = CycleGraph(6);
  const NormalizedLaplacianOperator lap(g);
  EXPECT_DEATH(ChebyshevSolve(lap, Vector(6, 1.0), 0.0, 2.0), "");
  EXPECT_DEATH(ChebyshevSolve(lap, Vector(6, 1.0), 2.0, 1.0), "");
}

TEST(ChebyshevTest, StatusMirrorsConvergedFlag) {
  Rng rng(7);
  const Graph g = ErdosRenyi(40, 0.15, rng);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 0.8, 0.2);
  Vector b(40);
  for (double& v : b) v = rng.NextGaussian();
  const ChebyshevResult ok = ChebyshevSolve(system, b, 0.2, 1.8);
  EXPECT_TRUE(ok.converged);
  EXPECT_EQ(ok.diagnostics.status, SolveStatus::kConverged);

  ChebyshevOptions capped;
  capped.max_iterations = 1;
  capped.relative_tolerance = 1e-14;
  const ChebyshevResult stopped =
      ChebyshevSolve(system, b, 0.2, 1.8, capped);
  EXPECT_FALSE(stopped.converged);
  EXPECT_EQ(stopped.diagnostics.status, SolveStatus::kMaxIterations);
  EXPECT_TRUE(stopped.diagnostics.usable());
}

TEST(ChebyshevTest, NonFiniteRhsIsContained) {
  const Graph g = CycleGraph(8);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0, 0.5);
  Vector b(8, 1.0);
  b[3] = std::numeric_limits<double>::infinity();
  const ChebyshevResult result = ChebyshevSolve(system, b, 0.5, 2.5);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kNonFinite);
  EXPECT_TRUE(AllFinite(result.x));
}

TEST(ChebyshevTest, WrongBoundsDivergenceReportsBreakdown) {
  // Spectrum of the shifted operator is [0.5, 2.5]; claiming [0.1, 1.0]
  // puts the true λ_max far above 2θ, so the recurrence amplifies those
  // modes geometrically — the divergence watch must catch it instead of
  // silently returning garbage (or overflowing into Inf).
  Rng rng(9);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0, 0.5);
  Vector b(50);
  for (double& v : b) v = rng.NextGaussian();
  ChebyshevOptions options;
  options.max_iterations = 2000;
  const ChebyshevResult result =
      ChebyshevSolve(system, b, 0.1, 1.0, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kBreakdown);
  EXPECT_TRUE(AllFinite(result.x));
}

}  // namespace
}  // namespace impreg
