#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace impreg {
namespace {

TEST(BfsTest, DistancesOnPath) {
  const Graph g = PathGraph(5);
  const std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BfsTest, UnreachableIsMinusOne) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  const std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(BfsTest, WithinMaskRespectsMembership) {
  // Path 0-1-2 plus shortcut 0-3-2: distance within {0,1,2} must be 2.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(3, 2);
  const Graph g = builder.Build();
  const std::vector<char> members = {1, 1, 1, 0};
  const std::vector<int> dist = BfsDistancesWithin(g, 0, members);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
}

TEST(ComponentsTest, CountsComponents) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  const Graph g = builder.Build();
  EXPECT_EQ(CountComponents(g), 3);  // {0,1,2}, {3,4}, {5}.
  const std::vector<int> comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(ComponentsTest, ConnectedGraphs) {
  EXPECT_TRUE(IsConnected(PathGraph(10)));
  EXPECT_TRUE(IsConnected(CompleteGraph(5)));
  GraphBuilder builder(2);
  EXPECT_FALSE(IsConnected(builder.Build()));
}

TEST(SubgraphTest, InducedKeepsInternalEdges) {
  const Graph g = CompleteGraph(5);
  const Subgraph sub = InducedSubgraph(g, {1, 3, 4});
  EXPECT_EQ(sub.graph.NumNodes(), 3);
  EXPECT_EQ(sub.graph.NumEdges(), 3);  // Triangle.
  EXPECT_EQ(sub.original_of.size(), 3u);
  EXPECT_EQ(sub.new_of[3], 1);
  EXPECT_EQ(sub.new_of[0], -1);
}

TEST(SubgraphTest, InducedPreservesWeightsAndLoops) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 1, 5.0);
  builder.AddEdge(1, 2, 7.0);
  const Graph g = builder.Build();
  const Subgraph sub = InducedSubgraph(g, {0, 1});
  EXPECT_EQ(sub.graph.NumEdges(), 2);  // Edge + loop.
  EXPECT_DOUBLE_EQ(sub.graph.EdgeWeight(sub.new_of[0], sub.new_of[1]), 2.0);
  EXPECT_DOUBLE_EQ(sub.graph.EdgeWeight(sub.new_of[1], sub.new_of[1]), 5.0);
}

TEST(SubgraphTest, LargestComponentExtractsGiant) {
  GraphBuilder builder(7);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  const Subgraph giant = LargestComponent(g);
  EXPECT_EQ(giant.graph.NumNodes(), 4);
  EXPECT_TRUE(IsConnected(giant.graph));
}

TEST(DiameterTest, PathDiameterIsExact) {
  EXPECT_EQ(EstimateDiameter(PathGraph(17)), 16);
}

TEST(DiameterTest, CompleteGraphDiameterIsOne) {
  EXPECT_EQ(EstimateDiameter(CompleteGraph(6)), 1);
}

TEST(DiameterTest, TinyGraphs) {
  EXPECT_EQ(EstimateDiameter(PathGraph(1)), 0);
  GraphBuilder b(0);
  EXPECT_EQ(EstimateDiameter(b.Build()), 0);
}

TEST(DegreeStatsTest, GridDegrees) {
  const DegreeStats stats = ComputeDegreeStats(GridGraph(3, 3));
  EXPECT_DOUBLE_EQ(stats.min, 2.0);   // Corners.
  EXPECT_DOUBLE_EQ(stats.max, 4.0);   // Center.
  EXPECT_DOUBLE_EQ(stats.mean, 24.0 / 9.0);
}

TEST(AvgPathTest, PathGraphAveragePath) {
  // Path on 3 nodes within the full node set: distances 1,1,2 (pairs),
  // average over ordered connected pairs = (1+2+1+1+2+1)/6 = 4/3.
  const Graph g = PathGraph(3);
  EXPECT_NEAR(AverageShortestPathWithin(g, {0, 1, 2}), 4.0 / 3.0, 1e-12);
}

TEST(AvgPathTest, CliqueIsOne) {
  const Graph g = CompleteGraph(6);
  EXPECT_DOUBLE_EQ(AverageShortestPathWithin(g, {0, 1, 2, 3}), 1.0);
}

TEST(AvgPathTest, SingletonAndDisconnected) {
  const Graph g = PathGraph(5);
  EXPECT_DOUBLE_EQ(AverageShortestPathWithin(g, {2}), 0.0);
  // {0, 4} is disconnected within itself.
  EXPECT_DOUBLE_EQ(AverageShortestPathWithin(g, {0, 4}), 0.0);
}

TEST(AvgPathTest, UsesOnlyInternalEdges) {
  // Star: leaves are at distance 2 through the hub; without the hub the
  // leaf set is disconnected.
  const Graph g = StarGraph(5);
  EXPECT_DOUBLE_EQ(AverageShortestPathWithin(g, {1, 2, 3}), 0.0);
  EXPECT_NEAR(AverageShortestPathWithin(g, {0, 1, 2}),
              (1.0 + 1.0 + 2.0) * 2 / 6.0, 1e-12);
}

TEST(DiameterWithinTest, Values) {
  const Graph g = PathGraph(6);
  EXPECT_EQ(DiameterWithin(g, {0, 1, 2, 3}), 3);
  EXPECT_EQ(DiameterWithin(g, {2}), 0);
  EXPECT_EQ(DiameterWithin(g, {0, 5}), 0);  // Disconnected: ignored.
}

}  // namespace
}  // namespace impreg
