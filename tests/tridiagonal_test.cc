#include "linalg/tridiagonal.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace impreg {
namespace {

TEST(TridiagonalTest, OneByOne) {
  const SymmetricEigen eigen = TridiagonalEigendecomposition({5.0}, {});
  ASSERT_EQ(eigen.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(eigen.eigenvalues[0], 5.0);
  EXPECT_DOUBLE_EQ(eigen.eigenvectors.At(0, 0), 1.0);
}

TEST(TridiagonalTest, TwoByTwo) {
  // [[1, 2], [2, 1]] has eigenvalues -1 and 3.
  const SymmetricEigen eigen =
      TridiagonalEigendecomposition({1.0, 1.0}, {2.0});
  EXPECT_NEAR(eigen.eigenvalues[0], -1.0, 1e-13);
  EXPECT_NEAR(eigen.eigenvalues[1], 3.0, 1e-13);
}

TEST(TridiagonalTest, FreeChainSpectrum) {
  // The path-graph Laplacian is tridiagonal with known spectrum
  // 2 − 2cos(kπ/n), k = 0..n−1 (free-boundary chain).
  const int n = 10;
  Vector diag(n, 2.0);
  diag.front() = diag.back() = 1.0;
  Vector off(n - 1, -1.0);
  const SymmetricEigen eigen = TridiagonalEigendecomposition(diag, off);
  for (int k = 0; k < n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(std::numbers::pi * k / n);
    EXPECT_NEAR(eigen.eigenvalues[k], expected, 1e-12);
  }
}

TEST(TridiagonalTest, EigenpairsSatisfyDefinition) {
  Rng rng(3);
  const int n = 25;
  Vector diag(n), off(n - 1);
  for (double& v : diag) v = rng.NextGaussian();
  for (double& v : off) v = rng.NextGaussian();
  const SymmetricEigen eigen = TridiagonalEigendecomposition(diag, off);
  // Check T v = λ v for every pair.
  for (int k = 0; k < n; ++k) {
    const Vector v = eigen.eigenvectors.Column(k);
    for (int i = 0; i < n; ++i) {
      double tv = diag[i] * v[i];
      if (i > 0) tv += off[i - 1] * v[i - 1];
      if (i + 1 < n) tv += off[i] * v[i + 1];
      EXPECT_NEAR(tv, eigen.eigenvalues[k] * v[i], 1e-10);
    }
  }
}

TEST(TridiagonalTest, EigenvectorsOrthonormal) {
  Rng rng(5);
  const int n = 20;
  Vector diag(n), off(n - 1);
  for (double& v : diag) v = rng.NextDouble();
  for (double& v : off) v = rng.NextDouble() + 0.1;
  const SymmetricEigen eigen = TridiagonalEigendecomposition(diag, off);
  for (int a = 0; a < n; ++a) {
    for (int b = a; b < n; ++b) {
      const double dot =
          Dot(eigen.eigenvectors.Column(a), eigen.eigenvectors.Column(b));
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(TridiagonalTest, EigenvaluesAscending) {
  Rng rng(7);
  const int n = 30;
  Vector diag(n), off(n - 1);
  for (double& v : diag) v = rng.NextGaussian();
  for (double& v : off) v = rng.NextGaussian();
  const SymmetricEigen eigen = TridiagonalEigendecomposition(diag, off);
  for (int i = 1; i < n; ++i) {
    EXPECT_LE(eigen.eigenvalues[i - 1], eigen.eigenvalues[i]);
  }
}

TEST(TridiagonalTest, ZeroOffdiagonalIsDiagonal) {
  const SymmetricEigen eigen =
      TridiagonalEigendecomposition({3.0, 1.0, 2.0}, {0.0, 0.0});
  EXPECT_NEAR(eigen.eigenvalues[0], 1.0, 1e-14);
  EXPECT_NEAR(eigen.eigenvalues[1], 2.0, 1e-14);
  EXPECT_NEAR(eigen.eigenvalues[2], 3.0, 1e-14);
}

}  // namespace
}  // namespace impreg
