#include "linalg/cg.h"

#include <limits>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"
#include "linalg/graph_operators.h"
#include "util/rng.h"

namespace impreg {
namespace {

// Dense SPD operator for ground truth.
class DenseOperator : public LinearOperator {
 public:
  explicit DenseOperator(DenseMatrix m) : m_(std::move(m)) {}
  int Dimension() const override { return m_.Rows(); }
  void Apply(const Vector& x, Vector& y) const override { y = m_.Apply(x); }

 private:
  DenseMatrix m_;
};

TEST(CgTest, SolvesIdentity) {
  const DenseOperator id(DenseMatrix::Identity(5));
  const Vector b = {1, 2, 3, 4, 5};
  const CgResult result = ConjugateGradient(id, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(DistanceL2(result.x, b), 1e-10);
  EXPECT_LE(result.iterations, 2);
}

TEST(CgTest, SolvesRandomSpdSystem) {
  Rng rng(3);
  const int n = 20;
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m.At(i, j) = m.At(j, i) = 0.2 * rng.NextGaussian();
    }
    m.At(i, i) += 5.0;
  }
  const DenseOperator op(m);
  Vector x_true(n);
  for (double& v : x_true) v = rng.NextGaussian();
  const Vector b = m.Apply(x_true);
  const CgResult result = ConjugateGradient(op, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(DistanceL2(result.x, x_true), 1e-7);
}

TEST(CgTest, ZeroRhsGivesZero) {
  const DenseOperator id(DenseMatrix::Identity(4));
  const CgResult result = ConjugateGradient(id, Vector(4, 0.0));
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(Norm2(result.x), 0.0);
  EXPECT_EQ(result.iterations, 0);
}

TEST(CgTest, ShiftedLaplacianSystem) {
  // (ℒ + I) is SPD: residual check against the operator.
  Rng rng(5);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0, 1.0);
  Vector b(50);
  for (double& v : b) v = rng.NextGaussian();
  const CgResult result = ConjugateGradient(system, b);
  EXPECT_TRUE(result.converged);
  Vector ax;
  system.Apply(result.x, ax);
  EXPECT_LT(DistanceL2(ax, b), 1e-8 * Norm2(b));
}

TEST(CgTest, SingularLaplacianWithProjection) {
  // L x = b is solvable when b ⟂ 1; CG with the null direction
  // projected out converges to the minimum-norm solution.
  const Graph g = CycleGraph(12);
  const CombinatorialLaplacianOperator lap(g);
  const Vector ones(12, 1.0);
  Vector b(12, 0.0);
  b[0] = 1.0;
  b[6] = -1.0;  // Already ⟂ 1.
  CgOptions options;
  options.project_out = &ones;
  const CgResult result = ConjugateGradient(lap, b, options);
  EXPECT_TRUE(result.converged);
  Vector lx;
  lap.Apply(result.x, lx);
  EXPECT_LT(DistanceL2(lx, b), 1e-8);
  EXPECT_NEAR(Dot(result.x, ones), 0.0, 1e-9);
}

TEST(CgTest, ProjectionRemovesInfeasibleComponent) {
  // If b has a component along the null space, the projected CG solves
  // the consistent part.
  const Graph g = PathGraph(8);
  const CombinatorialLaplacianOperator lap(g);
  const Vector ones(8, 1.0);
  Vector b(8, 1.0);  // Entirely in the null space.
  b[0] += 1.0;
  b[7] -= 1.0;  // Plus a consistent part.
  CgOptions options;
  options.project_out = &ones;
  const CgResult result = ConjugateGradient(lap, b, options);
  EXPECT_TRUE(result.converged);
  Vector lx;
  lap.Apply(result.x, lx);
  // Lx should match the projected b.
  Vector b_perp = b;
  ProjectOut(ones, b_perp);
  EXPECT_LT(DistanceL2(lx, b_perp), 1e-8);
}

TEST(CgTest, IterationCapReported) {
  Rng rng(7);
  const Graph g = ErdosRenyi(100, 0.05, rng);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0, 1e-4);  // Ill-conditioned.
  Vector b(100);
  for (double& v : b) v = rng.NextGaussian();
  CgOptions options;
  options.max_iterations = 2;
  options.relative_tolerance = 1e-14;
  const CgResult result = ConjugateGradient(system, b, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2);
  EXPECT_GT(result.residual_norm, 0.0);
}

TEST(CgTest, StatusMirrorsConvergedFlag) {
  const DenseOperator id(DenseMatrix::Identity(5));
  const Vector b = {1, 2, 3, 4, 5};
  const CgResult ok = ConjugateGradient(id, b);
  EXPECT_TRUE(ok.converged);
  EXPECT_EQ(ok.diagnostics.status, SolveStatus::kConverged);
  EXPECT_TRUE(ok.diagnostics.ok());

  CgOptions capped;
  capped.max_iterations = 0;
  const CgResult stopped = ConjugateGradient(id, b, capped);
  EXPECT_FALSE(stopped.converged);
  EXPECT_EQ(stopped.diagnostics.status, SolveStatus::kMaxIterations);
  EXPECT_TRUE(stopped.diagnostics.usable());
}

TEST(CgTest, NonFiniteRhsIsContained) {
  const DenseOperator id(DenseMatrix::Identity(3));
  const CgResult result = ConjugateGradient(
      id, {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kNonFinite);
  EXPECT_TRUE(AllFinite(result.x));
}

TEST(CgTest, IndefiniteSystemReportsBreakdown) {
  // A = -I is negative definite: pᵀAp < 0 on the first iteration.
  DenseMatrix m = DenseMatrix::Identity(4);
  for (int i = 0; i < 4; ++i) m.At(i, i) = -1.0;
  const DenseOperator op(m);
  const CgResult result = ConjugateGradient(op, {1, 1, 1, 1});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kBreakdown);
  EXPECT_TRUE(AllFinite(result.x));
}

}  // namespace
}  // namespace impreg
