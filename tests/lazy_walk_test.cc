#include "diffusion/lazy_walk.h"

#include <gtest/gtest.h>

#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"

namespace impreg {
namespace {

TEST(LazyWalkTest, ZeroStepsReturnsSeed) {
  const Graph g = PathGraph(5);
  const Vector seed = SingleNodeSeed(g, 2);
  LazyWalkOptions options;
  options.steps = 0;
  EXPECT_EQ(LazyWalk(g, seed, options), seed);
}

TEST(LazyWalkTest, PreservesMassAndNonnegativity) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 0.12, rng);
  const Vector seed = SingleNodeSeed(g, 7);
  LazyWalkOptions options;
  options.steps = 25;
  const Vector out = LazyWalk(g, seed, options);
  EXPECT_NEAR(Sum(out), 1.0, 1e-12);
  for (double v : out) EXPECT_GE(v, 0.0);
}

TEST(LazyWalkTest, ConvergesToStationaryDistribution) {
  Rng rng(2);
  const Graph g = ErdosRenyi(30, 0.3, rng);
  const Vector seed = SingleNodeSeed(g, 0);
  LazyWalkOptions options;
  options.steps = 2000;
  const Vector out = LazyWalk(g, seed, options);
  const Vector pi = StationaryDistribution(g);
  EXPECT_LT(DistanceL1(out, pi), 1e-8);
}

TEST(LazyWalkTest, AlphaOneNeverMoves) {
  const Graph g = CompleteGraph(6);
  const Vector seed = SingleNodeSeed(g, 3);
  LazyWalkOptions options;
  options.alpha = 1.0;
  options.steps = 10;
  EXPECT_EQ(LazyWalk(g, seed, options), seed);
}

TEST(LazyWalkTest, OneStepMatchesManualComputation) {
  const Graph g = PathGraph(3);  // 0-1-2.
  const Vector seed = SingleNodeSeed(g, 1);
  LazyWalkOptions options;
  options.alpha = 0.5;
  options.steps = 1;
  const Vector out = LazyWalk(g, seed, options);
  // Half stays, half splits evenly to the two neighbors.
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 0.25);
}

TEST(LazyWalkTest, CallbackSeesEveryStep) {
  const Graph g = CycleGraph(8);
  int steps_seen = 0;
  LazyWalkOptions options;
  options.steps = 7;
  options.on_step = [&](int step, const Vector& p) {
    ++steps_seen;
    EXPECT_EQ(step, steps_seen);
    EXPECT_NEAR(Sum(p), 1.0, 1e-12);
  };
  LazyWalk(g, SingleNodeSeed(g, 0), options);
  EXPECT_EQ(steps_seen, 7);
}

TEST(LazyWalkTest, HalfLazySpectrumIsNonnegative) {
  // W_{1/2} = I − ℒ_rw/2 is similar to I − ℒ/2 with spectrum in [0, 1].
  Rng rng(3);
  const Graph g = ErdosRenyi(25, 0.25, rng);
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  for (double lam : eigen.eigenvalues) {
    const double walk_eig = 1.0 - 0.5 * lam;
    EXPECT_GE(walk_eig, -1e-12);
    EXPECT_LE(walk_eig, 1.0 + 1e-12);
  }
}

TEST(LazyWalkTest, StationaryDistributionSumsToOne) {
  const Graph g = StarGraph(9);
  const Vector pi = StationaryDistribution(g);
  EXPECT_NEAR(Sum(pi), 1.0, 1e-14);
  EXPECT_DOUBLE_EQ(pi[0], 0.5);  // Hub holds half the volume.
}

TEST(LazyWalkTest, SeedMassDecaysMonotonically) {
  const Graph g = TorusGraph(5, 5);
  const Vector seed = SingleNodeSeed(g, 12);
  double prev = 1.0;
  LazyWalkOptions options;
  options.steps = 15;
  options.on_step = [&](int, const Vector& p) {
    EXPECT_LE(p[12], prev + 1e-12);
    prev = p[12];
  };
  LazyWalk(g, seed, options);
}

}  // namespace
}  // namespace impreg
