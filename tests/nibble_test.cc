#include "partition/nibble.h"

#include <gtest/gtest.h>

#include "diffusion/lazy_walk.h"
#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"

namespace impreg {
namespace {

TEST(NibbleTest, FindsCliqueInCaveman) {
  const Graph g = CavemanGraph(4, 8);
  NibbleOptions options;
  options.steps = 30;
  options.epsilon = 1e-4;
  const NibbleResult result = Nibble(g, 0, options);
  ASSERT_FALSE(result.set.empty());
  // The best cuts around a clique seed are unions of whole cliques
  // (cut = 2 bridges); with 4 cliques the walk may return one or two.
  EXPECT_LE(result.stats.conductance, 0.05);
  EXPECT_GE(result.set.size(), 6u);
  EXPECT_LE(result.set.size(), 18u);
  EXPECT_DOUBLE_EQ(result.stats.cut, 2.0);
}

TEST(NibbleTest, TruncationLosesBoundedMass) {
  Rng rng(1);
  const Graph g = ErdosRenyi(200, 0.04, rng);
  NibbleOptions options;
  options.steps = 20;
  options.epsilon = 1e-4;
  const NibbleResult result = Nibble(g, 0, options);
  // Per-step loss ≤ ε·vol(support); total stays well below 1.
  EXPECT_LT(result.truncated_mass, 0.8);
  EXPECT_GE(result.truncated_mass, 0.0);
  // Remaining mass + truncated mass = 1.
  EXPECT_NEAR(Sum(result.distribution) + result.truncated_mass, 1.0, 1e-9);
}

TEST(NibbleTest, ZeroTruncationMatchesExactLazyWalk) {
  const Graph g = CavemanGraph(2, 6);
  NibbleOptions options;
  options.steps = 7;
  options.epsilon = 0.0;  // No truncation.
  const NibbleResult result = Nibble(g, 3, options);
  LazyWalkOptions walk;
  walk.steps = 7;
  const Vector exact = LazyWalk(g, SingleNodeSeed(g, 3), walk);
  EXPECT_LT(DistanceL1(result.distribution, exact), 1e-10);
  EXPECT_DOUBLE_EQ(result.truncated_mass, 0.0);
}

TEST(NibbleTest, SupportStaysLocalOnBigGraph) {
  Rng rng(2);
  SocialGraphParams params;
  params.core_nodes = 6000;
  params.num_communities = 4;
  params.num_whiskers = 20;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  NibbleOptions options;
  options.steps = 15;
  options.epsilon = 1e-3;
  const NibbleResult result =
      Nibble(sg.graph, sg.communities[0][0], options);
  std::int64_t support = 0;
  for (double v : result.distribution) {
    if (v > 0.0) ++support;
  }
  EXPECT_LT(support, sg.graph.NumNodes() / 8);
}

TEST(NibbleTest, BestStepIsRecorded) {
  const Graph g = CavemanGraph(3, 7);
  NibbleOptions options;
  options.steps = 12;
  const NibbleResult result = Nibble(g, 0, options);
  EXPECT_GE(result.best_step, 1);
  EXPECT_LE(result.best_step, 12);
}

TEST(NibbleTest, AggressiveTruncationKillsEverything) {
  const Graph g = CycleGraph(20);
  NibbleOptions options;
  options.steps = 10;
  options.epsilon = 10.0;  // Everything below ε·d dies immediately.
  const NibbleResult result = Nibble(g, 0, options);
  EXPECT_DOUBLE_EQ(Sum(result.distribution), 0.0);
  EXPECT_NEAR(result.truncated_mass, 1.0, 1e-12);
  EXPECT_TRUE(result.set.empty());
}

TEST(NibbleTest, VolumeCapRespectedBySweep) {
  const Graph g = CavemanGraph(3, 8);
  NibbleOptions options;
  options.steps = 20;
  options.max_volume = 30.0;
  const NibbleResult result = Nibble(g, 0, options);
  if (!result.set.empty()) {
    EXPECT_LE(result.stats.volume, 30.0);
  }
}

TEST(NibbleTest, DistributionSeedVariant) {
  const Graph g = CavemanGraph(2, 8);
  const NibbleResult result = NibbleFromDistribution(
      g, SeedSetDistribution(g, {0, 1, 2}), NibbleOptions{});
  EXPECT_FALSE(result.set.empty());
  EXPECT_LT(result.stats.conductance, 0.2);
}

}  // namespace
}  // namespace impreg
