#include "partition/hkrelax.h"

#include <gtest/gtest.h>

#include "diffusion/heat_kernel.h"
#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"

namespace impreg {
namespace {

TEST(HkRelaxTest, ApproximatesExactHeatKernel) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  HkRelaxOptions options;
  options.t = 5.0;
  options.delta = 1e-9;  // Essentially no truncation.
  options.tail_tolerance = 1e-10;
  const HkRelaxResult result = HeatKernelRelax(g, 0, options);
  const Vector exact = HeatKernelWalkTaylor(g, SingleNodeSeed(g, 0), 5.0);
  EXPECT_LT(DistanceL1(result.rho, exact), 1e-6);
}

TEST(HkRelaxTest, DroppedMassAccountsForDeficit) {
  Rng rng(2);
  const Graph g = ErdosRenyi(100, 0.06, rng);
  HkRelaxOptions options;
  options.t = 8.0;
  options.delta = 1e-4;
  const HkRelaxResult result = HeatKernelRelax(g, 0, options);
  // rho-mass + dropped mass ≈ 1.
  EXPECT_NEAR(Sum(result.rho) + result.dropped_mass, 1.0, 1e-6);
  EXPECT_GT(result.dropped_mass, 0.0);
}

TEST(HkRelaxTest, TruncationSparsifiesOutput) {
  Rng rng(3);
  const Graph g = ErdosRenyi(400, 0.02, rng);
  HkRelaxOptions coarse;
  coarse.t = 6.0;
  coarse.delta = 1e-3;
  HkRelaxOptions fine;
  fine.t = 6.0;
  fine.delta = 1e-8;
  auto support = [](const Vector& v) {
    std::int64_t count = 0;
    for (double x : v) {
      if (x > 0.0) ++count;
    }
    return count;
  };
  const HkRelaxResult sparse = HeatKernelRelax(g, 0, coarse);
  const HkRelaxResult dense = HeatKernelRelax(g, 0, fine);
  EXPECT_LT(support(sparse.rho), support(dense.rho));
}

TEST(HkRelaxTest, FindsCliqueInCaveman) {
  const Graph g = CavemanGraph(4, 8);
  HkRelaxOptions options;
  options.t = 8.0;
  const HkRelaxResult result = HeatKernelRelax(g, 0, options);
  ASSERT_FALSE(result.set.empty());
  EXPECT_LT(result.stats.conductance, 0.1);
}

TEST(HkRelaxTest, FindsPlantedCommunity) {
  Rng rng(4);
  SocialGraphParams params;
  params.core_nodes = 3000;
  params.num_communities = 3;
  params.min_community_size = 50;
  params.max_community_size = 80;
  params.num_whiskers = 10;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const auto& community = sg.communities[0];
  HkRelaxOptions options;
  options.t = 15.0;
  options.delta = 1e-6;
  const HkRelaxResult result = HeatKernelRelax(sg.graph, community[0],
                                               options);
  ASSERT_FALSE(result.set.empty());
  EXPECT_LT(result.stats.conductance, 0.35);
}

TEST(HkRelaxTest, WorkIsLocalOnBigGraph) {
  Rng rng(5);
  SocialGraphParams params;
  params.core_nodes = 10000;
  params.num_communities = 2;
  params.num_whiskers = 10;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  HkRelaxOptions options;
  options.t = 5.0;
  options.delta = 1e-3;
  const HkRelaxResult result =
      HeatKernelRelax(sg.graph, sg.communities[0][0], options);
  std::int64_t support = 0;
  for (double v : result.rho) {
    if (v > 0.0) ++support;
  }
  EXPECT_LT(support, sg.graph.NumNodes() / 10);
}

TEST(HkRelaxTest, TermsScaleWithT) {
  const Graph g = CycleGraph(40);
  HkRelaxOptions small;
  small.t = 1.0;
  HkRelaxOptions large;
  large.t = 20.0;
  const HkRelaxResult a = HeatKernelRelax(g, 0, small);
  const HkRelaxResult b = HeatKernelRelax(g, 0, large);
  EXPECT_LT(a.terms, b.terms);
  EXPECT_GT(a.terms, 0);
}

}  // namespace
}  // namespace impreg
