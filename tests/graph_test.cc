#include "graph/graph.h"

#include <gtest/gtest.h>

namespace impreg {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(0);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 0.0);
}

TEST(GraphBuilderTest, SingleEdge) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 2.5);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 2);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.NumArcs(), 2);
  EXPECT_DOUBLE_EQ(g.Degree(0), 2.5);
  EXPECT_DOUBLE_EQ(g.Degree(1), 2.5);
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 5.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.5);
}

TEST(GraphBuilderTest, ParallelEdgesAreMerged) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 0, 2.0);
  builder.AddEdge(0, 1, 0.5);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 3.5);
  EXPECT_EQ(g.OutDegree(0), 1);
}

TEST(GraphBuilderTest, SelfLoopCountsOnceInDegree) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0, 3.0);
  builder.AddEdge(0, 1, 1.0);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.NumArcs(), 3);  // Loop stored once, edge twice.
  EXPECT_DOUBLE_EQ(g.Degree(0), 4.0);
  EXPECT_DOUBLE_EQ(g.Degree(1), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 5.0);
}

TEST(GraphBuilderTest, AdjacencyIsSorted) {
  GraphBuilder builder(5);
  builder.AddEdge(2, 4);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(2, 1);
  const Graph g = builder.Build();
  const auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i].head, nbrs[i + 1].head);
  }
}

TEST(GraphBuilderTest, HasEdge) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 2);
  const Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(3, 3));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 3), 0.0);
}

TEST(GraphBuilderTest, BuilderIsReusable) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const Graph g1 = builder.Build();
  const Graph g2 = builder.Build();
  EXPECT_EQ(g1.NumEdges(), g2.NumEdges());
  builder.AddEdge(0, 1);
  const Graph g3 = builder.Build();
  EXPECT_DOUBLE_EQ(g3.EdgeWeight(0, 1), 2.0);
}

TEST(GraphBuilderTest, InvalidEndpointDies) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 2), "out of range");
  EXPECT_DEATH(builder.AddEdge(-1, 0), "out of range");
}

TEST(GraphBuilderTest, NonPositiveWeightDies) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 1, 0.0), "positive");
  EXPECT_DEATH(builder.AddEdge(0, 1, -1.0), "positive");
}

TEST(GraphTest, IsValidNode) {
  GraphBuilder builder(3);
  const Graph g = builder.Build();
  EXPECT_TRUE(g.IsValidNode(0));
  EXPECT_TRUE(g.IsValidNode(2));
  EXPECT_FALSE(g.IsValidNode(3));
  EXPECT_FALSE(g.IsValidNode(-1));
}

TEST(GraphTest, DegreesVectorMatchesDegree) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 3.0);
  const Graph g = builder.Build();
  const std::vector<double>& d = g.Degrees();
  ASSERT_EQ(d.size(), 3u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_DOUBLE_EQ(d[u], g.Degree(u));
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(GraphTest, IsolatedNodesHaveZeroDegree) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_DOUBLE_EQ(g.Degree(2), 0.0);
  EXPECT_EQ(g.OutDegree(3), 0);
  EXPECT_TRUE(g.Neighbors(2).empty());
}

}  // namespace
}  // namespace impreg
