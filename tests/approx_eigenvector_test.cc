#include "core/approx_eigenvector.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/graph_operators.h"
#include "partition/spectral.h"

namespace impreg {
namespace {

Graph TestGraph() {
  Rng rng(3);
  Graph g = ErdosRenyi(60, 0.12, rng);
  // Regenerate until connected so λ₂ > 0 (deterministic from the seed).
  while (true) {
    std::vector<char> seen(g.NumNodes(), 0);
    std::vector<NodeId> stack = {0};
    seen[0] = 1;
    NodeId count = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Arc& arc : g.Neighbors(u)) {
        if (!seen[arc.head]) {
          seen[arc.head] = 1;
          ++count;
          stack.push_back(arc.head);
        }
      }
    }
    if (count == g.NumNodes()) return g;
    g = ErdosRenyi(60, 0.12, rng);
  }
}

TEST(ApproxEigenvectorTest, ExactMatchesSpectralPartitioner) {
  const Graph g = TestGraph();
  ApproxEigenvectorOptions options;
  options.method = EigenvectorMethod::kExact;
  const ApproxEigenvectorResult exact =
      ApproximateSecondEigenvector(g, options);
  const SpectralPartitionResult spectral = SpectralPartition(g);
  EXPECT_NEAR(exact.rayleigh, spectral.lambda2, 1e-8);
  EXPECT_TRUE(exact.implicit_regularizer.empty());
}

TEST(ApproxEigenvectorTest, EveryApproximationHasWorseRayleigh) {
  // The core ordering of §3.1: approximations are regularized, so their
  // Rayleigh quotients are ≥ λ₂.
  const Graph g = TestGraph();
  ApproxEigenvectorOptions exact_opts;
  exact_opts.method = EigenvectorMethod::kExact;
  const double lambda2 =
      ApproximateSecondEigenvector(g, exact_opts).rayleigh;

  for (EigenvectorMethod method :
       {EigenvectorMethod::kPowerMethod, EigenvectorMethod::kHeatKernel,
        EigenvectorMethod::kPageRank, EigenvectorMethod::kLazyWalk}) {
    ApproxEigenvectorOptions options;
    options.method = method;
    options.power_iterations = 5;
    options.t = 3.0;
    options.gamma = 0.2;
    options.steps = 5;
    const ApproxEigenvectorResult result =
        ApproximateSecondEigenvector(g, options);
    EXPECT_GE(result.rayleigh, lambda2 - 1e-9)
        << "method " << static_cast<int>(method);
    EXPECT_FALSE(result.implicit_regularizer.empty());
  }
}

TEST(ApproxEigenvectorTest, AggressivenessConvergesToExact) {
  // Cranking each method's aggressiveness knob drives the Rayleigh
  // quotient down to λ₂.
  const Graph g = CavemanGraph(2, 8);  // Clean spectral gap.
  ApproxEigenvectorOptions exact_opts;
  exact_opts.method = EigenvectorMethod::kExact;
  const double lambda2 =
      ApproximateSecondEigenvector(g, exact_opts).rayleigh;

  ApproxEigenvectorOptions hk;
  hk.method = EigenvectorMethod::kHeatKernel;
  hk.t = 300.0;
  EXPECT_NEAR(ApproximateSecondEigenvector(g, hk).rayleigh, lambda2, 1e-5);

  ApproxEigenvectorOptions pm;
  pm.method = EigenvectorMethod::kPowerMethod;
  pm.power_iterations = 4000;
  EXPECT_NEAR(ApproximateSecondEigenvector(g, pm).rayleigh, lambda2, 1e-6);

  ApproxEigenvectorOptions lw;
  lw.method = EigenvectorMethod::kLazyWalk;
  lw.steps = 4000;
  EXPECT_NEAR(ApproximateSecondEigenvector(g, lw).rayleigh, lambda2, 1e-5);
}

TEST(ApproxEigenvectorTest, OutputIsUnitAndOrthogonalToTrivial) {
  const Graph g = TestGraph();
  const NormalizedLaplacianOperator lap(g);
  for (EigenvectorMethod method :
       {EigenvectorMethod::kExact, EigenvectorMethod::kPowerMethod,
        EigenvectorMethod::kHeatKernel, EigenvectorMethod::kPageRank,
        EigenvectorMethod::kLazyWalk}) {
    ApproxEigenvectorOptions options;
    options.method = method;
    const ApproxEigenvectorResult result =
        ApproximateSecondEigenvector(g, options);
    EXPECT_NEAR(Norm2(result.x), 1.0, 1e-10);
    EXPECT_NEAR(Dot(result.x, lap.TrivialEigenvector()), 0.0, 1e-8)
        << "method " << static_cast<int>(method);
  }
}

TEST(ApproxEigenvectorTest, DeterministicGivenSeed) {
  const Graph g = TestGraph();
  ApproxEigenvectorOptions options;
  options.method = EigenvectorMethod::kHeatKernel;
  options.rng_seed = 777;
  const ApproxEigenvectorResult a = ApproximateSecondEigenvector(g, options);
  const ApproxEigenvectorResult b = ApproximateSecondEigenvector(g, options);
  EXPECT_EQ(a.x, b.x);
}

TEST(ApproxEigenvectorTest, EtaReportsMatchKnobs) {
  const Graph g = CavemanGraph(2, 5);
  ApproxEigenvectorOptions options;
  options.method = EigenvectorMethod::kHeatKernel;
  options.t = 7.5;
  EXPECT_DOUBLE_EQ(ApproximateSecondEigenvector(g, options).eta, 7.5);
  options.method = EigenvectorMethod::kPageRank;
  options.gamma = 0.25;
  EXPECT_NEAR(ApproximateSecondEigenvector(g, options).eta, 1.0 / 3.0,
              1e-12);
}

TEST(ApproxEigenvectorTest, EdgelessGraphDies) {
  GraphBuilder builder(4);
  EXPECT_DEATH(ApproximateSecondEigenvector(builder.Build()), "no edges");
}

}  // namespace
}  // namespace impreg
