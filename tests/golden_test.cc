// Golden-file tests for the observability export formats. The
// fixtures under tests/golden/ pin the *shape* of the two stable
// schemas — impreg-trace-v1 (core/trace.h) and impreg-bench-v2
// (bench/report.h) — so a field rename or type change breaks a test
// before it breaks a downstream consumer. Live exports are run
// through the same schema checker as the committed fixtures, which
// keeps fixture and implementation from drifting apart. The
// bench-diff round trip (identical reports pass the gate, a 2×
// slowdown fails it) is checked both here at the API level and as
// ctest invocations of the impreg_bench_diff binary.

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/report.h"
#include "core/impreg.h"
#include "util/json.h"

namespace impreg {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(IMPREG_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// —— impreg-trace-v1 shape ———————————————————————————————————————

const std::set<std::string> kEventKinds = {
    "residual", "conductance", "arc-work", "rollback",
    "fault",    "budget",      "phase",
};

void CheckTraceDocumentShape(const std::string& json) {
  const JsonParseResult parsed = JsonParse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const JsonValue& doc = parsed.value;

  const JsonValue* schema = doc.FindOfType("schema", JsonValue::Type::kString);
  ASSERT_NE(schema, nullptr) << "missing \"schema\"";
  EXPECT_EQ(schema->AsString(), "impreg-trace-v1");
  ASSERT_NE(doc.FindOfType("traces_dropped", JsonValue::Type::kNumber),
            nullptr);
  const JsonValue* traces = doc.FindOfType("traces", JsonValue::Type::kArray);
  ASSERT_NE(traces, nullptr) << "missing \"traces\" array";

  for (const JsonValue& trace : traces->Items()) {
    ASSERT_TRUE(trace.is_object());
    const JsonValue* solver =
        trace.FindOfType("solver", JsonValue::Type::kString);
    ASSERT_NE(solver, nullptr);
    SCOPED_TRACE("solver " + solver->AsString());
    const JsonValue* status =
        trace.FindOfType("status", JsonValue::Type::kString);
    ASSERT_NE(status, nullptr);
    // Status strings come from SolveStatusName.
    const std::set<std::string> statuses = {
        "converged",        "max-iterations", "non-finite",
        "breakdown",        "budget-exhausted", "invalid-input",
        "shed"};
    EXPECT_TRUE(statuses.count(status->AsString()))
        << "unknown status " << status->AsString();
    EXPECT_NE(trace.FindOfType("iterations", JsonValue::Type::kNumber),
              nullptr);
    EXPECT_NE(trace.FindOfType("final_residual", JsonValue::Type::kNumber),
              nullptr);
    EXPECT_NE(trace.FindOfType("events_recorded", JsonValue::Type::kNumber),
              nullptr);
    EXPECT_NE(trace.FindOfType("events_dropped", JsonValue::Type::kNumber),
              nullptr);
    const JsonValue* totals =
        trace.FindOfType("totals", JsonValue::Type::kObject);
    ASSERT_NE(totals, nullptr);
    for (const auto& [kind, value] : totals->Members()) {
      EXPECT_TRUE(kEventKinds.count(kind)) << "unknown total kind " << kind;
      EXPECT_TRUE(value.is_number());
    }
    const JsonValue* events =
        trace.FindOfType("events", JsonValue::Type::kArray);
    ASSERT_NE(events, nullptr);
    for (const JsonValue& event : events->Items()) {
      ASSERT_TRUE(event.is_object());
      EXPECT_NE(event.FindOfType("iter", JsonValue::Type::kNumber), nullptr);
      const JsonValue* kind =
          event.FindOfType("kind", JsonValue::Type::kString);
      ASSERT_NE(kind, nullptr);
      EXPECT_TRUE(kEventKinds.count(kind->AsString()))
          << "unknown event kind " << kind->AsString();
      EXPECT_NE(event.FindOfType("value", JsonValue::Type::kNumber), nullptr);
    }
  }
}

TEST(GoldenTest, CommittedTraceFixtureMatchesTheV1Shape) {
  CheckTraceDocumentShape(ReadFileOrDie(GoldenPath("trace_cluster.json")));
}

#ifdef IMPREG_OBSERVABILITY
TEST(GoldenTest, LiveTraceExportMatchesTheV1Shape) {
  const Graph g = CavemanGraph(10, 8);
  ScopedTraceCapture capture;
  ApproximatePageRank(g, SingleNodeSeed(g, 0), {});
  HeatKernelRelax(g, /*seed=*/5, {});
  CheckTraceDocumentShape(TraceCollector::Get().ToJson());
}
#endif  // IMPREG_OBSERVABILITY

// —— impreg-bench-v2 shape and the diff round trip ———————————————

TEST(GoldenTest, BenchFixturesParseWithExpectedRecords) {
  const BenchParseResult baseline =
      ReadBenchReport(GoldenPath("bench_baseline.json"));
  ASSERT_TRUE(baseline.ok()) << baseline.error;
  EXPECT_EQ(baseline.schema, "impreg-bench-v2");
  ASSERT_EQ(baseline.records.size(), 4u);
  EXPECT_EQ(baseline.records[0].bench, "BM_SpMVSoA/131072");
  EXPECT_EQ(baseline.records[0].n, 131072);
  EXPECT_EQ(baseline.records[0].m, 524288);
  EXPECT_EQ(baseline.records[3].threads, 8);

  // The raw fixture must also carry a metrics object (the schema's
  // third member), even though the diff only consumes records.
  const JsonParseResult parsed =
      JsonParse(ReadFileOrDie(GoldenPath("bench_baseline.json")));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed.value.FindOfType("metrics", JsonValue::Type::kObject),
            nullptr);
}

TEST(GoldenTest, V1BareArrayReportsStillParse) {
  const BenchParseResult v1 = ParseBenchReport(
      "[{\"bench\": \"BM_X/1\", \"n\": 1, \"m\": 0, \"threads\": 1, "
      "\"ns_per_iter\": 10.5}]");
  ASSERT_TRUE(v1.ok()) << v1.error;
  EXPECT_EQ(v1.schema, "v1-array");
  ASSERT_EQ(v1.records.size(), 1u);
  EXPECT_DOUBLE_EQ(v1.records[0].ns_per_iter, 10.5);
}

TEST(GoldenTest, MalformedReportsAreErrorsNotEmptyDiffs) {
  EXPECT_FALSE(ParseBenchReport("{\"schema\": \"bogus\"}").ok());
  EXPECT_FALSE(ParseBenchReport("[{\"n\": 3}]").ok());  // No bench/ns.
  EXPECT_FALSE(ParseBenchReport("not json").ok());
}

TEST(GoldenTest, MachineMetadataRoundTripsAndStaysOptional) {
  std::vector<BenchRecord> records(1);
  records[0].bench = "BM_X/1";
  records[0].ns_per_iter = 10.5;
  // No metadata: the document is byte-identical to the pre-metadata
  // serializer (no "machine" member at all), and parses to an empty map.
  const std::string bare = BenchReportToJson(records);
  EXPECT_EQ(bare.find("machine"), std::string::npos);
  EXPECT_TRUE(ParseBenchReport(bare).machine.empty());

  const BenchMetadata machine = {
      {"native", "off"}, {"simd_dense", "avx2"}, {"simd_row_gather", "scalar"}};
  const BenchParseResult parsed =
      ParseBenchReport(BenchReportToJson(records, "", machine));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.machine, machine);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.records[0].ns_per_iter, 10.5);
}

TEST(GoldenTest, MetadataDiffFlagsCrossMachineComparisons) {
  const BenchMetadata native = {{"native", "native"}, {"simd_dense", "avx2"}};
  const BenchMetadata fallback = {{"native", "off"}, {"simd_dense", "avx2"}};
  // Agreement (including the both-empty v1 case) is silent.
  EXPECT_TRUE(DiffBenchMetadata(native, native).empty());
  EXPECT_TRUE(DiffBenchMetadata({}, {}).empty());
  // A changed value and a one-sided key are both mismatches.
  const std::vector<std::string> changed = DiffBenchMetadata(native, fallback);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], "native: 'native' vs 'off'");
  const std::vector<std::string> one_sided = DiffBenchMetadata({}, fallback);
  ASSERT_EQ(one_sided.size(), 2u);
  EXPECT_EQ(one_sided[0], "native: <absent> vs 'off'");
  EXPECT_EQ(one_sided[1], "simd_dense: <absent> vs 'avx2'");
}

TEST(GoldenTest, SelfDiffPassesAndTwoXSlowdownFailsTheGate) {
  const BenchParseResult baseline =
      ReadBenchReport(GoldenPath("bench_baseline.json"));
  const BenchParseResult slowdown =
      ReadBenchReport(GoldenPath("bench_slowdown.json"));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(slowdown.ok());

  const BenchDiffResult self =
      DiffBenchReports(baseline.records, baseline.records, 0.10);
  EXPECT_TRUE(self.ok());
  EXPECT_EQ(self.regressions, 0);
  ASSERT_EQ(self.entries.size(), 4u);
  for (const BenchDiffEntry& e : self.entries) {
    EXPECT_DOUBLE_EQ(e.ratio, 1.0);
  }

  const BenchDiffResult slow =
      DiffBenchReports(baseline.records, slowdown.records, 0.10);
  EXPECT_FALSE(slow.ok());
  EXPECT_EQ(slow.regressions, 4);
  for (const BenchDiffEntry& e : slow.entries) {
    EXPECT_TRUE(e.regressed);
    EXPECT_NEAR(e.ratio, 2.0, 1e-12);
  }

  // A 2x slowdown is *within* a 150% allowance — the threshold is a
  // real parameter, not a constant.
  EXPECT_TRUE(DiffBenchReports(baseline.records, slowdown.records, 1.5).ok());
}

// —— Load-harness fixtures: percentile records and the shed line ——

TEST(GoldenTest, LoadFixturesCarryPercentilesAndTheP99GateTrips) {
  const BenchParseResult baseline =
      ReadBenchReport(GoldenPath("load_baseline.json"));
  const BenchParseResult slowdown =
      ReadBenchReport(GoldenPath("load_p99_slowdown.json"));
  ASSERT_TRUE(baseline.ok()) << baseline.error;
  ASSERT_TRUE(slowdown.ok()) << slowdown.error;
  ASSERT_EQ(baseline.records.size(), 2u);
  EXPECT_EQ(baseline.records[0].bench, "BM_LoadServe/steady");
  EXPECT_GT(baseline.records[0].p50_ns, 0.0);
  EXPECT_GT(baseline.records[0].p99_ns, baseline.records[0].p50_ns);

  // The fixture pair has identical means but a doubled tail: the mean
  // gate alone passes it...
  const BenchDiffResult mean_only =
      DiffBenchReports(baseline.records, slowdown.records, 0.10);
  EXPECT_TRUE(mean_only.ok());
  EXPECT_EQ(mean_only.p99_regressions, 0);  // Gate off by default.
  // ...and only the one-sided p99 gate catches it.
  const BenchDiffResult gated =
      DiffBenchReports(baseline.records, slowdown.records, 0.10, 0.25);
  EXPECT_FALSE(gated.ok());
  EXPECT_EQ(gated.regressions, 0);
  EXPECT_EQ(gated.p99_regressions, 2);
  // One-sided means tail *improvements* never trip it.
  const BenchDiffResult improved =
      DiffBenchReports(slowdown.records, baseline.records, 0.10, 0.25);
  EXPECT_TRUE(improved.ok());
  EXPECT_EQ(improved.p99_regressions, 0);
}

TEST(GoldenTest, ShedResponseFixtureMatchesTheWireShape) {
  // The committed shed line — the wire form of an admission refusal.
  // service_test pins the live serializer to this same line; here the
  // fixture itself is checked so the two cannot drift apart silently.
  const JsonParseResult parsed =
      JsonParse(ReadFileOrDie(GoldenPath("query_response_shed.jsonl")));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const JsonValue& doc = parsed.value;
  const JsonValue* schema = doc.FindOfType("schema", JsonValue::Type::kString);
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), "impreg-query-response-v1");
  const JsonValue* status = doc.FindOfType("status", JsonValue::Type::kString);
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->AsString(), "shed");
  const JsonValue* degraded =
      doc.FindOfType("degraded", JsonValue::Type::kBool);
  ASSERT_NE(degraded, nullptr);
  EXPECT_TRUE(degraded->AsBool());
  const JsonValue* shed = doc.FindOfType("shed", JsonValue::Type::kBool);
  ASSERT_NE(shed, nullptr);
  EXPECT_TRUE(shed->AsBool());
  const JsonValue* tenant = doc.FindOfType("tenant", JsonValue::Type::kString);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->AsString(), "heavy");
  const JsonValue* work = doc.FindOfType("work", JsonValue::Type::kNumber);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->AsDouble(), 0.0);
  const JsonValue* top = doc.FindOfType("top", JsonValue::Type::kArray);
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->Items().empty());
}

TEST(GoldenTest, BenchesOnOneSideOnlyAreReportedNotCounted) {
  std::vector<BenchRecord> old_records, new_records;
  old_records.push_back({"BM_Shared", 1, 0, 1, 100.0});
  old_records.push_back({"BM_Removed", 1, 0, 1, 100.0});
  new_records.push_back({"BM_Shared", 1, 0, 1, 101.0});
  new_records.push_back({"BM_Added", 1, 0, 1, 100.0});
  const BenchDiffResult diff =
      DiffBenchReports(old_records, new_records, 0.10);
  EXPECT_TRUE(diff.ok());
  ASSERT_EQ(diff.entries.size(), 1u);
  ASSERT_EQ(diff.only_old.size(), 1u);
  EXPECT_EQ(diff.only_old[0], "BM_Removed");
  ASSERT_EQ(diff.only_new.size(), 1u);
  EXPECT_EQ(diff.only_new[0], "BM_Added");
}

}  // namespace
}  // namespace impreg
