#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace impreg {
namespace {

TEST(StatsTest, SummarizeBasic) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummarizeSingle) {
  const Summary s = Summarize({42.0});
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(Summarize({3.0, 1.0, 2.0}).median, 2.0);
}

TEST(StatsTest, QuantileEndpointsAndMiddle) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 20.0);
}

TEST(StatsTest, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 1.0}, 0.75), 0.75);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(Mean({}), 0.0); }

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = y;
  for (double& v : neg) v = -v;
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(StatsTest, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * std::pow(i, 2.5));
  }
  EXPECT_NEAR(LogLogSlope(x, y), 2.5, 1e-10);
}

TEST(StatsTest, LogLogSlopeIgnoresNonPositive) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y = {5.0, 1.0, 2.0, 4.0};
  EXPECT_NEAR(LogLogSlope(x, y), 1.0, 1e-12);
}

TEST(StatsTest, FormatGSignificantDigits) {
  EXPECT_EQ(FormatG(3.14159265, 3), "3.14");
  EXPECT_EQ(FormatG(0.000123456, 4), "0.0001235");
  EXPECT_EQ(FormatG(2.0, 5), "2");
}

}  // namespace
}  // namespace impreg
