#include "streaming/dynamic_graph.h"
#include "streaming/incremental_ppr.h"
#include "streaming/montecarlo.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

std::uint64_t Bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Bitwise equality of two serialized graphs: adjacency heads and
/// weight bits in order, degree bits, edge count, volume bits.
void ExpectPartsBitIdentical(const DynamicGraph::Parts& got,
                             const DynamicGraph::Parts& want) {
  ASSERT_EQ(got.adjacency.size(), want.adjacency.size());
  for (std::size_t u = 0; u < want.adjacency.size(); ++u) {
    SCOPED_TRACE("node " + std::to_string(u));
    ASSERT_EQ(got.adjacency[u].size(), want.adjacency[u].size());
    for (std::size_t i = 0; i < want.adjacency[u].size(); ++i) {
      EXPECT_EQ(got.adjacency[u][i].head, want.adjacency[u][i].head);
      EXPECT_EQ(Bits(got.adjacency[u][i].weight),
                Bits(want.adjacency[u][i].weight));
    }
    EXPECT_EQ(Bits(got.degrees[u]), Bits(want.degrees[u]));
  }
  EXPECT_EQ(got.num_edges, want.num_edges);
  EXPECT_EQ(Bits(got.total_volume), Bits(want.total_volume));
}

TEST(DynamicGraphTest, AddEdgeAccumulatesAndCounts) {
  DynamicGraph g(4);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 0, 1.0);
  g.AddEdge(2, 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_DOUBLE_EQ(g.Degree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.Degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 8.0);
}

TEST(DynamicGraphTest, SelfLoopOnce) {
  DynamicGraph g(2);
  g.AddEdge(0, 0, 5.0);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_DOUBLE_EQ(g.Degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 5.0);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
}

TEST(DynamicGraphTest, RoundTripWithImmutableGraph) {
  Rng rng(1);
  const Graph original = ErdosRenyi(40, 0.2, rng);
  const DynamicGraph dynamic = DynamicGraph::FromGraph(original);
  const Graph back = dynamic.ToGraph();
  ASSERT_EQ(back.NumEdges(), original.NumEdges());
  for (NodeId u = 0; u < original.NumNodes(); ++u) {
    EXPECT_DOUBLE_EQ(back.Degree(u), original.Degree(u));
  }
}

TEST(DynamicGraphTest, RemoveEdgeDecrementsThenErases) {
  DynamicGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 2, 3.0);  // Self-loop.

  // Partial removal decrements both mirrored arcs, keeps the edge.
  g.RemoveEdge(0, 1, 0.5);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(g.Degree(0), 1.5);
  EXPECT_DOUBLE_EQ(g.Degree(1), 2.5);

  // Removing exactly the stored weight erases the edge.
  g.RemoveEdge(0, 1, 1.5);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(g.Degree(0), 0.0);
  EXPECT_TRUE(g.Neighbors(0).empty());

  // Self-loops decrement once (single arc) and erase like any edge.
  g.RemoveEdge(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(g.Degree(2), 3.0);  // 1.0 cross + 2.0 loop.
  EXPECT_DOUBLE_EQ(g.TotalVolume(), 4.0);
  g.RemoveEdge(2, 2);  // Default weight 0.0 = remove entirely.
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_DOUBLE_EQ(g.Degree(2), 1.0);

  // The abort contract: missing edges, over-removal, and bad weights
  // are programming errors, not soft failures.
  EXPECT_DEATH(g.RemoveEdge(0, 1), "no such edge");
  EXPECT_DEATH(g.RemoveEdge(1, 2, 5.0), "exceeds the stored weight");
  EXPECT_DEATH(g.RemoveEdge(1, 2, -1.0), "non-negative");
}

TEST(DynamicGraphTest, FullRemovalErasesInPlacePreservingSurvivorOrder) {
  DynamicGraph g(5);
  g.AddEdge(0, 3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(0, 4, 0.5);
  g.AddEdge(0, 2);
  g.RemoveEdge(0, 1);
  // Survivors keep their insertion positions — no swap-with-last.
  ASSERT_EQ(g.Neighbors(0).size(), 3u);
  EXPECT_EQ(g.Neighbors(0)[0].head, 3);
  EXPECT_EQ(g.Neighbors(0)[1].head, 4);
  EXPECT_EQ(g.Neighbors(0)[2].head, 2);
  EXPECT_TRUE(g.Neighbors(1).empty());
  // Degree re-folds over the surviving row.
  EXPECT_DOUBLE_EQ(g.Degree(0), 2.5);
}

TEST(DynamicGraphTest, AddThenRemoveRestoresPriorBitsExactly) {
  Rng rng(20);
  DynamicGraph g = DynamicGraph::FromGraph(ErdosRenyi(30, 0.15, rng));
  const DynamicGraph::Parts before = g.ExportParts();

  // A non-edge to exercise the insert-then-full-remove round-trip.
  NodeId a = -1, b = -1;
  for (NodeId u = 0; u < g.NumNodes() && a < 0; ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      if (g.EdgeWeight(u, v) == 0.0) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_GE(a, 0);

  g.AddEdge(a, b, 0.7);
  g.AddEdge(a, b, 0.05);   // Accumulate — full removal erases regardless.
  g.AddEdge(a, a, 2.5);    // Self-loop round-trips too.
  g.RemoveEdge(a, a);
  g.RemoveEdge(a, b);
  ExpectPartsBitIdentical(g.ExportParts(), before);
}

TEST(DynamicGraphTest, DeleteThenReAddIsBitIdenticalToNeverTouched) {
  Rng rng(21);
  DynamicGraph g = DynamicGraph::FromGraph(ErdosRenyi(30, 0.15, rng));
  NodeId a = -1, b = -1;
  for (NodeId u = 0; u < g.NumNodes() && a < 0; ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      if (g.EdgeWeight(u, v) == 0.0) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_GE(a, 0);
  g.AddEdge(a, b, 1.25);
  const DynamicGraph::Parts untouched = g.ExportParts();

  // Full delete + re-add lands the entry back in the same (terminal)
  // row positions, so every bit returns.
  g.RemoveEdge(a, b);
  g.AddEdge(a, b, 1.25);
  ExpectPartsBitIdentical(g.ExportParts(), untouched);

  // Partial decrement + matching re-accumulate also round-trips here
  // (both mirrored arcs take the identical subtraction and addition).
  g.RemoveEdge(a, b, 0.25);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(b, a), 1.0);
  g.AddEdge(a, b, 0.25);
  ExpectPartsBitIdentical(g.ExportParts(), untouched);
}

TEST(DynamicGraphTest, FromPartsValidatesPairwiseSymmetry) {
  DynamicGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2);
  const DynamicGraph::Parts parts = g.ExportParts();

  // The honest round-trip is bit-exact.
  ExpectPartsBitIdentical(
      DynamicGraph::FromParts(parts.adjacency, parts.degrees,
                              parts.num_edges, parts.total_volume)
          .ExportParts(),
      parts);

  // Arc (0→1) without its mirror (1→0).
  DynamicGraph::Parts missing = parts;
  ASSERT_EQ(missing.adjacency[1][0].head, 0);
  missing.adjacency[1].erase(missing.adjacency[1].begin());
  EXPECT_DEATH(DynamicGraph::FromParts(missing.adjacency, missing.degrees,
                                       missing.num_edges,
                                       missing.total_volume),
               "mirror");

  // Mirrored arcs with different weight bits.
  DynamicGraph::Parts skewed = parts;
  ASSERT_EQ(skewed.adjacency[0][0].head, 1);
  skewed.adjacency[0][0].weight = 2.5;
  EXPECT_DEATH(DynamicGraph::FromParts(skewed.adjacency, skewed.degrees,
                                       skewed.num_edges,
                                       skewed.total_volume),
               "different weights");

  // A row listing the same head twice.
  DynamicGraph::Parts dup = parts;
  dup.adjacency[0].push_back({1, 2.0});
  EXPECT_DEATH(DynamicGraph::FromParts(dup.adjacency, dup.degrees,
                                       dup.num_edges, dup.total_volume),
               "duplicate");

  // A declared edge count that disagrees with the arcs present.
  EXPECT_DEATH(DynamicGraph::FromParts(parts.adjacency, parts.degrees,
                                       parts.num_edges + 1,
                                       parts.total_volume),
               "declared edge count");
}

class IncrementalPprTest : public testing::Test {
 protected:
  // Reference: exact PPR on the frozen graph.
  Vector ExactPpr(const DynamicGraph& g, const Vector& seed, double gamma) {
    const Graph frozen = g.ToGraph();
    PageRankOptions options;
    options.gamma = gamma;
    options.tolerance = 1e-14;
    options.max_iterations = 100000;
    return PersonalizedPageRank(frozen, seed, options).scores;
  }
};

TEST_F(IncrementalPprTest, StaticCaseMatchesExact) {
  Rng rng(2);
  const Graph g = ErdosRenyi(60, 0.1, rng);
  const DynamicGraph dynamic = DynamicGraph::FromGraph(g);
  Vector seed(60, 0.0);
  seed[5] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-9;
  const IncrementalPersonalizedPageRank inc(dynamic, seed, options);
  const Vector exact = ExactPpr(dynamic, seed, options.gamma);
  EXPECT_LT(DistanceL1(inc.Scores(), exact),
            options.epsilon * dynamic.TotalVolume() + 1e-9);
}

TEST_F(IncrementalPprTest, TracksInsertionsToTheEnd) {
  // Stream the edges of a graph one by one; the final estimate must
  // match the exact PPR of the final graph within the residual bound.
  Rng rng(3);
  const Graph final_graph = ErdosRenyi(50, 0.15, rng);
  DynamicGraph empty(50);
  Vector seed(50, 0.0);
  seed[0] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-8;
  IncrementalPersonalizedPageRank inc(empty, seed, options);
  for (NodeId u = 0; u < final_graph.NumNodes(); ++u) {
    for (const Arc& arc : final_graph.Neighbors(u)) {
      if (arc.head >= u) inc.AddEdge(u, arc.head, arc.weight);
    }
  }
  const Vector exact = ExactPpr(inc.graph(), seed, options.gamma);
  EXPECT_LT(DistanceL1(inc.Scores(), exact),
            options.epsilon * inc.graph().TotalVolume() + 1e-9);
  EXPECT_EQ(inc.graph().NumEdges(), final_graph.NumEdges());
}

TEST_F(IncrementalPprTest, MatchesFreshRebuildAfterEveryInsertion) {
  // Property check at every step of a short stream.
  DynamicGraph g(8);
  Vector seed(8, 0.0);
  seed[0] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-10;
  IncrementalPersonalizedPageRank inc(g, seed, options);
  const std::vector<std::pair<NodeId, NodeId>> stream = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {4, 5},
      {5, 6}, {6, 7}, {7, 4}, {3, 4}, {0, 0}, {1, 2}};
  for (const auto& [u, v] : stream) {
    inc.AddEdge(u, v);
    const Vector exact = ExactPpr(inc.graph(), seed, options.gamma);
    ASSERT_LT(DistanceL1(inc.Scores(), exact), 1e-7)
        << "after inserting {" << u << "," << v << "}";
  }
}

TEST_F(IncrementalPprTest, UpdatesAreCheapRelativeToRebuild) {
  // The point of the data structure: per-insertion pushes are far
  // fewer than a from-scratch recomputation.
  Rng rng(4);
  const Graph base = ErdosRenyi(500, 0.02, rng);
  DynamicGraph dynamic = DynamicGraph::FromGraph(base);
  Vector seed(500, 0.0);
  seed[0] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-7;
  IncrementalPersonalizedPageRank inc(dynamic, seed, options);
  const std::int64_t initial_pushes = inc.TotalPushes();
  std::int64_t update_pushes = 0;
  Rng pick(5);
  const int kInsertions = 50;
  for (int i = 0; i < kInsertions; ++i) {
    const NodeId u = static_cast<NodeId>(pick.NextBounded(500));
    const NodeId v = static_cast<NodeId>(pick.NextBounded(500));
    if (u == v) continue;
    inc.AddEdge(u, v);
    update_pushes += inc.LastEdgePushes();
  }
  EXPECT_LT(update_pushes / kInsertions, initial_pushes / 4);
}

TEST_F(IncrementalPprTest, AddSelfLoopMatchesFromScratchPush) {
  // A self-loop (u == v) exercises the repair path's single-column
  // scatter where the column endpoint is its own neighbor.
  Rng rng(10);
  const Graph base = ErdosRenyi(40, 0.15, rng);
  const DynamicGraph dynamic = DynamicGraph::FromGraph(base);
  Vector seed(40, 0.0);
  seed[7] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-8;
  IncrementalPersonalizedPageRank inc(dynamic, seed, options);
  inc.AddEdge(3, 3, 2.0);
  const double bound =
      2.0 * options.epsilon * inc.graph().TotalVolume() + 1e-9;
  const IncrementalPersonalizedPageRank fresh(inc.graph(), seed, options);
  EXPECT_LT(DistanceL1(inc.Scores(), fresh.Scores()), bound);
  EXPECT_LT(DistanceL1(inc.Scores(), ExactPpr(inc.graph(), seed,
                                              options.gamma)),
            options.epsilon * inc.graph().TotalVolume() + 1e-9);
}

TEST_F(IncrementalPprTest, AddEdgeIncidentToSeedMatchesFromScratchPush) {
  // Inserting at the seed perturbs the largest residual mass — the
  // stress case for the invariant-restoring repair.
  Rng rng(11);
  const Graph base = ErdosRenyi(40, 0.15, rng);
  const DynamicGraph dynamic = DynamicGraph::FromGraph(base);
  Vector seed(40, 0.0);
  seed[7] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-8;
  IncrementalPersonalizedPageRank inc(dynamic, seed, options);
  inc.AddEdge(7, 19, 3.0);
  const double bound =
      2.0 * options.epsilon * inc.graph().TotalVolume() + 1e-9;
  const IncrementalPersonalizedPageRank fresh(inc.graph(), seed, options);
  EXPECT_LT(DistanceL1(inc.Scores(), fresh.Scores()), bound);
  EXPECT_LT(DistanceL1(inc.Scores(), ExactPpr(inc.graph(), seed,
                                              options.gamma)),
            options.epsilon * inc.graph().TotalVolume() + 1e-9);
}

TEST_F(IncrementalPprTest, RemoveEdgeMatchesFromScratchPush) {
  // Deleting at the seed is the removal stress case — the mirror of
  // AddEdgeIncidentToSeedMatchesFromScratchPush: the negative column
  // scatter perturbs the largest residual mass.
  Rng rng(14);
  const Graph base = ErdosRenyi(40, 0.15, rng);
  const DynamicGraph dynamic = DynamicGraph::FromGraph(base);
  Vector seed(40, 0.0);
  seed[7] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-8;
  IncrementalPersonalizedPageRank inc(dynamic, seed, options);

  ASSERT_FALSE(inc.graph().Neighbors(7).empty());
  const NodeId gone = inc.graph().Neighbors(7)[0].head;
  inc.RemoveEdge(7, gone);
  EXPECT_DOUBLE_EQ(inc.graph().EdgeWeight(7, gone), 0.0);

  // A partial decrement elsewhere exercises the weight-delta path.
  ASSERT_FALSE(inc.graph().Neighbors(12).empty());
  const NodeId thinned = inc.graph().Neighbors(12)[0].head;
  inc.RemoveEdge(12, thinned, 0.25);

  const double volume = inc.graph().TotalVolume();
  const IncrementalPersonalizedPageRank fresh(inc.graph(), seed, options);
  EXPECT_LT(DistanceL1(inc.Scores(), fresh.Scores()),
            2.0 * options.epsilon * volume + 1e-9);
  EXPECT_LT(DistanceL1(inc.Scores(),
                       ExactPpr(inc.graph(), seed, options.gamma)),
            options.epsilon * volume + 1e-9);
  EXPECT_EQ(inc.diagnostics().status, SolveStatus::kConverged);
}

TEST_F(IncrementalPprTest, MixedEditsMatchFreshRebuildAfterEveryStep) {
  // Property check over an interleaved add/remove stream, including
  // full removals, a partial decrement, a self-loop's whole lifecycle,
  // and a delete + re-add of the same endpoints.
  DynamicGraph g(8);
  Vector seed(8, 0.0);
  seed[0] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-10;
  IncrementalPersonalizedPageRank inc(g, seed, options);
  struct Edit {
    NodeId u, v;
    double weight;
    bool remove;
  };
  const std::vector<Edit> stream = {
      {0, 1, 1.0, false}, {1, 2, 1.0, false},  {2, 3, 2.0, false},
      {3, 0, 1.0, false}, {0, 2, 1.0, false},  {1, 2, 0.0, true},
      {4, 5, 1.0, false}, {5, 6, 1.0, false},  {6, 7, 1.0, false},
      {7, 4, 1.0, false}, {3, 4, 1.0, false},  {2, 3, 0.5, true},
      {0, 0, 1.0, false}, {0, 0, 0.0, true},   {3, 0, 0.0, true},
      {1, 2, 0.5, false}};
  for (const Edit& e : stream) {
    if (e.remove) {
      inc.RemoveEdge(e.u, e.v, e.weight);
    } else {
      inc.AddEdge(e.u, e.v, e.weight);
    }
    const Vector exact = ExactPpr(inc.graph(), seed, options.gamma);
    ASSERT_LT(DistanceL1(inc.Scores(), exact), 1e-7)
        << (e.remove ? "after removing {" : "after inserting {") << e.u
        << "," << e.v << "}";
  }
  EXPECT_EQ(inc.graph().NumEdges(), 9);
  EXPECT_DOUBLE_EQ(inc.graph().EdgeWeight(2, 3), 1.5);
  EXPECT_DOUBLE_EQ(inc.graph().EdgeWeight(1, 2), 0.5);
}

TEST_F(IncrementalPprTest, HealthyRunReportsConverged) {
  Rng rng(12);
  const Graph g = ErdosRenyi(30, 0.2, rng);
  Vector seed(30, 0.0);
  seed[0] = 1.0;
  const IncrementalPersonalizedPageRank inc(DynamicGraph::FromGraph(g),
                                            seed, {});
  EXPECT_EQ(inc.diagnostics().status, SolveStatus::kConverged);
}

TEST_F(IncrementalPprTest, BudgetExhaustedReturnsBestSoFarWithStatus) {
  Rng rng(13);
  const Graph g = ErdosRenyi(300, 0.05, rng);
  Vector seed(300, 0.0);
  seed[0] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-12;
  WorkBudget budget(16);  // Far too small for this epsilon.
  options.budget = &budget;
  const IncrementalPersonalizedPageRank inc(DynamicGraph::FromGraph(g),
                                            seed, options);
  EXPECT_EQ(inc.diagnostics().status, SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(budget.Exhausted());
  // Best-so-far, not poison: the partial estimate is finite and
  // bounded by the total seed mass.
  double total = 0.0;
  for (double v : inc.Scores()) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_LE(total, 1.0 + 1e-12);
}

TEST(MonteCarloTest, ConvergesToExactPpr) {
  Rng rng(6);
  const Graph g = ErdosRenyi(40, 0.2, rng);
  PageRankOptions exact_options;
  exact_options.gamma = 0.2;
  exact_options.tolerance = 1e-13;
  const Vector exact =
      PersonalizedPageRank(g, SingleNodeSeed(g, 3), exact_options).scores;
  double previous = 2.0;
  for (int walks : {100, 10000, 1000000}) {
    MonteCarloOptions options;
    options.gamma = 0.2;
    options.walks_per_node = walks;
    const Vector estimate = MonteCarloPersonalizedPageRank(g, 3, options);
    const double error = DistanceL1(estimate, exact);
    EXPECT_LT(error, previous);
    previous = error;
  }
  EXPECT_LT(previous, 0.01);
}

TEST(MonteCarloTest, EstimateIsADistribution) {
  Rng rng(7);
  const Graph g = ErdosRenyi(30, 0.2, rng);
  MonteCarloOptions options;
  options.walks_per_node = 500;
  const Vector estimate = MonteCarloPersonalizedPageRank(g, 0, options);
  EXPECT_NEAR(Sum(estimate), 1.0, 1e-12);
  for (double v : estimate) EXPECT_GE(v, 0.0);
}

TEST(MonteCarloTest, GlobalEstimateTracksExactGlobalPageRank) {
  Rng rng(8);
  const Graph g = BarabasiAlbert(200, 3, rng);
  MonteCarloOptions options;
  options.gamma = 0.15;
  options.walks_per_node = 200;
  const Vector estimate = MonteCarloPageRank(g, options);
  PageRankOptions exact_options;
  exact_options.gamma = 0.15;
  const Vector exact = GlobalPageRank(g, exact_options).scores;
  EXPECT_LT(DistanceL1(estimate, exact), 0.08);
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  const Graph g = CycleGraph(12);
  MonteCarloOptions options;
  options.seed = 99;
  const Vector a = MonteCarloPersonalizedPageRank(g, 0, options);
  const Vector b = MonteCarloPersonalizedPageRank(g, 0, options);
  EXPECT_EQ(a, b);
}

TEST(MonteCarloTest, WrapperMatchesSolveBitwise) {
  const Graph g = CycleGraph(12);
  MonteCarloOptions options;
  options.seed = 5;
  options.walks_per_node = 200;
  EXPECT_EQ(MonteCarloPersonalizedPageRank(g, 0, options),
            MonteCarloPersonalizedPageRankSolve(g, 0, options).scores);
  EXPECT_EQ(MonteCarloPageRank(g, options),
            MonteCarloPageRankSolve(g, options).scores);
}

TEST(MonteCarloTest, HealthyRunReportsConvergedAndCountsWalks) {
  const Graph g = CycleGraph(10);
  MonteCarloOptions options;
  options.walks_per_node = 123;
  const MonteCarloResult result =
      MonteCarloPersonalizedPageRankSolve(g, 0, options);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kConverged);
  EXPECT_EQ(result.walks, 123);
  EXPECT_EQ(result.requested_walks, 123);
  EXPECT_GT(result.steps, 0);
}

TEST(MonteCarloTest, BudgetExhaustedNormalizesOverCompletedWalks) {
  const Graph g = CycleGraph(20);
  MonteCarloOptions options;
  options.walks_per_node = 5000;
  WorkBudget budget(50);  // A handful of walks' worth of steps.
  options.budget = &budget;
  const MonteCarloResult result =
      MonteCarloPersonalizedPageRankSolve(g, 0, options);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kBudgetExhausted);
  EXPECT_GT(result.walks, 0);
  EXPECT_LT(result.walks, result.requested_walks);
  // Best-so-far is still a distribution over the completed walks.
  EXPECT_NEAR(Sum(result.scores), 1.0, 1e-12);
  for (double v : result.scores) EXPECT_GE(v, 0.0);
}

TEST(MonteCarloTest, IsolatedSeedStaysPut) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  MonteCarloOptions options;
  options.walks_per_node = 50;
  const Vector estimate = MonteCarloPersonalizedPageRank(g, 2, options);
  EXPECT_DOUBLE_EQ(estimate[2], 1.0);
}

}  // namespace
}  // namespace impreg
