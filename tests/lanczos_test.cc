#include "linalg/lanczos.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"
#include "linalg/graph_operators.h"

namespace impreg {
namespace {

TEST(LanczosTest, SmallestEigenvalueOfNormalizedLaplacianIsZero) {
  Rng rng(1);
  const Graph g = ErdosRenyi(80, 0.1, rng);
  const NormalizedLaplacianOperator lap(g);
  const LanczosResult result = LanczosSmallest(lap, 1);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 0.0, 1e-9);
}

TEST(LanczosTest, MatchesDenseEigenvaluesOnRandomGraph) {
  Rng rng(2);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  const NormalizedLaplacianOperator lap(g);
  const SymmetricEigen dense =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  const LanczosResult result = LanczosSmallest(lap, 4);
  ASSERT_GE(result.eigenvalues.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], dense.eigenvalues[i], 1e-8);
  }
}

TEST(LanczosTest, LargestMatchesDense) {
  Rng rng(3);
  const Graph g = ErdosRenyi(40, 0.2, rng);
  const NormalizedLaplacianOperator lap(g);
  const SymmetricEigen dense =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  const LanczosResult result = LanczosLargest(lap, 2);
  EXPECT_NEAR(result.eigenvalues[0], dense.eigenvalues.back(), 1e-8);
  EXPECT_NEAR(result.eigenvalues[1],
              dense.eigenvalues[dense.eigenvalues.size() - 2], 1e-8);
}

TEST(LanczosTest, DeflationTargetsSecondEigenpair) {
  const Graph g = CavemanGraph(2, 8);  // Clear spectral gap.
  const NormalizedLaplacianOperator lap(g);
  LanczosOptions options;
  options.deflate.push_back(lap.TrivialEigenvector());
  const LanczosResult result = LanczosSmallest(lap, 1, options);
  const SymmetricEigen dense =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  EXPECT_NEAR(result.eigenvalues[0], dense.eigenvalues[1], 1e-9);
  // The Ritz vector is orthogonal to the deflated direction.
  EXPECT_NEAR(Dot(result.eigenvectors[0], lap.TrivialEigenvector()), 0.0,
              1e-9);
}

TEST(LanczosTest, EigenvectorSatisfiesDefinition) {
  Rng rng(4);
  const Graph g = ErdosRenyi(60, 0.12, rng);
  const NormalizedLaplacianOperator lap(g);
  const LanczosResult result = LanczosSmallest(lap, 2);
  for (int k = 0; k < 2; ++k) {
    Vector lx;
    lap.Apply(result.eigenvectors[k], lx);
    Vector expected = result.eigenvectors[k];
    Scale(result.eigenvalues[k], expected);
    EXPECT_LT(DistanceL2(lx, expected), 1e-7);
  }
}

TEST(LanczosTest, PathGraphLambda2Analytic) {
  // ℒ eigenvalues of the n-path: 1 − cos(kπ/(n−1)) scaled... use the
  // combinatorial Laplacian instead: 2 − 2cos(kπ/n) for the free chain.
  const int n = 20;
  const Graph g = PathGraph(n);
  const CombinatorialLaplacianOperator lap(g);
  LanczosOptions options;
  options.deflate.emplace_back(n, 1.0);  // Constant null vector.
  const LanczosResult result = LanczosSmallest(lap, 1, options);
  const double expected = 2.0 - 2.0 * std::cos(M_PI / n);
  EXPECT_NEAR(result.eigenvalues[0], expected, 1e-9);
}

TEST(LanczosTest, InvariantSubspaceTerminatesEarly) {
  // Complete graph: ℒ has only two distinct eigenvalues, so Lanczos
  // finds an invariant subspace after ~2 steps.
  const Graph g = CompleteGraph(30);
  const NormalizedLaplacianOperator lap(g);
  const LanczosResult result = LanczosSmallest(lap, 1);
  EXPECT_LE(result.iterations, 5);
  EXPECT_NEAR(result.eigenvalues[0], 0.0, 1e-10);
}


TEST(LanczosTest, ResolvesDegenerateEigenvalues) {
  // Ring of 4 cliques: the quotient C4 Laplacian has a doubly
  // degenerate eigenvalue, so the 4 smallest eigenvalues of ℒ include a
  // multiplicity-2 pair. Single-vector Krylov cannot see both copies;
  // the deflation-restart path must.
  const Graph g = CavemanGraph(4, 10);
  const NormalizedLaplacianOperator lap(g);
  const LanczosResult result = LanczosSmallest(lap, 4);
  const SymmetricEigen dense =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], dense.eigenvalues[i], 1e-8);
  }
  // The middle pair is (near-)degenerate and BOTH copies are found.
  EXPECT_NEAR(result.eigenvalues[1], result.eigenvalues[2], 1e-6);
  // Ritz vectors mutually orthogonal.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_NEAR(Dot(result.eigenvectors[a], result.eigenvectors[b]), 0.0,
                  1e-7);
    }
  }
}

TEST(KrylovExpTest, MatchesDenseExponentialAction) {
  Rng rng(5);
  const Graph g = ErdosRenyi(40, 0.2, rng);
  const NormalizedLaplacianOperator lap(g);
  const SymmetricEigen dense =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  for (double t : {0.1, 1.0, 5.0, 20.0}) {
    Vector v(g.NumNodes());
    for (double& x : v) x = rng.NextGaussian();
    const Vector krylov = KrylovExpMultiply(lap, -t, v);
    const DenseMatrix expm = ApplySpectralFunction(
        dense, [&](double lambda) { return std::exp(-t * lambda); });
    const Vector exact = expm.Apply(v);
    EXPECT_LT(DistanceL2(krylov, exact), 1e-8 * (1.0 + Norm2(exact)))
        << "t = " << t;
  }
}

TEST(KrylovExpTest, ZeroScaleIsIdentity) {
  const Graph g = CycleGraph(10);
  const NormalizedLaplacianOperator lap(g);
  Vector v(10, 0.0);
  v[3] = 2.0;
  const Vector out = KrylovExpMultiply(lap, 0.0, v);
  EXPECT_LT(DistanceL2(out, v), 1e-12);
}

TEST(KrylovExpTest, ZeroVectorStaysZero) {
  const Graph g = CycleGraph(8);
  const NormalizedLaplacianOperator lap(g);
  const Vector out = KrylovExpMultiply(lap, -1.0, Vector(8, 0.0));
  EXPECT_DOUBLE_EQ(Norm2(out), 0.0);
}

// An operator whose Apply returns poison after a configurable number of
// healthy applications — exercises the mid-iteration containment paths.
class PoisonAfterOperator : public LinearOperator {
 public:
  PoisonAfterOperator(const LinearOperator& inner, int healthy_applies)
      : inner_(inner), remaining_(healthy_applies) {}
  int Dimension() const override { return inner_.Dimension(); }
  void Apply(const Vector& x, Vector& y) const override {
    inner_.Apply(x, y);
    if (remaining_ > 0) {
      --remaining_;
      return;
    }
    y[0] = std::numeric_limits<double>::quiet_NaN();
  }

 private:
  const LinearOperator& inner_;
  mutable int remaining_;
};

TEST(LanczosTest, StatusMirrorsConvergedFlag) {
  Rng rng(11);
  const Graph g = ErdosRenyi(60, 0.12, rng);
  const NormalizedLaplacianOperator lap(g);
  const LanczosResult ok = LanczosSmallest(lap, 2);
  EXPECT_TRUE(ok.converged);
  EXPECT_EQ(ok.diagnostics.status, SolveStatus::kConverged);

  LanczosOptions capped;
  capped.max_iterations = 2;
  capped.tolerance = 1e-14;
  const LanczosResult stopped = LanczosSmallest(lap, 2, capped);
  EXPECT_FALSE(stopped.converged);
  EXPECT_EQ(stopped.diagnostics.status, SolveStatus::kMaxIterations);
  EXPECT_TRUE(stopped.diagnostics.usable());
}

TEST(LanczosTest, PoisonedOperatorIsContained) {
  Rng rng(12);
  const Graph g = ErdosRenyi(40, 0.15, rng);
  const NormalizedLaplacianOperator lap(g);
  const PoisonAfterOperator poison(lap, 5);
  const LanczosResult result = LanczosSmallest(poison, 2);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.diagnostics.status, SolveStatus::kNonFinite);
  for (const Vector& v : result.eigenvectors) {
    EXPECT_TRUE(AllFinite(v));
  }
  EXPECT_TRUE(AllFinite(result.eigenvalues));
}

TEST(KrylovExpTest, DiagnosticsReportContainment) {
  const Graph g = CycleGraph(12);
  const NormalizedLaplacianOperator lap(g);
  Vector v(12, 0.0);
  v[4] = 1.0;

  SolverDiagnostics healthy;
  const Vector out = KrylovExpMultiply(lap, -1.0, v, 60, &healthy);
  EXPECT_EQ(healthy.status, SolveStatus::kConverged);
  EXPECT_TRUE(AllFinite(out));

  const PoisonAfterOperator poison(lap, 2);
  SolverDiagnostics contained;
  const Vector degraded = KrylovExpMultiply(poison, -1.0, v, 60, &contained);
  EXPECT_NE(contained.status, SolveStatus::kConverged);
  EXPECT_TRUE(AllFinite(degraded));
}

}  // namespace
}  // namespace impreg
