#include "linalg/graph_operators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"
#include "util/rng.h"

namespace impreg {
namespace {

// Compares a matrix-free operator against its dense counterpart on
// random vectors.
void ExpectOperatorMatchesDense(const LinearOperator& op,
                                const DenseMatrix& dense, Rng& rng,
                                double tol = 1e-12) {
  ASSERT_EQ(op.Dimension(), dense.Rows());
  for (int trial = 0; trial < 5; ++trial) {
    Vector x(op.Dimension());
    for (double& v : x) v = rng.NextGaussian();
    const Vector expected = dense.Apply(x);
    Vector got;
    op.Apply(x, got);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expected[i], tol);
    }
  }
}

class GraphOperatorsTest : public testing::TestWithParam<int> {
 protected:
  Graph MakeGraph() const {
    Rng rng(GetParam());
    switch (GetParam() % 4) {
      case 0:
        return PathGraph(17);
      case 1:
        return CompleteGraph(9);
      case 2:
        return ErdosRenyi(40, 0.2, rng);
      default:
        return CavemanGraph(3, 6);
    }
  }
};

TEST_P(GraphOperatorsTest, AdjacencyMatchesDense) {
  const Graph g = MakeGraph();
  Rng rng(1 + GetParam());
  ExpectOperatorMatchesDense(AdjacencyOperator(g), DenseAdjacency(g), rng);
}

TEST_P(GraphOperatorsTest, CombinatorialLaplacianMatchesDense) {
  const Graph g = MakeGraph();
  Rng rng(2 + GetParam());
  ExpectOperatorMatchesDense(CombinatorialLaplacianOperator(g),
                             DenseCombinatorialLaplacian(g), rng);
}

TEST_P(GraphOperatorsTest, NormalizedLaplacianMatchesDense) {
  const Graph g = MakeGraph();
  Rng rng(3 + GetParam());
  ExpectOperatorMatchesDense(NormalizedLaplacianOperator(g),
                             DenseNormalizedLaplacian(g), rng);
}

INSTANTIATE_TEST_SUITE_P(Families, GraphOperatorsTest,
                         testing::Values(0, 1, 2, 3));

TEST(GraphOperatorsTest, LaplacianAnnihilatesConstants) {
  const Graph g = CavemanGraph(3, 5);
  const CombinatorialLaplacianOperator lap(g);
  Vector ones(g.NumNodes(), 1.0);
  Vector out;
  lap.Apply(ones, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(GraphOperatorsTest, NormalizedLaplacianAnnihilatesTrivial) {
  Rng rng(5);
  const Graph g = ErdosRenyi(60, 0.1, rng);
  const NormalizedLaplacianOperator lap(g);
  Vector out;
  lap.Apply(lap.TrivialEigenvector(), out);
  EXPECT_NEAR(Norm2(out), 0.0, 1e-12);
}

TEST(GraphOperatorsTest, TrivialEigenvectorIsUnitAndNonnegative) {
  const Graph g = StarGraph(10);
  const Vector v = TrivialNormalizedEigenvector(g);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-14);
  for (double value : v) EXPECT_GE(value, 0.0);
  // Proportional to sqrt(degree): hub entry = sqrt(9)·leaf entry.
  EXPECT_NEAR(v[0], 3.0 * v[1], 1e-12);
}

TEST(GraphOperatorsTest, RandomWalkPreservesMass) {
  Rng rng(6);
  const Graph g = ErdosRenyi(50, 0.2, rng);
  const RandomWalkOperator walk(g);
  Vector p(g.NumNodes(), 0.0);
  p[7] = 1.0;
  Vector q;
  walk.Apply(p, q);
  EXPECT_NEAR(Sum(q), 1.0, 1e-12);
  for (double v : q) EXPECT_GE(v, 0.0);
}

TEST(GraphOperatorsTest, RandomWalkAnnihilatesIsolatedMass) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  const RandomWalkOperator walk(g);
  Vector p = {0.0, 0.0, 1.0};
  Vector q;
  walk.Apply(p, q);
  EXPECT_NEAR(Sum(q), 0.0, 1e-15);
}

TEST(GraphOperatorsTest, LazyWalkFixesStationaryDistribution) {
  Rng rng(7);
  const Graph g = ErdosRenyi(40, 0.25, rng);
  const LazyWalkOperator walk(g, 0.5);
  Vector pi(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    pi[u] = g.Degree(u) / g.TotalVolume();
  }
  Vector out;
  walk.Apply(pi, out);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(out[i], pi[i], 1e-12);
  }
}

TEST(GraphOperatorsTest, LazyWalkIsolatedNodeHoldsMass) {
  GraphBuilder builder(2);
  const Graph g = builder.Build();
  const LazyWalkOperator walk(g, 0.3);
  Vector p = {0.4, 0.6};
  Vector q;
  walk.Apply(p, q);
  EXPECT_EQ(q, p);
}

TEST(GraphOperatorsTest, ShiftedOperatorComputesAffineCombination) {
  const Graph g = PathGraph(6);
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator shifted(lap, -1.0, 2.0);  // 2I − ℒ.
  Rng rng(8);
  Vector x(6);
  for (double& v : x) v = rng.NextGaussian();
  Vector lx, sx;
  lap.Apply(x, lx);
  shifted.Apply(x, sx);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(sx[i], 2.0 * x[i] - lx[i], 1e-14);
  }
}

TEST(GraphOperatorsTest, RayleighQuotientBounds) {
  // Spectrum of ℒ lies in [0, 2]; Rayleigh quotients must too.
  Rng rng(9);
  const Graph g = ErdosRenyi(30, 0.3, rng);
  const NormalizedLaplacianOperator lap(g);
  for (int trial = 0; trial < 10; ++trial) {
    Vector x(g.NumNodes());
    for (double& v : x) v = rng.NextGaussian();
    const double r = lap.RayleighQuotient(x);
    EXPECT_GE(r, -1e-12);
    EXPECT_LE(r, 2.0 + 1e-12);
  }
}

TEST(GraphOperatorsTest, SelfLoopsEnterDegreeNotCut) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(0, 0, 2.0);
  const Graph g = builder.Build();
  const NormalizedLaplacianOperator lap(g);
  // ℒ = I − D^{-1/2} A D^{-1/2}; with the loop, A(0,0) = 2, d0 = 3.
  const DenseMatrix dense = DenseNormalizedLaplacian(g);
  EXPECT_NEAR(dense.At(0, 0), 1.0 - 2.0 / 3.0, 1e-14);
  Rng rng(10);
  ExpectOperatorMatchesDense(lap, dense, rng);
}

}  // namespace
}  // namespace impreg
