#include "flow/maxflow.h"

#include <gtest/gtest.h>

#include "graph/random_graphs.h"
#include "util/rng.h"

namespace impreg {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 1), 3.5);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 5.0);
  net.AddEdge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 2), 2.0);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 3.0);
  net.AddEdge(1, 3, 3.0);
  net.AddEdge(0, 2, 4.0);
  net.AddEdge(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 3), 7.0);
}

TEST(MaxFlowTest, ClassicTextbookNetwork) {
  // CLRS-style example.
  FlowNetwork net(6);
  net.AddEdge(0, 1, 16);
  net.AddEdge(0, 2, 13);
  net.AddEdge(1, 2, 10);
  net.AddEdge(2, 1, 4);
  net.AddEdge(1, 3, 12);
  net.AddEdge(3, 2, 9);
  net.AddEdge(2, 4, 14);
  net.AddEdge(4, 3, 7);
  net.AddEdge(3, 5, 20);
  net.AddEdge(4, 5, 4);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 5), 23.0);
}

TEST(MaxFlowTest, DisconnectedSinkHasZeroFlow) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 3), 0.0);
  const std::vector<char> side = net.MinCutSourceSide();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlowTest, MinCutSeparatesSourceAndSink) {
  Rng rng(1);
  FlowNetwork net(20);
  for (int i = 0; i < 60; ++i) {
    const int u = static_cast<int>(rng.NextBounded(20));
    const int v = static_cast<int>(rng.NextBounded(20));
    if (u != v) net.AddEdge(u, v, rng.NextDouble(0.1, 2.0));
  }
  net.MaxFlow(0, 19);
  const std::vector<char> side = net.MinCutSourceSide();
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[19]);
}

TEST(MaxFlowTest, MinCutCapacityEqualsFlowValue) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    FlowNetwork net(12);
    struct E {
      int u, v;
      double cap;
    };
    std::vector<E> edges;
    for (int i = 0; i < 40; ++i) {
      const int u = static_cast<int>(rng.NextBounded(12));
      const int v = static_cast<int>(rng.NextBounded(12));
      if (u == v) continue;
      const double cap = rng.NextDouble(0.5, 3.0);
      net.AddEdge(u, v, cap);
      edges.push_back({u, v, cap});
    }
    const double flow = net.MaxFlow(0, 11);
    const std::vector<char> side = net.MinCutSourceSide();
    double cut = 0.0;
    for (const E& e : edges) {
      if (side[e.u] && !side[e.v]) cut += e.cap;
    }
    EXPECT_NEAR(flow, cut, 1e-9);
  }
}

TEST(MaxFlowTest, UndirectedEdgesViaReverseCapacity) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 2.0, 2.0);
  net.AddEdge(1, 2, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 2), 2.0);
  net.Reset();
  EXPECT_DOUBLE_EQ(net.MaxFlow(2, 0), 2.0);  // Symmetric after reset.
}

TEST(MaxFlowTest, ResetRestoresCapacities) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 1.5);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 1), 0.0);  // Saturated.
  net.Reset();
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 1), 1.5);
}

TEST(MaxFlowTest, MinCutBeforeMaxFlowDies) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 1.0);
  EXPECT_DEATH(net.MinCutSourceSide(), "MaxFlow first");
}

TEST(MaxFlowTest, FractionalCapacities) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 0.3);
  net.AddEdge(0, 2, 0.7);
  net.AddEdge(1, 3, 1.0);
  net.AddEdge(2, 3, 0.25);
  EXPECT_NEAR(net.MaxFlow(0, 3), 0.55, 1e-12);
}

}  // namespace
}  // namespace impreg
