#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace impreg {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const int kBuckets = 8;
  const int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(19);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
      if (rng.NextBernoulli(p)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.02);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(31);
  const int n = 100;
  std::vector<int> perm = rng.Permutation(n);
  ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(37);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<int>{0});
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 40, k = 12;
    std::vector<int> sample = rng.SampleWithoutReplacement(n, k);
    ASSERT_EQ(sample.size(), static_cast<std::size_t>(k));
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(43);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(47);
  std::vector<int> values = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> original = values;
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(values, original);
}

}  // namespace
}  // namespace impreg
