#include "linalg/power_method.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "util/rng.h"

namespace impreg {
namespace {

Vector RandomVector(int n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (double& x : v) x = rng.NextGaussian();
  return v;
}

TEST(PowerMethodTest, FindsDominantEigenpairOfAdjacency) {
  const Graph g = CompleteGraph(10);  // A has dominant eigenvalue n−1.
  const AdjacencyOperator adj(g);
  const PowerMethodResult result =
      PowerMethod(adj, RandomVector(10, 1), {});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 9.0, 1e-8);
}

TEST(PowerMethodTest, SecondEigenpairMatchesLanczos) {
  Rng rng(2);
  const Graph g = ErdosRenyi(60, 0.1, rng);
  PowerMethodOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-12;
  const PowerMethodResult pm =
      SecondEigenpairPowerMethod(g, RandomVector(60, 3), options);

  const NormalizedLaplacianOperator lap(g);
  LanczosOptions lanczos;
  lanczos.deflate.push_back(lap.TrivialEigenvector());
  const LanczosResult lz = LanczosSmallest(lap, 1, lanczos);

  EXPECT_NEAR(pm.eigenvalue, lz.eigenvalues[0], 1e-6);
  EXPECT_LT(DistanceUpToSign(pm.eigenvector, lz.eigenvectors[0]), 1e-4);
}

TEST(PowerMethodTest, IterationCallbackFires) {
  const Graph g = CycleGraph(16);
  int calls = 0;
  PowerMethodOptions options;
  options.max_iterations = 25;
  options.tolerance = 0.0;  // Never converge early.
  options.on_iterate = [&](int iter, const Vector& x) {
    ++calls;
    EXPECT_EQ(iter, calls);
    EXPECT_NEAR(Norm2(x), 1.0, 1e-12);
  };
  SecondEigenpairPowerMethod(g, RandomVector(16, 5), options);
  EXPECT_EQ(calls, 25);
}

TEST(PowerMethodTest, EarlyStoppingIterateIsSmootherThanExact) {
  // The paper's §3.1 story in miniature: on a noisy graph, the early
  // iterate has a *worse* Rayleigh quotient than the exact v₂ (it is an
  // approximation) but stays closer to the seed's span — i.e. it is a
  // biased, regularized version of the answer.
  Rng rng(7);
  const Graph g = ErdosRenyi(80, 0.08, rng);
  const Vector start = RandomVector(80, 11);

  PowerMethodOptions exact_opts;
  exact_opts.max_iterations = 20000;
  exact_opts.tolerance = 1e-13;
  const PowerMethodResult exact =
      SecondEigenpairPowerMethod(g, start, exact_opts);

  PowerMethodOptions early_opts;
  early_opts.max_iterations = 3;
  early_opts.tolerance = 0.0;
  const PowerMethodResult early =
      SecondEigenpairPowerMethod(g, start, early_opts);

  EXPECT_GE(early.eigenvalue, exact.eigenvalue - 1e-9);
  // The early iterate remembers the start vector more.
  Vector unit_start = start;
  const NormalizedLaplacianOperator lap(g);
  ProjectOut(lap.TrivialEigenvector(), unit_start);
  Normalize(unit_start);
  EXPECT_GT(std::abs(Dot(early.eigenvector, unit_start)),
            std::abs(Dot(exact.eigenvector, unit_start)));
}

TEST(PowerMethodTest, DeflationKeepsIterateOrthogonal) {
  const Graph g = CavemanGraph(3, 6);
  const NormalizedLaplacianOperator lap(g);
  PowerMethodOptions options;
  const PowerMethodResult result =
      SecondEigenpairPowerMethod(g, RandomVector(g.NumNodes(), 13), options);
  EXPECT_NEAR(Dot(result.eigenvector, lap.TrivialEigenvector()), 0.0, 1e-9);
}

TEST(PowerMethodTest, ConvergesToNegativeDominantEigenvalue) {
  // −A on K₆ has spectrum {−5, 1×5}: the dominant eigenvalue is
  // negative, so the iteration flips sign every step; the sign-aligned
  // difference test must still converge.
  const Graph g = CompleteGraph(6);
  const AdjacencyOperator adj(g);
  const ShiftedOperator neg(adj, -1.0, 0.0);
  PowerMethodOptions options;
  options.max_iterations = 10000;
  const PowerMethodResult result =
      PowerMethod(neg, RandomVector(6, 17), options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, -5.0, 1e-6);
}

TEST(PowerMethodTest, ExactEigenvectorStartConvergesImmediately) {
  const Graph g = CompleteGraph(6);
  const AdjacencyOperator adj(g);
  const PowerMethodResult result =
      PowerMethod(adj, Vector(6, 1.0), {});
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 2);
  EXPECT_NEAR(result.eigenvalue, 5.0, 1e-12);
}

}  // namespace
}  // namespace impreg
