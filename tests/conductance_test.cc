#include "partition/conductance.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(ConductanceTest, SingleEdgeCut) {
  const Graph g = PathGraph(4);  // Degrees 1,2,2,1; volume 6.
  // S = {0, 1}: cut 1, vol 3, complement vol 3.
  const CutStats stats = ComputeCutStats(g, {0, 1});
  EXPECT_DOUBLE_EQ(stats.cut, 1.0);
  EXPECT_DOUBLE_EQ(stats.volume, 3.0);
  EXPECT_DOUBLE_EQ(stats.conductance, 1.0 / 3.0);
}

TEST(ConductanceTest, ComplementHasSameConductance) {
  Rng rng(1);
  const Graph g = ErdosRenyi(30, 0.2, rng);
  const std::vector<NodeId> set = {0, 3, 5, 7, 11, 13};
  EXPECT_DOUBLE_EQ(Conductance(g, set),
                   Conductance(g, ComplementSet(g, set)));
}

TEST(ConductanceTest, RangeIsZeroToOne) {
  Rng rng(2);
  const Graph g = ErdosRenyi(25, 0.3, rng);
  Rng pick(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 1 + static_cast<int>(pick.NextBounded(24));
    std::vector<int> sample = pick.SampleWithoutReplacement(25, k);
    std::vector<NodeId> set(sample.begin(), sample.end());
    const double phi = Conductance(g, set);
    EXPECT_GE(phi, 0.0);
    EXPECT_LE(phi, 1.0);
  }
}

TEST(ConductanceTest, DegenerateSetsAreWorst) {
  const Graph g = PathGraph(5);
  EXPECT_DOUBLE_EQ(Conductance(g, {}), 1.0);
  EXPECT_DOUBLE_EQ(Conductance(g, {0, 1, 2, 3, 4}), 1.0);
}

TEST(ConductanceTest, DisconnectedComponentHasZeroConductance) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  EXPECT_DOUBLE_EQ(Conductance(g, {0, 1, 2}), 0.0);
}

TEST(ConductanceTest, SelfLoopsAddVolumeNotCut) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 0, 4.0);
  const Graph g = builder.Build();
  // S = {0}: cut 1, vol 5 (loop counts once), complement vol 3.
  const CutStats stats = ComputeCutStats(g, {0});
  EXPECT_DOUBLE_EQ(stats.cut, 1.0);
  EXPECT_DOUBLE_EQ(stats.volume, 5.0);
  EXPECT_DOUBLE_EQ(stats.conductance, 1.0 / 3.0);  // min(5,3) = 3.
}

TEST(ConductanceTest, WeightedCut) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(1, 2, 0.5);
  builder.AddEdge(2, 3, 3.0);
  const Graph g = builder.Build();
  const CutStats stats = ComputeCutStats(g, {0, 1});
  EXPECT_DOUBLE_EQ(stats.cut, 0.5);
  EXPECT_DOUBLE_EQ(stats.conductance, 0.5 / 6.5);
}

TEST(ConductanceTest, ExpansionUsesCardinalities) {
  const Graph g = StarGraph(5);
  // S = {1, 2}: cut 2, |S| = 2, |S̄| = 3.
  EXPECT_DOUBLE_EQ(Expansion(g, {1, 2}), 1.0);
  // Conductance: vol(S) = 2, vol(S̄) = 6 → 2/2 = 1.
  EXPECT_DOUBLE_EQ(Conductance(g, {1, 2}), 1.0);
}

TEST(ConductanceTest, MaskAndListAgree) {
  Rng rng(4);
  const Graph g = ErdosRenyi(20, 0.3, rng);
  const std::vector<NodeId> set = {2, 4, 8, 16};
  const CutStats a = ComputeCutStats(g, set);
  const CutStats b = ComputeCutStatsFromMask(g, NodesToMask(g, set));
  EXPECT_DOUBLE_EQ(a.conductance, b.conductance);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(MaskToNodes(NodesToMask(g, set)), set);
}

TEST(ConductanceTest, BruteForceOnDumbbellFindsBridge) {
  const Graph g = DumbbellGraph(4, 0);  // Two K4s joined by an edge.
  // Best cut: one clique. cut = 1, vol = 4*3+1 = 13, total vol 26.
  EXPECT_NEAR(BruteForceMinConductance(g), 1.0 / 13.0, 1e-12);
}

TEST(ConductanceTest, BruteForceOnCompleteGraph) {
  // K6: best cut is the balanced bisection: cut 9, vol 15 → 0.6.
  EXPECT_NEAR(BruteForceMinConductance(CompleteGraph(6)), 0.6, 1e-12);
}

TEST(ConductanceTest, BruteForceMatchesCockroachOptimal) {
  // Cockroach with k=3 (12 nodes): the antennae cut is very good.
  const Graph g = CockroachGraph(3);
  const double brute = BruteForceMinConductance(g);
  // The optimal cut {u_0..u_{2k-1}} cuts k rungs... actually the best
  // cut separates the two antennae + half the ladder with 2 edges.
  std::vector<NodeId> half;
  for (NodeId i = 0; i < 6; ++i) half.push_back(i);  // Top path u.
  EXPECT_LE(brute, Conductance(g, half) + 1e-12);
  EXPECT_GT(brute, 0.0);
}

TEST(ConductanceTest, DuplicateNodesDie) {
  const Graph g = PathGraph(4);
  EXPECT_DEATH(Conductance(g, {1, 1}), "duplicate");
}

}  // namespace
}  // namespace impreg
