#include "partition/sweep.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(SweepTest, RecoversDumbbellBridgeCut) {
  const Graph g = DumbbellGraph(5, 0);
  // A vector separating the cliques perfectly.
  Vector values(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < 5; ++u) values[u] = 1.0;
  const SweepResult result = SweepCut(g, values);
  ASSERT_EQ(result.set.size(), 5u);
  EXPECT_DOUBLE_EQ(result.stats.cut, 1.0);
}

TEST(SweepTest, ProfileCoversAllPrefixes) {
  const Graph g = PathGraph(7);
  Vector values = {7, 6, 5, 4, 3, 2, 1};
  const SweepResult result = SweepCut(g, values);
  EXPECT_EQ(result.conductance_profile.size(), 7u);
  EXPECT_EQ(result.order.front(), 0);
  EXPECT_EQ(result.order.back(), 6);
  // On a path with this monotone ordering, every prefix cut has cut
  // weight exactly 1, so the best prefix is the balanced one.
  EXPECT_EQ(result.set.size(), 3u);  // Prefix {0,1,2}: vol 5 of 12.
}

TEST(SweepTest, BestPrefixMinimizesProfile) {
  Rng rng(1);
  const Graph g = ErdosRenyi(40, 0.1, rng);
  Vector values(40);
  for (double& v : values) v = rng.NextGaussian();
  const SweepResult result = SweepCut(g, values);
  double best = 2.0;
  for (std::size_t k = 0; k + 1 < result.conductance_profile.size(); ++k) {
    best = std::min(best, result.conductance_profile[k]);
  }
  EXPECT_NEAR(result.stats.conductance, best, 1e-12);
}

TEST(SweepTest, SizeBoundsRestrictWinner) {
  const Graph g = DumbbellGraph(6, 0);
  Vector values(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < 6; ++u) values[u] = 10.0 - u;
  SweepOptions options;
  options.min_size = 2;
  options.max_size = 3;
  const SweepResult result = SweepCut(g, values, options);
  EXPECT_GE(result.set.size(), 2u);
  EXPECT_LE(result.set.size(), 3u);
}

TEST(SweepTest, MaxVolumeBound) {
  const Graph g = CompleteGraph(10);  // Every node has degree 9.
  Vector values(10);
  for (int i = 0; i < 10; ++i) values[i] = 10.0 - i;
  SweepOptions options;
  options.max_volume = 20.0;  // At most two nodes.
  const SweepResult result = SweepCut(g, values, options);
  EXPECT_LE(result.stats.volume, 20.0);
  EXPECT_FALSE(result.set.empty());
}

TEST(SweepTest, DegreeNormalizedOrdering) {
  // Probability mass 0.5/0.5 on a hub and a leaf: degree-normalized
  // ordering puts the leaf first.
  const Graph g = StarGraph(5);
  Vector values(5, 0.0);
  values[0] = 0.5;  // Hub, degree 4.
  values[1] = 0.5;  // Leaf, degree 1.
  SweepOptions options;
  options.scaling = SweepScaling::kDegreeNormalized;
  const SweepResult result = SweepCut(g, values, options);
  EXPECT_EQ(result.order.front(), 1);
}

TEST(SweepTest, SqrtDegreeNormalizedOrdering) {
  const Graph g = StarGraph(10);
  Vector values(10, 0.0);
  values[0] = 2.999;  // Hub, degree 9: key ≈ 1.0.
  values[1] = 1.1;    // Leaf: key 1.1.
  SweepOptions options;
  options.scaling = SweepScaling::kSqrtDegreeNormalized;
  const SweepResult result = SweepCut(g, values, options);
  EXPECT_EQ(result.order.front(), 1);
}

TEST(SweepTest, SupportSweepTouchesOnlySupport) {
  const Graph g = PathGraph(100);
  Vector values(100, 0.0);
  values[10] = 3.0;
  values[11] = 2.0;
  values[12] = 1.0;
  const SweepResult result = SweepCutOverSupport(g, values);
  EXPECT_EQ(result.order.size(), 3u);
  EXPECT_EQ(result.conductance_profile.size(), 3u);
  // Best prefix among {10}, {10,11}, {10,11,12}: all cut 2 edges;
  // conductance improves with volume, so all three nodes are kept.
  EXPECT_EQ(result.set.size(), 3u);
}

TEST(SweepTest, SupportSweepThreshold) {
  const Graph g = PathGraph(10);
  Vector values(10, 0.05);
  values[4] = 0.5;
  const SweepResult result =
      SweepCutOverSupport(g, values, SweepOptions{}, 0.1);
  EXPECT_EQ(result.order.size(), 1u);
  EXPECT_EQ(result.set, (std::vector<NodeId>{4}));
}

TEST(SweepTest, EmptySupportGivesWorstConductance) {
  const Graph g = PathGraph(5);
  const SweepResult result = SweepCutOverSupport(g, Vector(5, 0.0));
  EXPECT_TRUE(result.set.empty());
  EXPECT_DOUBLE_EQ(result.stats.conductance, 1.0);
}

TEST(SweepTest, TiesBrokenDeterministically) {
  const Graph g = CycleGraph(6);
  const Vector values(6, 1.0);
  const SweepResult a = SweepCut(g, values);
  const SweepResult b = SweepCut(g, values);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.set, b.set);
}

TEST(SweepTest, DuplicateNodesAreDeduplicated) {
  // Regression: duplicate candidate ids used to double-count degrees in
  // the prefix volume scan, corrupting the profile, the reported set,
  // and its statistics. First occurrence wins, order preserved.
  Rng rng(9);
  const Graph g = ErdosRenyi(12, 0.35, rng);
  Vector values(12);
  for (double& v : values) v = rng.NextGaussian();
  const std::vector<NodeId> with_duplicates = {3, 1, 3, 0, 1, 2, 4, 4, 7, 3};
  const std::vector<NodeId> deduplicated = {3, 1, 0, 2, 4, 7};
  const SweepResult dup = SweepCutOverNodes(g, values, with_duplicates);
  const SweepResult uniq = SweepCutOverNodes(g, values, deduplicated);
  EXPECT_EQ(dup.order, uniq.order);
  EXPECT_EQ(dup.conductance_profile, uniq.conductance_profile);
  EXPECT_EQ(dup.set, uniq.set);
  EXPECT_DOUBLE_EQ(dup.stats.conductance, uniq.stats.conductance);
  EXPECT_DOUBLE_EQ(dup.stats.volume, uniq.stats.volume);
  EXPECT_DOUBLE_EQ(dup.stats.cut, uniq.stats.cut);
}

TEST(SweepTest, IsolatedNodesSortLastUnderDegreeScaling) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build();
  Vector values = {0.1, 0.2, 0.3, 100.0};  // Node 3 isolated.
  SweepOptions options;
  options.scaling = SweepScaling::kDegreeNormalized;
  const SweepResult result = SweepCut(g, values, options);
  EXPECT_EQ(result.order.back(), 3);
}

}  // namespace
}  // namespace impreg
