#include "ncp/community.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/social.h"
#include "util/rng.h"

namespace impreg {
namespace {

const SocialGraph& TestGraph() {
  static const SocialGraph* graph = [] {
    Rng rng(17);
    SocialGraphParams params;
    params.core_nodes = 2500;
    params.num_communities = 6;
    params.min_community_size = 40;
    params.max_community_size = 120;
    params.num_whiskers = 30;
    return new SocialGraph(MakeWhiskeredSocialGraph(params, rng));
  }();
  return *graph;
}

TEST(SeedExpansionTest, RecoversPlantedCommunityFromFewSeeds) {
  const SocialGraph& sg = TestGraph();
  const auto& community = sg.communities[2];
  const std::vector<NodeId> seeds(community.begin(), community.begin() + 4);
  const SeedExpansionResult result = ExpandSeedSet(sg.graph, seeds);
  ASSERT_FALSE(result.set.empty());
  EXPECT_LT(result.stats.conductance, 0.2);
  // Strong overlap with the planted truth.
  std::vector<char> truth(sg.graph.NumNodes(), 0);
  for (NodeId u : community) truth[u] = 1;
  int overlap = 0;
  for (NodeId u : result.set) overlap += truth[u];
  EXPECT_GT(overlap, static_cast<int>(community.size()) * 2 / 3);
  EXPECT_GE(result.seeds_contained, 1);
}

TEST(SeedExpansionTest, ContainsAtLeastOneSeed) {
  const SocialGraph& sg = TestGraph();
  // Seed in the expander core: no great community exists, but the
  // result must stay anchored.
  const std::vector<NodeId> seeds = {10, 11};
  const SeedExpansionResult result = ExpandSeedSet(sg.graph, seeds);
  ASSERT_FALSE(result.set.empty());
  EXPECT_GE(result.seeds_contained, 1);
  EXPECT_LE(result.stats.conductance, 1.0);
}

TEST(SeedExpansionTest, SingleSeedWorks) {
  const SocialGraph& sg = TestGraph();
  const SeedExpansionResult result =
      ExpandSeedSet(sg.graph, {sg.communities[0][0]});
  ASSERT_FALSE(result.set.empty());
  EXPECT_GE(result.seeds_contained, 1);
  EXPECT_LT(result.stats.conductance, 0.5);
}

TEST(SeedExpansionTest, FlowRefinementNeverHurts) {
  const SocialGraph& sg = TestGraph();
  const auto& community = sg.communities[4];
  const std::vector<NodeId> seeds(community.begin(), community.begin() + 3);
  SeedExpansionOptions with_flow;
  SeedExpansionOptions without_flow;
  without_flow.refine_with_flow = false;
  const SeedExpansionResult a = ExpandSeedSet(sg.graph, seeds, with_flow);
  const SeedExpansionResult b = ExpandSeedSet(sg.graph, seeds, without_flow);
  EXPECT_LE(a.stats.conductance, b.stats.conductance + 1e-12);
}

TEST(SeedExpansionTest, CliqueSeedFindsClique) {
  const Graph g = CavemanGraph(4, 8);
  const SeedExpansionResult result = ExpandSeedSet(g, {0, 1});
  ASSERT_FALSE(result.set.empty());
  // The clique (or a clique union) should be found: cut 2 bridges.
  EXPECT_DOUBLE_EQ(result.stats.cut, 2.0);
  EXPECT_LT(result.stats.conductance, 0.05);
}

TEST(SeedExpansionTest, InvalidSeedDies) {
  const Graph g = PathGraph(5);
  EXPECT_DEATH(ExpandSeedSet(g, {99}), "");
}

}  // namespace
}  // namespace impreg
