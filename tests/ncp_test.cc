#include "ncp/ncp.h"

#include <gtest/gtest.h>

#include "graph/social.h"
#include "util/rng.h"

namespace impreg {
namespace {

// A small but structurally faithful social graph shared by the tests.
const SocialGraph& TestGraph() {
  static const SocialGraph* graph = [] {
    Rng rng(42);
    SocialGraphParams params;
    params.core_nodes = 1200;
    params.num_communities = 6;
    params.min_community_size = 16;
    params.max_community_size = 64;
    params.num_whiskers = 40;
    return new SocialGraph(MakeWhiskeredSocialGraph(params, rng));
  }();
  return *graph;
}

SpectralFamilyOptions FastSpectralOptions() {
  SpectralFamilyOptions options;
  options.num_seeds = 6;
  options.alphas = {0.1, 0.02};
  options.epsilons = {1e-3, 1e-4, 1e-5};
  return options;
}

TEST(NcpTest, SpectralFamilyProducesValidClusters) {
  const auto clusters =
      SpectralFamilyClusters(TestGraph().graph, FastSpectralOptions());
  ASSERT_FALSE(clusters.empty());
  for (const NcpCluster& c : clusters) {
    EXPECT_FALSE(c.nodes.empty());
    EXPECT_GE(c.stats.conductance, 0.0);
    EXPECT_LE(c.stats.conductance, 1.0);
    EXPECT_EQ(c.method, "LocalSpectral(push)");
    EXPECT_EQ(static_cast<std::int64_t>(c.nodes.size()), c.stats.size);
  }
}

TEST(NcpTest, FlowFamilyProducesValidClusters) {
  const auto clusters = FlowFamilyClusters(TestGraph().graph);
  ASSERT_FALSE(clusters.empty());
  bool saw_mqi = false;
  for (const NcpCluster& c : clusters) {
    EXPECT_FALSE(c.nodes.empty());
    EXPECT_GE(c.stats.conductance, 0.0);
    EXPECT_LE(c.stats.conductance, 1.0);
    if (c.method == "Metis+MQI") saw_mqi = true;
  }
  EXPECT_TRUE(saw_mqi);
}

TEST(NcpTest, MqiClustersDominateRawBisections) {
  const auto clusters = FlowFamilyClusters(TestGraph().graph);
  // For each consecutive (Metis-like, Metis+MQI) pair the MQI result
  // must be at least as good.
  for (std::size_t i = 0; i + 1 < clusters.size(); ++i) {
    if (clusters[i].method == "Metis-like" &&
        clusters[i + 1].method == "Metis+MQI") {
      EXPECT_LE(clusters[i + 1].stats.conductance,
                clusters[i].stats.conductance + 1e-9);
    }
  }
}

TEST(NcpTest, BestPerSizeBinKeepsMinimumConductance) {
  std::vector<NcpCluster> clusters(3);
  clusters[0].stats.size = 10;
  clusters[0].stats.conductance = 0.5;
  clusters[1].stats.size = 11;
  clusters[1].stats.conductance = 0.2;
  clusters[2].stats.size = 1000;
  clusters[2].stats.conductance = 0.9;
  const auto profile = BestPerSizeBin(clusters, 5, 2000);
  ASSERT_EQ(profile.size(), 2u);  // Two occupied bins.
  EXPECT_DOUBLE_EQ(profile[0].conductance, 0.2);
  EXPECT_EQ(profile[1].size, 1000);
}

TEST(NcpTest, BestPerSizeBinIgnoresOversized) {
  std::vector<NcpCluster> clusters(1);
  clusters[0].stats.size = 5000;
  clusters[0].stats.conductance = 0.1;
  EXPECT_TRUE(BestPerSizeBin(clusters, 4, 100).empty());
}


TEST(NcpTest, FlowFamilyIncludesWhiskerClusters) {
  const auto clusters = FlowFamilyClusters(TestGraph().graph);
  bool saw_whisker = false, saw_bag = false;
  for (const NcpCluster& c : clusters) {
    if (c.method == "whisker") {
      saw_whisker = true;
      // Every whisker cluster is detached by a single bridge.
      EXPECT_DOUBLE_EQ(c.stats.cut, 1.0);
    }
    if (c.method == "bag-of-whiskers") {
      saw_bag = true;
      // A bag of k whiskers cuts exactly k bridges.
      EXPECT_GE(c.stats.cut, 2.0);
    }
  }
  EXPECT_TRUE(saw_whisker);
  EXPECT_TRUE(saw_bag);
}

TEST(NcpTest, WhiskersCanBeDisabled) {
  FlowFamilyOptions options;
  options.include_whiskers = false;
  const auto clusters = FlowFamilyClusters(TestGraph().graph, options);
  for (const NcpCluster& c : clusters) {
    EXPECT_NE(c.method, "whisker");
    EXPECT_NE(c.method, "bag-of-whiskers");
  }
}

TEST(NcpTest, Figure1Shape_FlowWinsOnConductance) {
  // The headline qualitative claim of Figure 1(a): at comparable sizes,
  // the flow family's best conductance beats the spectral family's on
  // whiskered social graphs. Compare family-wide minima (robust).
  const auto spectral =
      SpectralFamilyClusters(TestGraph().graph, FastSpectralOptions());
  const auto flow = FlowFamilyClusters(TestGraph().graph);
  double best_spectral = 1.0, best_flow = 1.0;
  for (const auto& c : spectral) {
    best_spectral = std::min(best_spectral, c.stats.conductance);
  }
  for (const auto& c : flow) {
    best_flow = std::min(best_flow, c.stats.conductance);
  }
  EXPECT_LE(best_flow, best_spectral + 1e-9);
}

}  // namespace
}  // namespace impreg
