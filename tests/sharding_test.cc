// Acceptance suite for sharded graph serving (service/sharding/): the
// shard-count-invariance matrix (every strongly-local method, every
// shard count, every thread count, cache on and off, bitwise equal to
// the unsharded engine), degenerate-topology construction fuzz, the
// routing-epoch cache-key regression, shard-locality accounting, and
// the shard manifest round-trip. The ShardingWillFail probe corrupts
// one halo degree replica and re-runs the invariance assertion — it
// must FAIL (the ctest entry is WILL_FAIL), proving the matrix is
// sharp enough to catch a single wrong halo weight.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "graph/graph.h"
#include "graph/random_graphs.h"
#include "service/query_engine.h"
#include "service/sharding/shard_manifest.h"
#include "service/sharding/shard_plan.h"
#include "service/sharding/shard_set.h"
#include "streaming/dynamic_graph.h"
#include "util/rng.h"

namespace impreg {
namespace {

namespace fs = std::filesystem;

// —— Graph families ———————————————————————————————————————————————

Graph RingOfCliques(int cliques, int clique_size) {
  GraphBuilder builder(cliques * clique_size);
  for (int c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
    // One ring edge per adjacent clique pair: the only cross-community
    // structure, so a min-cut partition severs exactly these.
    const NodeId next = ((c + 1) % cliques) * clique_size;
    builder.AddEdge(base, next + 1);
  }
  return builder.Build();
}

Graph ErGraph() {
  Rng rng(0xE12u);
  return ErdosRenyi(120, 8.0 / 119.0, rng);
}

Graph BaGraph() {
  Rng rng(0xBA5u);
  return BarabasiAlbert(120, 4, rng);
}

// —— Bitwise response comparison ——————————————————————————————————

void ExpectResponseBitwise(const QueryResponse& want,
                           const QueryResponse& got, const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(want.status, got.status);
  EXPECT_EQ(want.degraded, got.degraded);
  EXPECT_EQ(want.source, got.source);
  EXPECT_EQ(want.work, got.work);
  EXPECT_EQ(want.conductance, got.conductance);
  EXPECT_EQ(want.set, got.set);
  ASSERT_EQ(want.scores.size(), got.scores.size());
  for (std::size_t i = 0; i < want.scores.size(); ++i) {
    // Exact == : the contract is identical *bits*, not tolerance.
    ASSERT_EQ(want.scores[i], got.scores[i])
        << "scores diverge at node " << i;
  }
}

void ExpectBatchBitwise(const std::vector<QueryResponse>& want,
                        const std::vector<QueryResponse>& got,
                        const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ExpectResponseBitwise(want[i], got[i],
                          ("query #" + std::to_string(i)).c_str());
  }
}

// One batch touching every method: three single-seed queries spread
// across the id range per method, plus one multi-seed query.
std::vector<Query> MatrixBatch(NodeId n) {
  std::vector<Query> batch;
  const std::vector<NodeId> picks = {1 % n, n / 2, n - 1};
  for (QueryMethod method :
       {QueryMethod::kPprPush, QueryMethod::kPprDense,
        QueryMethod::kHeatKernel, QueryMethod::kNibble}) {
    for (NodeId s : picks) {
      Query q;
      q.method = method;
      q.seeds = {s};
      q.epsilon = 1e-4;
      q.tolerance = 1e-8;
      q.max_iterations = 500;
      q.t = 5.0;
      q.delta = 1e-4;
      q.steps = 15;
      batch.push_back(std::move(q));
    }
  }
  Query multi;
  multi.method = QueryMethod::kPprPush;
  multi.seeds = {0, n / 2, n / 3};
  multi.epsilon = 1e-4;
  batch.push_back(std::move(multi));
  return batch;
}

// The tentpole matrix: shard counts {1, 2, 4, 8} × threads {1, 8} ×
// cache {on, off} × all four methods, before and after a burst of
// routed AddEdges, every response bitwise equal to the unsharded
// engine in the same configuration.
void RunInvarianceMatrix(const Graph& g, const char* family) {
  SCOPED_TRACE(family);
  const NodeId n = g.NumNodes();
  const std::vector<Query> batch = MatrixBatch(n);
  const std::vector<std::pair<NodeId, NodeId>> edits = {
      {0, n / 2}, {1, n - 1}, {n / 3, n / 4}, {2, 2}};

  for (const bool cache : {true, false}) {
    for (const int threads : {1, 8}) {
      ScopedNumThreads scoped(threads);
      QueryEngine::Options base;
      base.enable_cache = cache;
      QueryEngine reference(g, base);
      const std::vector<QueryResponse> ref_before =
          reference.RunBatch(batch);
      for (const auto& [u, v] : edits) reference.AddEdge(u, v, 1.0);
      const std::vector<QueryResponse> ref_after = reference.RunBatch(batch);

      for (const int k : {1, 2, 4, 8}) {
        const std::string context = std::string("cache=") +
                                    (cache ? "on" : "off") +
                                    " threads=" + std::to_string(threads) +
                                    " shards=" + std::to_string(k);
        QueryEngine::Options options = base;
        options.sharding.shards = k;
        QueryEngine engine(g, options);
        if (k > 1) {
          ASSERT_NE(engine.shards(), nullptr) << context;
          EXPECT_EQ(engine.shards()->shards(), k) << context;
        } else {
          EXPECT_EQ(engine.shards(), nullptr) << context;
        }
        ExpectBatchBitwise(ref_before, engine.RunBatch(batch),
                           context + " pre-edit");
        for (const auto& [u, v] : edits) engine.AddEdge(u, v, 1.0);
        ExpectBatchBitwise(ref_after, engine.RunBatch(batch),
                           context + " post-edit");
        if (k > 1) {
          // The sharded path really ran: rows were billed to shards.
          EXPECT_GT(engine.shards()->Totals().local_rows, 0) << context;
        }
      }
    }
  }
}

TEST(ShardingInvarianceTest, ErdosRenyiMatrix) {
  RunInvarianceMatrix(ErGraph(), "erdos-renyi");
}

TEST(ShardingInvarianceTest, BarabasiAlbertMatrix) {
  RunInvarianceMatrix(BaGraph(), "barabasi-albert");
}

TEST(ShardingInvarianceTest, RingOfCliquesMatrix) {
  RunInvarianceMatrix(RingOfCliques(6, 15), "ring-of-cliques");
}

// —— The WILL_FAIL probe ——————————————————————————————————————————
//
// Corrupting a single halo degree replica must break the bitwise
// invariance assertion — the ctest entry for this suite is WILL_FAIL,
// so the *failure* below is what CI certifies. If this test ever
// passes, the halo replicas have stopped being load-bearing and the
// whole matrix is vacuous.

TEST(ShardingWillFail, HaloCorruptionChangesServedBits) {
  const Graph g = RingOfCliques(6, 15);
  QueryEngine reference(g);
  QueryEngine::Options options;
  options.sharding.shards = 4;
  options.enable_cache = false;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);

  // Find a cross-shard edge {u, v}: v's degree replica lives in
  // owner(u)'s halo and serves u's push enqueue threshold for v.
  const std::vector<int>& owner = engine.shards()->plan().owner;
  NodeId cu = -1, cv = -1;
  for (NodeId u = 0; u < g.NumNodes() && cu < 0; ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (owner[u] != owner[arc.head]) {
        cu = u;
        cv = arc.head;
        break;
      }
    }
  }
  ASSERT_GE(cu, 0) << "partition produced no cross-shard edge";
  ASSERT_TRUE(engine.mutable_shards()->CorruptHaloReplica(owner[cu], cv,
                                                          1.0e9));

  Query q;
  q.method = QueryMethod::kPprPush;
  q.seeds = {cu};
  q.epsilon = 1e-5;
  ExpectResponseBitwise(reference.Run(q), engine.Run(q),
                        "push across corrupted halo");
}

// —— Degenerate-topology construction fuzz ————————————————————————

struct DegenerateCase {
  const char* name;
  Graph graph;
  int shards;
};

std::vector<DegenerateCase> DegenerateCases() {
  std::vector<DegenerateCase> cases;
  cases.push_back({"empty", GraphBuilder(0).Build(), 4});
  cases.push_back({"single-node", GraphBuilder(1).Build(), 4});
  cases.push_back({"isolated-nodes", GraphBuilder(8).Build(), 4});
  {
    GraphBuilder b(6);
    for (NodeId u = 0; u < 6; ++u) b.AddEdge(u, u);
    b.AddEdge(0, 1);
    cases.push_back({"self-loops", b.Build(), 3});
  }
  {
    GraphBuilder b(10);
    for (NodeId i = 0; i < 5; ++i) {
      for (NodeId j = i + 1; j < 5; ++j) {
        b.AddEdge(i, j);
        b.AddEdge(5 + i, 5 + j);
      }
    }
    cases.push_back({"disconnected", b.Build(), 2});
  }
  {
    GraphBuilder b(4);
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(2, 3);
    cases.push_back({"k-gt-n", b.Build(), 8});
  }
  return cases;
}

TEST(ShardingDegenerateTest, ExportPartsRoundTripsBitExactly) {
  for (const DegenerateCase& c : DegenerateCases()) {
    SCOPED_TRACE(c.name);
    const DynamicGraph dyn = DynamicGraph::FromGraph(c.graph);
    DynamicGraph::Parts parts = dyn.ExportParts();
    const DynamicGraph round = DynamicGraph::FromParts(
        std::move(parts.adjacency), std::move(parts.degrees),
        parts.num_edges, parts.total_volume);
    ASSERT_EQ(dyn.NumNodes(), round.NumNodes());
    EXPECT_EQ(dyn.NumEdges(), round.NumEdges());
    EXPECT_EQ(dyn.TotalVolume(), round.TotalVolume());
    for (NodeId u = 0; u < dyn.NumNodes(); ++u) {
      EXPECT_EQ(dyn.Degree(u), round.Degree(u)) << "node " << u;
    }
    const Graph a = dyn.ToGraph();
    const Graph b = round.ToGraph();
    ASSERT_EQ(a.NumNodes(), b.NumNodes());
    for (NodeId u = 0; u < a.NumNodes(); ++u) {
      ASSERT_EQ(a.OutDegree(u), b.OutDegree(u)) << "node " << u;
      for (ArcIndex i = 0; i < a.OutDegree(u); ++i) {
        EXPECT_EQ(a.Heads(u)[i], b.Heads(u)[i]);
        EXPECT_EQ(a.Weights(u)[i], b.Weights(u)[i]);
      }
    }
  }
}

TEST(ShardingDegenerateTest, EveryTopologyRoutesAndMatchesUnsharded) {
  for (const DegenerateCase& c : DegenerateCases()) {
    SCOPED_TRACE(c.name);
    QueryEngine reference(c.graph);
    QueryEngine::Options options;
    options.sharding.shards = c.shards;
    QueryEngine engine(c.graph, options);  // Must never crash.
    const NodeId n = c.graph.NumNodes();
    if (n == 0) continue;  // No valid seeds to route.
    std::vector<Query> batch;
    for (QueryMethod method :
         {QueryMethod::kPprPush, QueryMethod::kPprDense,
          QueryMethod::kHeatKernel, QueryMethod::kNibble}) {
      for (NodeId s : {NodeId{0}, NodeId(n / 2), NodeId(n - 1)}) {
        Query q;
        q.method = method;
        q.seeds = {s};
        q.epsilon = 1e-4;
        q.steps = 8;
        q.t = 3.0;
        batch.push_back(std::move(q));
      }
    }
    ExpectBatchBitwise(reference.RunBatch(batch), engine.RunBatch(batch),
                       std::string(c.name) + " batch");
    // Mutation must route too (including the self-loop).
    reference.AddEdge(0, n - 1, 2.0);
    reference.AddEdge(0, 0, 1.0);
    engine.AddEdge(0, n - 1, 2.0);
    engine.AddEdge(0, 0, 1.0);
    ExpectBatchBitwise(reference.RunBatch(batch), engine.RunBatch(batch),
                       std::string(c.name) + " post-edit batch");
  }
}

TEST(ShardingDegenerateTest, PlanClampsAndFallsBackValidly) {
  for (const DegenerateCase& c : DegenerateCases()) {
    SCOPED_TRACE(c.name);
    const ShardPlan plan = BuildShardPlan(c.graph, c.shards);
    EXPECT_TRUE(ValidShardOwners(plan.owner, c.graph.NumNodes(),
                                 plan.shards));
    EXPECT_LE(plan.shards,
              std::max<NodeId>(c.graph.NumNodes(), 1));
    // Deterministic: the same inputs reproduce the identical plan.
    const ShardPlan again = BuildShardPlan(c.graph, c.shards);
    EXPECT_EQ(plan.owner, again.owner);
    EXPECT_EQ(plan.shards, again.shards);
  }
}

// —— Routing-epoch cache-key regression ———————————————————————————
//
// The pre-fix bug: batch dedup and the result cache keyed on
// (method, params, epoch, seed fingerprint) only. Two engines at the
// same graph epoch but different halo-routing states (the recovery
// scenario: routing epochs reset on rebuild while restored cache
// entries carry pre-crash keys) collided. The canonical key now
// appends the routing epoch whenever it is nonzero.

TEST(ShardingTest, RoutingEpochInCacheKey) {
  Query q;
  q.seeds = {3, 1};
  // The pre-fix collision, pinned: the legacy 2-arg key cannot tell
  // routing states apart...
  EXPECT_EQ(QueryEngine::CanonicalKey(q, 7), QueryEngine::CanonicalKey(q, 7));
  // ...and routing epoch 0 must stay byte-identical to it (unsharded
  // keys — and every pre-sharding persisted key — are unchanged).
  EXPECT_EQ(QueryEngine::CanonicalKey(q, 7, 0),
            QueryEngine::CanonicalKey(q, 7));
  // The fix: distinct routing epochs key distinctly.
  EXPECT_NE(QueryEngine::CanonicalKey(q, 7, 5),
            QueryEngine::CanonicalKey(q, 7, 9));
  EXPECT_NE(QueryEngine::CanonicalKey(q, 7, 5),
            QueryEngine::CanonicalKey(q, 7));
  EXPECT_NE(QueryEngine::CanonicalKey(q, 7, 5),
            QueryEngine::CanonicalKey(q, 8, 5));
}

TEST(ShardingTest, RoutingEpochBumpsOnNewHaloMembershipOnly) {
  const Graph g = RingOfCliques(4, 10);
  QueryEngine::Options options;
  options.sharding.shards = 2;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);
  const std::vector<int>& owner = engine.shards()->plan().owner;

  // A new cross-shard pair that is not yet adjacent: routing changes.
  NodeId u = -1, v = -1;
  for (NodeId a = 0; a < g.NumNodes() && u < 0; ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      if (owner[a] != owner[b] && !g.HasEdge(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_GE(u, 0);
  const std::int64_t before = engine.RoutingEpoch();
  engine.AddEdge(u, v, 1.0);
  const std::int64_t after = engine.RoutingEpoch();
  EXPECT_GT(after, before);
  // Re-adding the same edge changes weights, not membership.
  engine.AddEdge(u, v, 1.0);
  EXPECT_EQ(engine.RoutingEpoch(), after);
  // An intra-shard edge never touches routing.
  NodeId a = -1, b = -1;
  for (NodeId x = 1; x < g.NumNodes() && a < 0; ++x) {
    if (owner[x] == owner[0]) {
      a = 0;
      b = x;
    }
  }
  ASSERT_GE(a, 0);
  engine.AddEdge(a, b, 1.0);
  EXPECT_EQ(engine.RoutingEpoch(), after);
}

// —— Shard locality ———————————————————————————————————————————————
//
// The reason to shard at all: a strongly-local query seeded deep
// inside one shard must complete without ever escalating. (The
// bench/shard_serve driver measures the deep-vs-boundary local-work
// ratio on bigger graphs; this pins the qualitative contract.)

TEST(ShardingTest, DeepSeedNeverEscalates) {
  const Graph g = RingOfCliques(6, 15);
  QueryEngine::Options options;
  options.sharding.shards = 4;
  options.enable_cache = false;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);
  const std::vector<int>& owner = engine.shards()->plan().owner;

  // Deep seed: a node whose whole one-hop neighborhood it owns with it.
  NodeId deep = -1;
  for (NodeId u = 0; u < g.NumNodes() && deep < 0; ++u) {
    bool interior = g.OutDegree(u) > 0;
    for (const Arc& arc : g.Neighbors(u)) {
      interior = interior && owner[arc.head] == owner[u];
    }
    if (interior) deep = u;
  }
  ASSERT_GE(deep, 0) << "partition left no interior node";

  engine.mutable_shards()->ResetCounters();
  Query q;
  q.method = QueryMethod::kPprPush;
  q.seeds = {deep};
  q.epsilon = 5e-2;  // Shallow diffusion: only the seed row is pushed.
  engine.Run(q);
  const ShardSet::CounterTotals totals = engine.shards()->Totals();
  EXPECT_GT(totals.local_rows, 0);
  EXPECT_EQ(totals.escalations, 0)
      << "a clique-interior push should never leave its shard";
}

// —— Shard manifest ————————————————————————————————————————————————

ShardManifest SampleManifest() {
  ShardManifest m;
  m.shards = 3;
  m.partition_seed = 0x5eedULL;
  m.num_nodes = 6;
  m.routing_epoch = 11;
  m.shard_epochs = {4, 4, 4};
  m.owner = {0, 0, 1, 1, 2, 2};
  return m;
}

TEST(ShardManifestTest, RoundTripsAllFields) {
  const fs::path dir =
      fs::temp_directory_path() / "impreg_shard_manifest_rt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = ShardManifestPath(dir.string());
  const ShardManifest m = SampleManifest();
  ASSERT_TRUE(WriteShardManifest(path, m));
  ShardManifest loaded;
  std::string detail;
  ASSERT_TRUE(LoadShardManifest(path, &loaded, &detail)) << detail;
  EXPECT_EQ(loaded.shards, m.shards);
  EXPECT_EQ(loaded.partition_seed, m.partition_seed);
  EXPECT_EQ(loaded.num_nodes, m.num_nodes);
  EXPECT_EQ(loaded.routing_epoch, m.routing_epoch);
  EXPECT_EQ(loaded.shard_epochs, m.shard_epochs);
  EXPECT_EQ(loaded.owner, m.owner);
  fs::remove_all(dir);
}

TEST(ShardManifestTest, RejectsCorruptionTearingAndBadShapes) {
  const fs::path dir =
      fs::temp_directory_path() / "impreg_shard_manifest_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = ShardManifestPath(dir.string());
  ShardManifest loaded;
  std::string detail;

  // Missing file: rejected with the canonical detail (the CLI treats
  // this one as the silent first-boot case).
  EXPECT_FALSE(LoadShardManifest(path, &loaded, &detail));
  EXPECT_EQ(detail, "manifest missing or unreadable");

  // A flipped payload byte fails the CRC.
  ASSERT_TRUE(WriteShardManifest(path, SampleManifest()));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    f.put('#');
  }
  EXPECT_FALSE(LoadShardManifest(path, &loaded, &detail));

  // Disagreeing per-shard epoch stamps = torn multi-artifact update:
  // the writer must refuse to publish it at all.
  ShardManifest torn = SampleManifest();
  torn.shard_epochs = {4, 5, 4};
  EXPECT_FALSE(WriteShardManifest(path, torn));

  // A malformed owner array (shard 2 unpopulated) is refused too.
  ShardManifest gap = SampleManifest();
  gap.owner = {0, 0, 1, 1, 1, 1};
  EXPECT_FALSE(WriteShardManifest(path, gap));
  fs::remove_all(dir);
}

TEST(ShardingTest, ManifestPinnedPlacementServesIdentically) {
  const Graph g = ErGraph();
  QueryEngine::Options options;
  options.sharding.shards = 4;
  QueryEngine computed(g, options);
  ASSERT_NE(computed.shards(), nullptr);

  // Feed the computed placement back through Options::sharding.owner —
  // the manifest-recovery path — and serve the same batch.
  QueryEngine::Options pinned = options;
  pinned.sharding.owner = computed.shards()->plan().owner;
  QueryEngine restored(g, pinned);
  ASSERT_NE(restored.shards(), nullptr);
  EXPECT_EQ(restored.shards()->plan().owner, computed.shards()->plan().owner);
  const std::vector<Query> batch = MatrixBatch(g.NumNodes());
  ExpectBatchBitwise(computed.RunBatch(batch), restored.RunBatch(batch),
                     "manifest-pinned placement");
}

}  // namespace
}  // namespace impreg
