// Acceptance suite for sharded graph serving (service/sharding/): the
// shard-count-invariance matrix (every strongly-local method, every
// shard count, every thread count, cache on and off, bitwise equal to
// the unsharded engine), degenerate-topology construction fuzz, the
// routing-epoch cache-key regression, shard-locality accounting, and
// the shard manifest round-trip. The ShardingWillFail probe corrupts
// one halo degree replica and re-runs the invariance assertion — it
// must FAIL (the ctest entry is WILL_FAIL), proving the matrix is
// sharp enough to catch a single wrong halo weight.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "graph/graph.h"
#include "graph/random_graphs.h"
#include "service/query_engine.h"
#include "service/sharding/shard_manifest.h"
#include "service/sharding/shard_plan.h"
#include "service/sharding/shard_set.h"
#include "streaming/dynamic_graph.h"
#include "util/rng.h"

namespace impreg {
namespace {

namespace fs = std::filesystem;

// —— Graph families ———————————————————————————————————————————————

Graph RingOfCliques(int cliques, int clique_size) {
  GraphBuilder builder(cliques * clique_size);
  for (int c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
    // One ring edge per adjacent clique pair: the only cross-community
    // structure, so a min-cut partition severs exactly these.
    const NodeId next = ((c + 1) % cliques) * clique_size;
    builder.AddEdge(base, next + 1);
  }
  return builder.Build();
}

Graph ErGraph() {
  Rng rng(0xE12u);
  return ErdosRenyi(120, 8.0 / 119.0, rng);
}

Graph BaGraph() {
  Rng rng(0xBA5u);
  return BarabasiAlbert(120, 4, rng);
}

// —— Bitwise response comparison ——————————————————————————————————

void ExpectResponseBitwise(const QueryResponse& want,
                           const QueryResponse& got, const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(want.status, got.status);
  EXPECT_EQ(want.degraded, got.degraded);
  EXPECT_EQ(want.source, got.source);
  EXPECT_EQ(want.work, got.work);
  EXPECT_EQ(want.conductance, got.conductance);
  EXPECT_EQ(want.set, got.set);
  ASSERT_EQ(want.scores.size(), got.scores.size());
  for (std::size_t i = 0; i < want.scores.size(); ++i) {
    // Exact == : the contract is identical *bits*, not tolerance.
    ASSERT_EQ(want.scores[i], got.scores[i])
        << "scores diverge at node " << i;
  }
}

void ExpectBatchBitwise(const std::vector<QueryResponse>& want,
                        const std::vector<QueryResponse>& got,
                        const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ExpectResponseBitwise(want[i], got[i],
                          ("query #" + std::to_string(i)).c_str());
  }
}

// One batch touching every method: three single-seed queries spread
// across the id range per method, plus one multi-seed query.
std::vector<Query> MatrixBatch(NodeId n) {
  std::vector<Query> batch;
  const std::vector<NodeId> picks = {1 % n, n / 2, n - 1};
  for (QueryMethod method :
       {QueryMethod::kPprPush, QueryMethod::kPprDense,
        QueryMethod::kHeatKernel, QueryMethod::kNibble}) {
    for (NodeId s : picks) {
      Query q;
      q.method = method;
      q.seeds = {s};
      q.epsilon = 1e-4;
      q.tolerance = 1e-8;
      q.max_iterations = 500;
      q.t = 5.0;
      q.delta = 1e-4;
      q.steps = 15;
      batch.push_back(std::move(q));
    }
  }
  Query multi;
  multi.method = QueryMethod::kPprPush;
  multi.seeds = {0, n / 2, n / 3};
  multi.epsilon = 1e-4;
  batch.push_back(std::move(multi));
  return batch;
}

// The tentpole matrix: shard counts {1, 2, 4, 8} × threads {1, 8} ×
// cache {on, off} × all four methods — before a burst of routed
// AddEdges, after it, and after routed RemoveEdges take the burst
// back out (mixed partial and full removals) — every response bitwise
// equal to the unsharded engine in the same configuration.
void RunInvarianceMatrix(const Graph& g, const char* family) {
  SCOPED_TRACE(family);
  const NodeId n = g.NumNodes();
  const std::vector<Query> batch = MatrixBatch(n);
  const std::vector<std::pair<NodeId, NodeId>> edits = {
      {0, n / 2}, {1, n - 1}, {n / 3, n / 4}, {2, 2}};

  for (const bool cache : {true, false}) {
    for (const int threads : {1, 8}) {
      ScopedNumThreads scoped(threads);
      QueryEngine::Options base;
      base.enable_cache = cache;
      QueryEngine reference(g, base);
      const std::vector<QueryResponse> ref_before =
          reference.RunBatch(batch);
      for (const auto& [u, v] : edits) reference.AddEdge(u, v, 1.0);
      const std::vector<QueryResponse> ref_after = reference.RunBatch(batch);
      // Take the burst back out: a full removal where the burst created
      // the edge, a partial decrement where it stacked onto an existing
      // one — either way both engines route the same deletes.
      for (const auto& [u, v] : edits) reference.RemoveEdge(u, v, 1.0);
      const std::vector<QueryResponse> ref_removed =
          reference.RunBatch(batch);

      for (const int k : {1, 2, 4, 8}) {
        const std::string context = std::string("cache=") +
                                    (cache ? "on" : "off") +
                                    " threads=" + std::to_string(threads) +
                                    " shards=" + std::to_string(k);
        QueryEngine::Options options = base;
        options.sharding.shards = k;
        QueryEngine engine(g, options);
        if (k > 1) {
          ASSERT_NE(engine.shards(), nullptr) << context;
          EXPECT_EQ(engine.shards()->shards(), k) << context;
        } else {
          EXPECT_EQ(engine.shards(), nullptr) << context;
        }
        ExpectBatchBitwise(ref_before, engine.RunBatch(batch),
                           context + " pre-edit");
        for (const auto& [u, v] : edits) engine.AddEdge(u, v, 1.0);
        ExpectBatchBitwise(ref_after, engine.RunBatch(batch),
                           context + " post-edit");
        for (const auto& [u, v] : edits) engine.RemoveEdge(u, v, 1.0);
        ExpectBatchBitwise(ref_removed, engine.RunBatch(batch),
                           context + " post-remove");
        if (k > 1) {
          // The sharded path really ran: rows were billed to shards.
          EXPECT_GT(engine.shards()->Totals().local_rows, 0) << context;
        }
      }
    }
  }
}

TEST(ShardingInvarianceTest, ErdosRenyiMatrix) {
  RunInvarianceMatrix(ErGraph(), "erdos-renyi");
}

TEST(ShardingInvarianceTest, BarabasiAlbertMatrix) {
  RunInvarianceMatrix(BaGraph(), "barabasi-albert");
}

TEST(ShardingInvarianceTest, RingOfCliquesMatrix) {
  RunInvarianceMatrix(RingOfCliques(6, 15), "ring-of-cliques");
}

// —— The WILL_FAIL probe ——————————————————————————————————————————
//
// Corrupting a single halo degree replica must break the bitwise
// invariance assertion — the ctest entry for this suite is WILL_FAIL,
// so the *failure* below is what CI certifies. If this test ever
// passes, the halo replicas have stopped being load-bearing and the
// whole matrix is vacuous.

TEST(ShardingWillFail, HaloCorruptionChangesServedBits) {
  const Graph g = RingOfCliques(6, 15);
  QueryEngine reference(g);
  QueryEngine::Options options;
  options.sharding.shards = 4;
  options.enable_cache = false;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);

  // Find a cross-shard edge {u, v}: v's degree replica lives in
  // owner(u)'s halo and serves u's push enqueue threshold for v.
  const std::vector<int>& owner = engine.shards()->plan().owner;
  NodeId cu = -1, cv = -1;
  for (NodeId u = 0; u < g.NumNodes() && cu < 0; ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (owner[u] != owner[arc.head]) {
        cu = u;
        cv = arc.head;
        break;
      }
    }
  }
  ASSERT_GE(cu, 0) << "partition produced no cross-shard edge";
  ASSERT_TRUE(engine.mutable_shards()->CorruptHaloReplica(owner[cu], cv,
                                                          1.0e9));

  Query q;
  q.method = QueryMethod::kPprPush;
  q.seeds = {cu};
  q.epsilon = 1e-5;
  ExpectResponseBitwise(reference.Run(q), engine.Run(q),
                        "push across corrupted halo");
}

// —— Degenerate-topology construction fuzz ————————————————————————

struct DegenerateCase {
  const char* name;
  Graph graph;
  int shards;
};

std::vector<DegenerateCase> DegenerateCases() {
  std::vector<DegenerateCase> cases;
  cases.push_back({"empty", GraphBuilder(0).Build(), 4});
  cases.push_back({"single-node", GraphBuilder(1).Build(), 4});
  cases.push_back({"isolated-nodes", GraphBuilder(8).Build(), 4});
  {
    GraphBuilder b(6);
    for (NodeId u = 0; u < 6; ++u) b.AddEdge(u, u);
    b.AddEdge(0, 1);
    cases.push_back({"self-loops", b.Build(), 3});
  }
  {
    GraphBuilder b(10);
    for (NodeId i = 0; i < 5; ++i) {
      for (NodeId j = i + 1; j < 5; ++j) {
        b.AddEdge(i, j);
        b.AddEdge(5 + i, 5 + j);
      }
    }
    cases.push_back({"disconnected", b.Build(), 2});
  }
  {
    GraphBuilder b(4);
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(2, 3);
    cases.push_back({"k-gt-n", b.Build(), 8});
  }
  return cases;
}

TEST(ShardingDegenerateTest, ExportPartsRoundTripsBitExactly) {
  for (const DegenerateCase& c : DegenerateCases()) {
    SCOPED_TRACE(c.name);
    const DynamicGraph dyn = DynamicGraph::FromGraph(c.graph);
    DynamicGraph::Parts parts = dyn.ExportParts();
    const DynamicGraph round = DynamicGraph::FromParts(
        std::move(parts.adjacency), std::move(parts.degrees),
        parts.num_edges, parts.total_volume);
    ASSERT_EQ(dyn.NumNodes(), round.NumNodes());
    EXPECT_EQ(dyn.NumEdges(), round.NumEdges());
    EXPECT_EQ(dyn.TotalVolume(), round.TotalVolume());
    for (NodeId u = 0; u < dyn.NumNodes(); ++u) {
      EXPECT_EQ(dyn.Degree(u), round.Degree(u)) << "node " << u;
    }
    const Graph a = dyn.ToGraph();
    const Graph b = round.ToGraph();
    ASSERT_EQ(a.NumNodes(), b.NumNodes());
    for (NodeId u = 0; u < a.NumNodes(); ++u) {
      ASSERT_EQ(a.OutDegree(u), b.OutDegree(u)) << "node " << u;
      for (ArcIndex i = 0; i < a.OutDegree(u); ++i) {
        EXPECT_EQ(a.Heads(u)[i], b.Heads(u)[i]);
        EXPECT_EQ(a.Weights(u)[i], b.Weights(u)[i]);
      }
    }
  }
}

TEST(ShardingDegenerateTest, EveryTopologyRoutesAndMatchesUnsharded) {
  for (const DegenerateCase& c : DegenerateCases()) {
    SCOPED_TRACE(c.name);
    QueryEngine reference(c.graph);
    QueryEngine::Options options;
    options.sharding.shards = c.shards;
    QueryEngine engine(c.graph, options);  // Must never crash.
    const NodeId n = c.graph.NumNodes();
    if (n == 0) continue;  // No valid seeds to route.
    std::vector<Query> batch;
    for (QueryMethod method :
         {QueryMethod::kPprPush, QueryMethod::kPprDense,
          QueryMethod::kHeatKernel, QueryMethod::kNibble}) {
      for (NodeId s : {NodeId{0}, NodeId(n / 2), NodeId(n - 1)}) {
        Query q;
        q.method = method;
        q.seeds = {s};
        q.epsilon = 1e-4;
        q.steps = 8;
        q.t = 3.0;
        batch.push_back(std::move(q));
      }
    }
    ExpectBatchBitwise(reference.RunBatch(batch), engine.RunBatch(batch),
                       std::string(c.name) + " batch");
    // Mutation must route too (including the self-loop).
    reference.AddEdge(0, n - 1, 2.0);
    reference.AddEdge(0, 0, 1.0);
    engine.AddEdge(0, n - 1, 2.0);
    engine.AddEdge(0, 0, 1.0);
    ExpectBatchBitwise(reference.RunBatch(batch), engine.RunBatch(batch),
                       std::string(c.name) + " post-edit batch");
  }
}

TEST(ShardingDegenerateTest, PlanClampsAndFallsBackValidly) {
  for (const DegenerateCase& c : DegenerateCases()) {
    SCOPED_TRACE(c.name);
    const ShardPlan plan = BuildShardPlan(c.graph, c.shards);
    EXPECT_TRUE(ValidShardOwners(plan.owner, c.graph.NumNodes(),
                                 plan.shards));
    EXPECT_LE(plan.shards,
              std::max<NodeId>(c.graph.NumNodes(), 1));
    // Deterministic: the same inputs reproduce the identical plan.
    const ShardPlan again = BuildShardPlan(c.graph, c.shards);
    EXPECT_EQ(plan.owner, again.owner);
    EXPECT_EQ(plan.shards, again.shards);
  }
}

// —— Cache-key contract ———————————————————————————————————————————
//
// History: the key once carried the graph epoch (invalidate-the-world)
// and, after a recovery collision, the routing epoch too. Both are
// gone — entry validity lives on the entry (insert-epoch stamp +
// region fingerprint), and shard-count invariance means routing state
// never changes answer bits, so neither belongs in the key. This pins
// the key as a pure function of (method, parameters, seeds): identical
// across epochs, routing states, and shard counts, which is exactly
// what lets an entry survive an edit that misses its region.

TEST(ShardingTest, CanonicalKeyIsEpochAndRoutingFree) {
  Query q;
  q.seeds = {3, 1};
  const std::string key = QueryEngine::CanonicalKey(q);
  EXPECT_EQ(key, QueryEngine::CanonicalKey(q));
  EXPECT_EQ(key.find("epoch="), std::string::npos);
  EXPECT_EQ(key.find("route="), std::string::npos);

  // A sharded engine's cached pre-edit entry keeps serving after a
  // routing-epoch bump when the edit misses its region — impossible
  // under either of the removed key schemes, where any bump re-keyed
  // the whole cache.
  const Graph g = RingOfCliques(6, 15);
  QueryEngine::Options options;
  options.sharding.shards = 4;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);
  Query probe;
  // Clique-interior seed at a coarse ε: the push stays inside clique 0,
  // so the read region is that clique plus its one-hop ring neighbors —
  // leaving the rest of the ring genuinely untouched.
  probe.seeds = {2};
  probe.epsilon = 5e-2;
  const QueryResponse cold = engine.Run(probe);
  ASSERT_EQ(cold.source, QuerySource::kCold);

  // Brand-new cross-shard pairs far from clique 0 bump routing. The
  // region fingerprint is lossy (a far node can hash into the probe's
  // buckets and over-evict — safe, but it would demote this entry), so
  // try a handful of structurally-distant pairs: at least one must
  // leave the pre-bump entry served as an exact cache hit, bitwise.
  const std::vector<int>& owner = engine.shards()->plan().owner;
  const std::int64_t routing_before = engine.RoutingEpoch();
  bool retained = false;
  int attempts = 0;
  for (NodeId a = 50; a < g.NumNodes() && !retained && attempts < 6; ++a) {
    for (NodeId b = a + 1; b < g.NumNodes(); ++b) {
      if (owner[a] == owner[b] ||
          engine.graph().EdgeWeight(a, b) != 0.0) {
        continue;
      }
      ++attempts;
      engine.AddEdge(a, b, 1.0);
      const QueryResponse again = engine.Run(probe);
      if (again.source == QuerySource::kCached) {
        EXPECT_EQ(again.scores, cold.scores);
        retained = true;
      }
      break;  // One pair per left endpoint.
    }
  }
  ASSERT_GT(attempts, 0);
  ASSERT_GT(engine.RoutingEpoch(), routing_before);
  EXPECT_TRUE(retained)
      << "no distant edit left the pre-bump entry exactly servable";
}

TEST(ShardingTest, RoutingEpochBumpsOnNewHaloMembershipOnly) {
  const Graph g = RingOfCliques(4, 10);
  QueryEngine::Options options;
  options.sharding.shards = 2;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);
  const std::vector<int>& owner = engine.shards()->plan().owner;

  // A new cross-shard pair that is not yet adjacent — both endpoints
  // shard-interior, so this edge will be each node's ONLY arc into the
  // other shard (that makes the eventual full removal a guaranteed
  // halo shrink).
  const auto interior = [&](NodeId x) {
    for (const Arc& arc : g.Neighbors(x)) {
      if (owner[arc.head] != owner[x]) return false;
    }
    return true;
  };
  NodeId u = -1, v = -1;
  for (NodeId a = 0; a < g.NumNodes() && u < 0; ++a) {
    if (!interior(a)) continue;
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      if (owner[a] != owner[b] && !g.HasEdge(a, b) && interior(b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_GE(u, 0);
  const std::int64_t before = engine.RoutingEpoch();
  engine.AddEdge(u, v, 1.0);
  const std::int64_t after = engine.RoutingEpoch();
  EXPECT_GT(after, before);
  // Re-adding the same edge changes weights, not membership.
  engine.AddEdge(u, v, 1.0);
  EXPECT_EQ(engine.RoutingEpoch(), after);
  // An intra-shard edge never touches routing.
  NodeId a = -1, b = -1;
  for (NodeId x = 1; x < g.NumNodes() && a < 0; ++x) {
    if (owner[x] == owner[0]) {
      a = 0;
      b = x;
    }
  }
  ASSERT_GE(a, 0);
  engine.AddEdge(a, b, 1.0);
  EXPECT_EQ(engine.RoutingEpoch(), after);

  // The delete side mirrors the insert side exactly. A partial
  // decrement (2.0 → 1.0) leaves membership alone...
  engine.RemoveEdge(u, v, 1.0);
  EXPECT_EQ(engine.RoutingEpoch(), after);
  // ...and the full removal empties both mirrored halo rows — the
  // replicas are dropped and routing bumps again (halo shrink).
  engine.RemoveEdge(u, v);
  EXPECT_GT(engine.RoutingEpoch(), after);
}

// —— Shard locality ———————————————————————————————————————————————
//
// The reason to shard at all: a strongly-local query seeded deep
// inside one shard must complete without ever escalating. (The
// bench/shard_serve driver measures the deep-vs-boundary local-work
// ratio on bigger graphs; this pins the qualitative contract.)

TEST(ShardingTest, DeepSeedNeverEscalates) {
  const Graph g = RingOfCliques(6, 15);
  QueryEngine::Options options;
  options.sharding.shards = 4;
  options.enable_cache = false;
  QueryEngine engine(g, options);
  ASSERT_NE(engine.shards(), nullptr);
  const std::vector<int>& owner = engine.shards()->plan().owner;

  // Deep seed: a node whose whole one-hop neighborhood it owns with it.
  NodeId deep = -1;
  for (NodeId u = 0; u < g.NumNodes() && deep < 0; ++u) {
    bool interior = g.OutDegree(u) > 0;
    for (const Arc& arc : g.Neighbors(u)) {
      interior = interior && owner[arc.head] == owner[u];
    }
    if (interior) deep = u;
  }
  ASSERT_GE(deep, 0) << "partition left no interior node";

  engine.mutable_shards()->ResetCounters();
  Query q;
  q.method = QueryMethod::kPprPush;
  q.seeds = {deep};
  q.epsilon = 5e-2;  // Shallow diffusion: only the seed row is pushed.
  engine.Run(q);
  const ShardSet::CounterTotals totals = engine.shards()->Totals();
  EXPECT_GT(totals.local_rows, 0);
  EXPECT_EQ(totals.escalations, 0)
      << "a clique-interior push should never leave its shard";
}

// —— Shard manifest ————————————————————————————————————————————————

ShardManifest SampleManifest() {
  ShardManifest m;
  m.shards = 3;
  m.partition_seed = 0x5eedULL;
  m.num_nodes = 6;
  m.routing_epoch = 11;
  m.shard_epochs = {4, 4, 4};
  m.owner = {0, 0, 1, 1, 2, 2};
  return m;
}

TEST(ShardManifestTest, RoundTripsAllFields) {
  const fs::path dir =
      fs::temp_directory_path() / "impreg_shard_manifest_rt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = ShardManifestPath(dir.string());
  const ShardManifest m = SampleManifest();
  ASSERT_TRUE(WriteShardManifest(path, m));
  ShardManifest loaded;
  std::string detail;
  ASSERT_TRUE(LoadShardManifest(path, &loaded, &detail)) << detail;
  EXPECT_EQ(loaded.shards, m.shards);
  EXPECT_EQ(loaded.partition_seed, m.partition_seed);
  EXPECT_EQ(loaded.num_nodes, m.num_nodes);
  EXPECT_EQ(loaded.routing_epoch, m.routing_epoch);
  EXPECT_EQ(loaded.shard_epochs, m.shard_epochs);
  EXPECT_EQ(loaded.owner, m.owner);
  fs::remove_all(dir);
}

TEST(ShardManifestTest, RejectsCorruptionTearingAndBadShapes) {
  const fs::path dir =
      fs::temp_directory_path() / "impreg_shard_manifest_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = ShardManifestPath(dir.string());
  ShardManifest loaded;
  std::string detail;

  // Missing file: rejected with the canonical detail (the CLI treats
  // this one as the silent first-boot case).
  EXPECT_FALSE(LoadShardManifest(path, &loaded, &detail));
  EXPECT_EQ(detail, "manifest missing or unreadable");

  // A flipped payload byte fails the CRC.
  ASSERT_TRUE(WriteShardManifest(path, SampleManifest()));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    f.put('#');
  }
  EXPECT_FALSE(LoadShardManifest(path, &loaded, &detail));

  // Disagreeing per-shard epoch stamps = torn multi-artifact update:
  // the writer must refuse to publish it at all.
  ShardManifest torn = SampleManifest();
  torn.shard_epochs = {4, 5, 4};
  EXPECT_FALSE(WriteShardManifest(path, torn));

  // A malformed owner array (shard 2 unpopulated) is refused too.
  ShardManifest gap = SampleManifest();
  gap.owner = {0, 0, 1, 1, 1, 1};
  EXPECT_FALSE(WriteShardManifest(path, gap));
  fs::remove_all(dir);
}

TEST(ShardingTest, ManifestPinnedPlacementServesIdentically) {
  const Graph g = ErGraph();
  QueryEngine::Options options;
  options.sharding.shards = 4;
  QueryEngine computed(g, options);
  ASSERT_NE(computed.shards(), nullptr);

  // Feed the computed placement back through Options::sharding.owner —
  // the manifest-recovery path — and serve the same batch.
  QueryEngine::Options pinned = options;
  pinned.sharding.owner = computed.shards()->plan().owner;
  QueryEngine restored(g, pinned);
  ASSERT_NE(restored.shards(), nullptr);
  EXPECT_EQ(restored.shards()->plan().owner, computed.shards()->plan().owner);
  const std::vector<Query> batch = MatrixBatch(g.NumNodes());
  ExpectBatchBitwise(computed.RunBatch(batch), restored.RunBatch(batch),
                     "manifest-pinned placement");
}

}  // namespace
}  // namespace impreg
