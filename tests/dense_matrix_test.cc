#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "util/rng.h"

namespace impreg {
namespace {

TEST(DenseMatrixTest, IdentityAndApply) {
  const DenseMatrix id = DenseMatrix::Identity(3);
  const Vector x = {1.0, 2.0, 3.0};
  EXPECT_EQ(id.Apply(x), x);
  EXPECT_DOUBLE_EQ(id.Trace(), 3.0);
}

TEST(DenseMatrixTest, MultiplyMatchesManual) {
  DenseMatrix a(2, 2), b(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  const DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(DenseMatrixTest, TransposeAddScaledFrobenius) {
  DenseMatrix m(2, 3);
  m.At(0, 2) = 4.0;
  m.At(1, 0) = 3.0;
  const DenseMatrix t = m.Transposed();
  EXPECT_DOUBLE_EQ(t.At(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  DenseMatrix sum = m;
  sum.AddScaled(m, -1.0);
  EXPECT_DOUBLE_EQ(sum.FrobeniusNorm(), 0.0);
}

TEST(DenseMatrixTest, OuterProduct) {
  const DenseMatrix op = DenseMatrix::OuterProduct({1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(op.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(op.At(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(op.At(1, 1), 12.0);
  EXPECT_DOUBLE_EQ(op.SymmetryDefect(), 0.0);
}

TEST(DenseMatrixTest, TraceOfProductMatchesExplicit) {
  Rng rng(3);
  DenseMatrix a(4, 4), b(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      a.At(i, j) = rng.NextGaussian();
      b.At(i, j) = rng.NextGaussian();
    }
  }
  EXPECT_NEAR(TraceOfProduct(a, b), a.Multiply(b).Trace(), 1e-12);
}

TEST(JacobiTest, DiagonalMatrix) {
  DenseMatrix m(3, 3);
  m.At(0, 0) = 3.0;
  m.At(1, 1) = 1.0;
  m.At(2, 2) = 2.0;
  const SymmetricEigen eigen = SymmetricEigendecomposition(m);
  EXPECT_NEAR(eigen.eigenvalues[0], 1.0, 1e-14);
  EXPECT_NEAR(eigen.eigenvalues[1], 2.0, 1e-14);
  EXPECT_NEAR(eigen.eigenvalues[2], 3.0, 1e-14);
}

TEST(JacobiTest, TwoByTwoExact) {
  DenseMatrix m(2, 2);
  m.At(0, 0) = 2.0;
  m.At(0, 1) = m.At(1, 0) = 1.0;
  m.At(1, 1) = 2.0;
  const SymmetricEigen eigen = SymmetricEigendecomposition(m);
  EXPECT_NEAR(eigen.eigenvalues[0], 1.0, 1e-14);
  EXPECT_NEAR(eigen.eigenvalues[1], 3.0, 1e-14);
}

TEST(JacobiTest, ReconstructsMatrix) {
  Rng rng(7);
  const int n = 12;
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m.At(i, j) = m.At(j, i) = rng.NextGaussian();
    }
  }
  const SymmetricEigen eigen = SymmetricEigendecomposition(m);
  // Rebuild V diag(λ) Vᵀ.
  const DenseMatrix rebuilt = ApplySpectralFunction(
      eigen, [](double lambda) { return lambda; });
  DenseMatrix diff = rebuilt;
  diff.AddScaled(m, -1.0);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-10 * (1.0 + m.FrobeniusNorm()));
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Rng rng(11);
  const int n = 10;
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m.At(i, j) = m.At(j, i) = rng.NextDouble();
    }
  }
  const SymmetricEigen eigen = SymmetricEigendecomposition(m);
  const DenseMatrix vtv =
      eigen.eigenvectors.Transposed().Multiply(eigen.eigenvectors);
  DenseMatrix diff = vtv;
  diff.AddScaled(DenseMatrix::Identity(n), -1.0);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-10);
}

TEST(JacobiTest, CycleGraphNormalizedSpectrum) {
  // ℒ of the n-cycle has eigenvalues 1 − cos(2πk/n).
  const int n = 12;
  const Graph g = CycleGraph(n);
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  std::vector<double> expected;
  for (int k = 0; k < n; ++k) {
    expected.push_back(1.0 - std::cos(2.0 * std::numbers::pi * k / n));
  }
  std::sort(expected.begin(), expected.end());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(eigen.eigenvalues[i], expected[i], 1e-10);
  }
}

TEST(JacobiTest, CompleteGraphNormalizedSpectrum) {
  // ℒ(K_n): eigenvalue 0 once and n/(n−1) with multiplicity n−1.
  const int n = 8;
  const SymmetricEigen eigen = SymmetricEigendecomposition(
      DenseNormalizedLaplacian(CompleteGraph(n)));
  EXPECT_NEAR(eigen.eigenvalues[0], 0.0, 1e-12);
  for (int i = 1; i < n; ++i) {
    EXPECT_NEAR(eigen.eigenvalues[i], n / (n - 1.0), 1e-12);
  }
}

TEST(JacobiTest, HypercubeCombinatorialSpectrum) {
  // L of the d-cube has eigenvalues 2k with multiplicity (d choose k).
  const int d = 3;
  const SymmetricEigen eigen = SymmetricEigendecomposition(
      DenseCombinatorialLaplacian(HypercubeGraph(d)));
  const std::vector<double> expected = {0, 2, 2, 2, 4, 4, 4, 6};
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(eigen.eigenvalues[i], expected[i], 1e-12);
  }
}

TEST(JacobiTest, LaplacianIsPsd) {
  Rng rng(13);
  const Graph g = ErdosRenyi(20, 0.3, rng);
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  EXPECT_GE(eigen.eigenvalues.front(), -1e-12);
  EXPECT_LE(eigen.eigenvalues.back(), 2.0 + 1e-12);
}

TEST(JacobiTest, AsymmetricInputDies) {
  DenseMatrix m(2, 2);
  m.At(0, 1) = 1.0;  // Not mirrored.
  EXPECT_DEATH(SymmetricEigendecomposition(m), "not symmetric");
}

TEST(SpectralFunctionTest, ExponentialOfDiagonal) {
  DenseMatrix m(2, 2);
  m.At(0, 0) = 0.0;
  m.At(1, 1) = 1.0;
  const SymmetricEigen eigen = SymmetricEigendecomposition(m);
  const DenseMatrix expm =
      ApplySpectralFunction(eigen, [](double x) { return std::exp(-x); });
  EXPECT_NEAR(expm.At(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(expm.At(1, 1), std::exp(-1.0), 1e-14);
  EXPECT_NEAR(expm.At(0, 1), 0.0, 1e-14);
}

TEST(SpectralFunctionTest, InverseOfSpd) {
  Rng rng(17);
  const int n = 6;
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m.At(i, j) = m.At(j, i) = rng.NextGaussian() * 0.1;
    }
    m.At(i, i) += 3.0;  // Diagonally dominant ⇒ SPD.
  }
  const SymmetricEigen eigen = SymmetricEigendecomposition(m);
  const DenseMatrix inv =
      ApplySpectralFunction(eigen, [](double x) { return 1.0 / x; });
  DenseMatrix prod = m.Multiply(inv);
  prod.AddScaled(DenseMatrix::Identity(n), -1.0);
  EXPECT_LT(prod.FrobeniusNorm(), 1e-10);
}


TEST(FastEigenTest, MatchesJacobiOnRandomSymmetric) {
  Rng rng(21);
  for (int n : {1, 2, 3, 8, 40, 90}) {
    DenseMatrix m(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        m.At(i, j) = m.At(j, i) = rng.NextGaussian();
      }
    }
    const SymmetricEigen jacobi = SymmetricEigendecomposition(m);
    const SymmetricEigen fast = SymmetricEigendecompositionFast(m);
    ASSERT_EQ(fast.eigenvalues.size(), static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      EXPECT_NEAR(fast.eigenvalues[k], jacobi.eigenvalues[k],
                  1e-9 * (1.0 + m.FrobeniusNorm()))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(FastEigenTest, ReconstructsMatrix) {
  Rng rng(22);
  const int n = 30;
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m.At(i, j) = m.At(j, i) = rng.NextDouble();
    }
  }
  const SymmetricEigen eigen = SymmetricEigendecompositionFast(m);
  const DenseMatrix rebuilt =
      ApplySpectralFunction(eigen, [](double x) { return x; });
  DenseMatrix diff = rebuilt;
  diff.AddScaled(m, -1.0);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-9 * (1.0 + m.FrobeniusNorm()));
}

TEST(FastEigenTest, EigenvectorsOrthonormal) {
  Rng rng(23);
  const int n = 25;
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      m.At(i, j) = m.At(j, i) = rng.NextGaussian() * 0.5;
    }
  }
  const SymmetricEigen eigen = SymmetricEigendecompositionFast(m);
  const DenseMatrix vtv =
      eigen.eigenvectors.Transposed().Multiply(eigen.eigenvectors);
  DenseMatrix diff = vtv;
  diff.AddScaled(DenseMatrix::Identity(n), -1.0);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-9);
}

TEST(FastEigenTest, NormalizedLaplacianSpectrum) {
  const SymmetricEigen eigen = SymmetricEigendecompositionFast(
      DenseNormalizedLaplacian(CompleteGraph(9)));
  EXPECT_NEAR(eigen.eigenvalues[0], 0.0, 1e-10);
  for (int i = 1; i < 9; ++i) {
    EXPECT_NEAR(eigen.eigenvalues[i], 9.0 / 8.0, 1e-10);
  }
}

TEST(FastEigenTest, AlreadyTridiagonalInput) {
  DenseMatrix m(4, 4);
  for (int i = 0; i < 4; ++i) m.At(i, i) = i + 1.0;
  for (int i = 0; i + 1 < 4; ++i) m.At(i, i + 1) = m.At(i + 1, i) = 0.5;
  const SymmetricEigen fast = SymmetricEigendecompositionFast(m);
  const SymmetricEigen jacobi = SymmetricEigendecomposition(m);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(fast.eigenvalues[k], jacobi.eigenvalues[k], 1e-12);
  }
}

}  // namespace
}  // namespace impreg
