#include "partition/mov.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"
#include "partition/spectral.h"

namespace impreg {
namespace {

TEST(MovTest, RayleighNeverBeatsLambda2) {
  // Problem (8) adds a constraint, so its optimum is ≥ λ₂.
  const Graph g = CavemanGraph(3, 6);
  const SpectralPartitionResult global = SpectralPartition(g);
  const MovResult mov = MovSolveAtSigma(g, {0, 1}, global.lambda2 * 0.5);
  EXPECT_GE(mov.rayleigh, global.lambda2 - 1e-9);
}

TEST(MovTest, VeryNegativeSigmaConcentratesOnSeed) {
  const Graph g = GridGraph(6, 6);
  const std::vector<NodeId> seed = {0};
  const MovResult mov = MovSolveAtSigma(g, seed, -50.0);
  // x ≈ seed direction: correlation close to its maximum.
  EXPECT_GT(mov.correlation_sq, 0.8);
}

TEST(MovTest, SigmaNearLambda2ApproachesGlobalEigenvector) {
  const Graph g = CavemanGraph(2, 8);  // Big spectral gap.
  const SpectralPartitionResult global = SpectralPartition(g);
  const MovResult mov =
      MovSolveAtSigma(g, {0}, global.lambda2 * (1.0 - 1e-7));
  EXPECT_LT(DistanceUpToSign(mov.x, global.v2), 1e-2);
}

TEST(MovTest, CorrelationMonotoneInSigma) {
  const Graph g = GridGraph(5, 8);
  const std::vector<NodeId> seed = {0, 1, 8};
  const SpectralPartitionResult global = SpectralPartition(g);
  double previous = 2.0;
  for (double frac : {-8.0, -2.0, 0.2, 0.8, 0.99}) {
    const double sigma = frac * global.lambda2;
    const MovResult mov = MovSolveAtSigma(g, seed, sigma);
    EXPECT_LE(mov.correlation_sq, previous + 1e-9)
        << "sigma = " << sigma;
    previous = mov.correlation_sq;
  }
}

TEST(MovTest, BinarySearchHitsCorrelationTarget) {
  const Graph g = GridGraph(6, 7);
  const SpectralPartitionResult global = SpectralPartition(g);
  const std::vector<NodeId> seed = {0, 1, 7};
  const double kappa = 0.5;
  const MovResult mov =
      MovSolveForCorrelation(g, seed, kappa, global.lambda2);
  EXPECT_GE(mov.correlation_sq, kappa - 1e-3);
  // And it should not be wildly more local than necessary.
  EXPECT_LT(mov.correlation_sq, 0.95);
}

TEST(MovTest, FindsSeededCommunity) {
  Rng rng(1);
  SocialGraphParams params;
  params.core_nodes = 1500;
  params.num_communities = 3;
  params.min_community_size = 40;
  params.max_community_size = 60;
  params.num_whiskers = 8;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const auto& community = sg.communities[0];
  const std::vector<NodeId> seed(community.begin(), community.begin() + 5);
  const MovResult mov = MovSolveAtSigma(sg.graph, seed, -0.5);
  ASSERT_FALSE(mov.set.empty());
  // The sweep of the locally-biased vector recovers a low-conductance
  // set near the seed.
  EXPECT_LT(mov.stats.conductance, 0.5);
}

TEST(MovTest, LocalizedSolutionIsMoreConcentratedThanGlobal) {
  // Participation-ratio style check: the local solution has more mass
  // near the seed than v₂ does.
  const Graph g = GridGraph(8, 8);
  const SpectralPartitionResult global = SpectralPartition(g);
  const std::vector<NodeId> seed = {0};
  const MovResult local = MovSolveAtSigma(g, seed, -5.0);
  auto mass_near_seed = [&](const Vector& x) {
    double total = 0.0;
    for (NodeId u : {0, 1, 8, 9}) total += x[u] * x[u];
    return total;
  };
  EXPECT_GT(mass_near_seed(local.x), mass_near_seed(global.v2));
}

TEST(MovTest, SeedParallelToTrivialDies) {
  // Using ALL nodes as the seed makes s_hat ∝ D^{1/2}1.
  const Graph g = CompleteGraph(5);
  const std::vector<NodeId> seed = {0, 1, 2, 3, 4};
  EXPECT_DEATH(MovSolveAtSigma(g, seed, -1.0), "parallel");
}

}  // namespace
}  // namespace impreg
