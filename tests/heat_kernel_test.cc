#include "diffusion/heat_kernel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"

namespace impreg {
namespace {

TEST(HeatKernelTest, TimeZeroIsIdentity) {
  const Graph g = CycleGraph(10);
  Vector x(10, 0.0);
  x[4] = 1.0;
  HeatKernelOptions options;
  options.t = 0.0;
  const Vector out = HeatKernelNormalized(g, x, options);
  EXPECT_LT(DistanceL2(out, x), 1e-12);
}

TEST(HeatKernelTest, MatchesDenseExponential) {
  Rng rng(1);
  const Graph g = ErdosRenyi(35, 0.2, rng);
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  for (double t : {0.5, 3.0, 12.0}) {
    Vector x(g.NumNodes());
    for (double& v : x) v = rng.NextGaussian();
    HeatKernelOptions options;
    options.t = t;
    const Vector got = HeatKernelNormalized(g, x, options);
    const DenseMatrix expm = ApplySpectralFunction(
        eigen, [&](double lam) { return std::exp(-t * lam); });
    const Vector exact = expm.Apply(x);
    EXPECT_LT(DistanceL2(got, exact), 1e-8 * (1.0 + Norm2(exact)));
  }
}

TEST(HeatKernelTest, WalkPreservesProbabilityMass) {
  Rng rng(2);
  const Graph g = ErdosRenyi(40, 0.15, rng);
  const Vector seed = SingleNodeSeed(g, 3);
  HeatKernelOptions options;
  options.t = 4.0;
  const Vector rho = HeatKernelWalk(g, seed, options);
  EXPECT_NEAR(Sum(rho), 1.0, 1e-10);
  for (double v : rho) EXPECT_GE(v, -1e-12);
}

TEST(HeatKernelTest, WalkMatchesTaylorReference) {
  Rng rng(3);
  const Graph g = ErdosRenyi(30, 0.25, rng);
  const Vector seed = SeedSetDistribution(g, {0, 5});
  for (double t : {0.5, 2.0, 8.0}) {
    HeatKernelOptions options;
    options.t = t;
    const Vector krylov = HeatKernelWalk(g, seed, options);
    const Vector taylor = HeatKernelWalkTaylor(g, seed, t);
    EXPECT_LT(DistanceL1(krylov, taylor), 1e-8) << "t = " << t;
  }
}

TEST(HeatKernelTest, LargeTimeEquilibratesToStationary) {
  Rng rng(4);
  const Graph g = ErdosRenyi(30, 0.3, rng);
  const Vector seed = SingleNodeSeed(g, 0);
  HeatKernelOptions options;
  options.t = 200.0;
  options.krylov_dim = 80;
  const Vector rho = HeatKernelWalk(g, seed, options);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_NEAR(rho[u], g.Degree(u) / g.TotalVolume(), 1e-6);
  }
}

TEST(HeatKernelTest, SmallTimeStaysNearSeed) {
  const Graph g = PathGraph(30);
  const Vector seed = SingleNodeSeed(g, 15);
  HeatKernelOptions options;
  options.t = 0.1;
  const Vector rho = HeatKernelWalk(g, seed, options);
  EXPECT_GT(rho[15], 0.9);
}

TEST(HeatKernelTest, TraceIdentity) {
  // Tr exp(−tℒ) = Σ exp(−tλᵢ): verified via the dense spectrum by
  // applying the Krylov solver to each basis vector.
  const Graph g = CavemanGraph(2, 5);
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  const double t = 2.0;
  double trace = 0.0;
  for (int i = 0; i < g.NumNodes(); ++i) {
    Vector e(g.NumNodes(), 0.0);
    e[i] = 1.0;
    HeatKernelOptions options;
    options.t = t;
    trace += HeatKernelNormalized(g, e, options)[i];
  }
  double expected = 0.0;
  for (double lam : eigen.eigenvalues) expected += std::exp(-t * lam);
  EXPECT_NEAR(trace, expected, 1e-8);
}

TEST(HeatKernelTest, IsolatedNodeMassIsFixed) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  Vector seed = {0.2, 0.0, 0.8};
  HeatKernelOptions options;
  options.t = 3.0;
  const Vector rho = HeatKernelWalk(g, seed, options);
  EXPECT_NEAR(rho[2], 0.8, 1e-12);
  EXPECT_NEAR(Sum(rho), 1.0, 1e-10);
}

TEST(HeatKernelTest, TaylorHandlesTimeZero) {
  const Graph g = PathGraph(4);
  const Vector seed = SingleNodeSeed(g, 1);
  const Vector rho = HeatKernelWalkTaylor(g, seed, 0.0);
  EXPECT_LT(DistanceL1(rho, seed), 1e-12);
}

TEST(HeatKernelTest, MonotoneSpreadInTime) {
  // The seed's own mass decays monotonically in t (for a vertex-
  // transitive graph this is exact).
  const Graph g = CycleGraph(20);
  const Vector seed = SingleNodeSeed(g, 0);
  double previous = 1.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    HeatKernelOptions options;
    options.t = t;
    const double self_mass = HeatKernelWalk(g, seed, options)[0];
    EXPECT_LT(self_mass, previous + 1e-12);
    previous = self_mass;
  }
}

}  // namespace
}  // namespace impreg
