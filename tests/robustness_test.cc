// Acceptance test of the numerical-failure containment layer.
//
// The fault-point catalog is enumerated from the code itself: each
// scenario runs its solver once under recording mode to discover the
// sites it passes through, then re-runs it with a fault armed at every
// site it owns and asserts graceful degradation — a non-kConverged
// status, finite outputs, no abort, no hang. Sites named *budget* (plus
// the budget hooks "maxflow/phase" and "kway/recurse") get a simulated
// WorkBudget exhaustion; every other site gets a NaN.
//
// The whole suite is compiled into every build but the injection sweeps
// skip themselves unless the harness was compiled in
// (IMPREG_FAULT_INJECTION=ON — see the `faultinject` CMake preset); the
// real-budget-exhaustion test runs everywhere.

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "diffusion/heat_kernel.h"
#include "diffusion/lazy_walk.h"
#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "flow/maxflow.h"
#include "flow/mqi.h"
#include "flow/multilevel.h"
#include "flow/recursive_partition.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/reorder.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "linalg/power_method.h"
#include "ncp/ncp.h"
#include "partition/hkrelax.h"
#include "partition/nibble.h"
#include "partition/push.h"
#include "service/durability/snapshot.h"
#include "service/durability/wal.h"
#include "service/load/harness.h"
#include "service/load/workload.h"
#include "service/query_engine.h"
#include "streaming/dynamic_graph.h"
#include "util/fault.h"
#include "util/rng.h"

namespace impreg {
namespace {

/// What a scenario reports back: how the solve ended and whether every
/// advertised output stayed finite/valid.
struct Outcome {
  SolveStatus status = SolveStatus::kConverged;
  bool finite = true;
};

/// One hardened solver: a deterministic healthy run (must converge) and
/// the site prefixes it owns in the fault-point catalog. Sites recorded
/// but not owned (e.g. the maxflow sites inside the NCP flow family)
/// are exercised by the scenario that owns them.
struct Scenario {
  const char* name;
  std::vector<const char*> prefixes;
  std::function<Outcome()> run;
};

bool Owns(const Scenario& scenario, const std::string& site) {
  for (const char* prefix : scenario.prefixes) {
    if (site.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Budget hooks take a WorkBudget* target; everything else takes a
/// vector or scalar. The kind must match the hook or the injection is a
/// no-op and the degradation assertion would be vacuous.
bool IsBudgetSite(const std::string& site) {
  return site.find("budget") != std::string::npos ||
         site == "maxflow/phase" || site == "kway/recurse";
}

/// Generous cap: never exhausts on these tiny inputs, so the healthy
/// runs converge while the budget hooks still see a real budget.
constexpr std::int64_t kGenerousArcs = std::int64_t{1} << 40;

/// Diagonal test operator with an unambiguous dominant eigenvalue.
class DiagOperator : public LinearOperator {
 public:
  explicit DiagOperator(Vector d) : d_(std::move(d)) {}
  int Dimension() const override { return static_cast<int>(d_.size()); }
  void Apply(const Vector& x, Vector& y) const override {
    y.resize(d_.size());
    for (std::size_t i = 0; i < d_.size(); ++i) y[i] = d_[i] * x[i];
  }

 private:
  Vector d_;
};

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;

  scenarios.push_back({"cg", {"cg/"}, [] {
    Rng rng(1);
    const Graph g = ErdosRenyi(40, 0.15, rng);
    const NormalizedLaplacianOperator lap(g);
    const ShiftedOperator system(lap, 1.0, 1.0);
    Vector b(40);
    for (double& v : b) v = rng.NextGaussian();
    const CgResult r = ConjugateGradient(system, b);
    return Outcome{r.diagnostics.status, AllFinite(r.x)};
  }});

  scenarios.push_back({"chebyshev", {"chebyshev/"}, [] {
    Rng rng(2);
    const Graph g = ErdosRenyi(40, 0.15, rng);
    const NormalizedLaplacianOperator lap(g);
    const ShiftedOperator system(lap, 0.8, 0.2);
    Vector b(40);
    for (double& v : b) v = rng.NextGaussian();
    const ChebyshevResult r = ChebyshevSolve(system, b, 0.2, 1.8);
    return Outcome{r.diagnostics.status, AllFinite(r.x)};
  }});

  scenarios.push_back({"power_method", {"power_method/"}, [] {
    const DiagOperator op({2.0, 1.0, 0.5, 0.25, 0.1, 0.05});
    const PowerMethodResult r = PowerMethod(op, Vector(6, 1.0));
    return Outcome{r.diagnostics.status,
                   AllFinite(r.eigenvector) && std::isfinite(r.eigenvalue)};
  }});

  scenarios.push_back({"lanczos", {"lanczos/"}, [] {
    Rng rng(3);
    const Graph g = ErdosRenyi(50, 0.15, rng);
    const NormalizedLaplacianOperator lap(g);
    const LanczosResult r = LanczosSmallest(lap, 2);
    bool finite = AllFinite(r.eigenvalues);
    for (const Vector& v : r.eigenvectors) finite = finite && AllFinite(v);
    return Outcome{r.diagnostics.status, finite};
  }});

  scenarios.push_back({"krylov_exp", {"krylov_exp/"}, [] {
    const Graph g = CycleGraph(12);
    const NormalizedLaplacianOperator lap(g);
    Vector v(12, 0.0);
    v[4] = 1.0;
    SolverDiagnostics diag;
    const Vector out = KrylovExpMultiply(lap, -1.0, v, 40, &diag);
    return Outcome{diag.status, AllFinite(out)};
  }});

  scenarios.push_back({"pagerank", {"pagerank/"}, [] {
    const Graph g = CavemanGraph(3, 8);
    const PageRankResult r = PersonalizedPageRank(g, SingleNodeSeed(g, 0));
    return Outcome{r.diagnostics.status, AllFinite(r.scores)};
  }});

  scenarios.push_back({"heat_kernel", {"heat_kernel/"}, [] {
    const Graph g = CavemanGraph(3, 8);
    SolverDiagnostics diag;
    // t = 3 ⇒ ≥ 8 Taylor terms: the amortized finite check fires.
    const Vector rho =
        HeatKernelWalkTaylor(g, SingleNodeSeed(g, 0), 3.0, 1e-12, &diag);
    return Outcome{diag.status, AllFinite(rho)};
  }});

  scenarios.push_back({"lazy_walk", {"lazy_walk/"}, [] {
    const Graph g = CavemanGraph(3, 8);
    LazyWalkOptions options;
    options.steps = 12;
    SolverDiagnostics diag;
    const Vector out = LazyWalk(g, SingleNodeSeed(g, 0), options, &diag);
    return Outcome{diag.status, AllFinite(out)};
  }});

  scenarios.push_back({"push", {"push/"}, [] {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(kGenerousArcs);
    PushOptions options;
    options.budget = &budget;
    const PushResult r = ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
    return Outcome{r.diagnostics.status,
                   AllFinite(r.p) && AllFinite(r.residual)};
  }});

  scenarios.push_back({"hkrelax", {"hkrelax/"}, [] {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(kGenerousArcs);
    HkRelaxOptions options;
    options.budget = &budget;
    const HkRelaxResult r = HeatKernelRelax(g, 0, options);
    return Outcome{r.diagnostics.status, AllFinite(r.rho)};
  }});

  scenarios.push_back({"nibble", {"nibble/"}, [] {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(kGenerousArcs);
    NibbleOptions options;
    options.budget = &budget;
    const NibbleResult r = Nibble(g, 0, options);
    return Outcome{r.diagnostics.status, AllFinite(r.distribution)};
  }});

  scenarios.push_back({"maxflow", {"maxflow/"}, [] {
    FlowNetwork network(4);
    network.AddEdge(0, 1, 1.0);
    network.AddEdge(0, 2, 1.0);
    network.AddEdge(1, 2, 1.0);
    network.AddEdge(1, 3, 1.0);
    network.AddEdge(2, 3, 1.0);
    WorkBudget budget(kGenerousArcs);
    const double flow = network.MaxFlow(0, 3, &budget);
    return Outcome{network.Diagnostics().status, std::isfinite(flow)};
  }});

  scenarios.push_back({"multilevel", {"multilevel/"}, [] {
    const Graph g = GridGraph(16, 16);
    WorkBudget budget(kGenerousArcs);
    MultilevelOptions options;
    options.budget = &budget;
    const MultilevelResult r = MultilevelBisection(g, options);
    return Outcome{r.diagnostics.status,
                   !r.set.empty() && std::isfinite(r.cut)};
  }});

  scenarios.push_back({"kway", {"kway/"}, [] {
    const Graph g = GridGraph(12, 12);
    WorkBudget budget(kGenerousArcs);
    KwayOptions options;
    options.bisection.budget = &budget;
    const KwayResult r = KwayPartition(g, 4, options);
    bool complete = r.part.size() == static_cast<std::size_t>(g.NumNodes());
    for (const int block : r.part) {
      complete = complete && block >= 0 && block < 4;
    }
    return Outcome{r.diagnostics.status, complete};
  }});

  scenarios.push_back({"ncp_walk", {"ncp/walk"}, [] {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(kGenerousArcs);
    WalkFamilyOptions options;
    options.num_seeds = 4;
    options.checkpoints = {2, 4, 8};
    options.budget = &budget;
    SolverDiagnostics diag;
    WalkFamilyClusters(g, options, &diag);
    return Outcome{diag.status, true};
  }});

  scenarios.push_back({"ncp_spectral", {"ncp/spectral"}, [] {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(kGenerousArcs);
    SpectralFamilyOptions options;
    options.num_seeds = 4;
    options.alphas = {0.1};
    options.epsilons = {1e-2, 1e-3};
    options.budget = &budget;
    SolverDiagnostics diag;
    SpectralFamilyClusters(g, options, &diag);
    return Outcome{diag.status, true};
  }});

  scenarios.push_back({"load", {"load/", "service/admission"}, [] {
    // The serving-tier workload path: generation (interarrival site),
    // admission (budget site), and the harness clock (latency site).
    // Cache disabled so the unowned service/cache_insert site — armed
    // by its own dedicated test below — stays out of this sweep, and
    // an unlimited pool so the healthy run admits everything exact.
    const Graph g = CavemanGraph(3, 8);
    WorkloadOptions options;
    options.seed = 13;
    options.num_requests = 24;
    options.batch_size = 6;
    options.epsilon = 1e-4;
    options.tenants = {"a"};
    const Workload workload = GenerateWorkload(options, g.NumNodes());
    QueryEngine::Options engine_options;
    engine_options.enable_cache = false;
    engine_options.admission.enabled = true;
    QueryEngine engine(g, engine_options);
    const LoadStats stats = RunLoadWorkload(engine, workload);
    bool finite = std::isfinite(stats.mean_ns) && std::isfinite(stats.p99_ns);
    for (const ResponseDigest& digest : stats.digests) {
      finite = finite && std::isfinite(digest.checksum);
    }
    return Outcome{stats.status, finite};
  }});

  scenarios.push_back({"ncp_flow", {"ncp/flow"}, [] {
    const Graph g = CavemanGraph(3, 8);
    WorkBudget budget(kGenerousArcs);
    FlowFamilyOptions options;
    options.fractions = {0.25, 0.5};
    options.budget = &budget;
    SolverDiagnostics diag;
    FlowFamilyClusters(g, options, &diag);
    return Outcome{diag.status, true};
  }});

  scenarios.push_back({"durability", {"wal/", "snapshot/"}, [] {
    // The durability pipeline end to end: append to the WAL, read it
    // back, replay onto the graph, snapshot, reload. A fault at any of
    // the six wal/* and snapshot/* sites must surface as a non-usable
    // status with nothing poisoned — a rejected record, a torn tail
    // kept to its certified prefix, an unpublished snapshot.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "impreg_robustness_durability";
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);
    const std::string wal_path = (dir / "wal.log").string();
    const std::string snap_dir = (dir / "snapshots").string();

    SolveStatus status = SolveStatus::kConverged;
    {
      durability::WriteAheadLog wal;
      status = MergeStatus(status, wal.Open(wal_path, {}));
      if (wal.is_open()) {
        status = MergeStatus(status, wal.AppendAddEdge(0, 7, 1.0));
        status = MergeStatus(status, wal.AppendAddEdge(1, 8, 0.5));
      }
    }
    const durability::WalReadResult read = durability::ReadWal(wal_path);
    status = MergeStatus(status, read.status);
    DynamicGraph replayed = DynamicGraph::FromGraph(CavemanGraph(2, 6));
    const durability::WalReplayResult replay =
        durability::ReplayWal(read.entries, 0, &replayed);
    status = MergeStatus(status, replay.status);
    const durability::SnapshotWriteResult written = durability::WriteSnapshot(
        snap_dir, static_cast<std::int64_t>(read.entries.size()), replayed,
        {});
    status = MergeStatus(status, written.status);
    bool finite = std::isfinite(replayed.TotalVolume());
    if (written.status == SolveStatus::kConverged) {
      const durability::SnapshotLoadResult loaded =
          durability::LoadSnapshot(written.path);
      status = MergeStatus(status, loaded.status);
      finite = finite && std::isfinite(loaded.data.graph.TotalVolume());
    }
    return Outcome{status, finite};
  }});

  scenarios.push_back({"reorder", {"graph/reorder"}, [] {
    // A corrupted relabeling permutation must be rejected at build time
    // (identity fallback), never applied: the push still runs, on the
    // original labeling, and stays finite.
    const Graph g = CavemanGraph(4, 8);
    const ReorderedGraph rg(g, ReorderMethod::kRcm);
    const PushResult r = ApproximatePageRank(rg, SingleNodeSeed(g, 0));
    return Outcome{rg.diagnostics().status,
                   AllFinite(r.p) && AllFinite(r.residual)};
  }});

  return scenarios;
}

TEST(RobustnessTest, EveryFaultSiteDegradesGracefully) {
  if (!fault::Compiled()) {
    GTEST_SKIP() << "fault harness not compiled (IMPREG_FAULT_INJECTION=OFF)";
  }
  std::set<std::string> recorded_all;
  std::set<std::string> armed_all;
  for (const Scenario& scenario : AllScenarios()) {
    fault::Disarm();
    fault::StartRecording();
    const Outcome healthy = scenario.run();
    const std::vector<std::string> sites = fault::StopRecording();
    EXPECT_EQ(healthy.status, SolveStatus::kConverged) << scenario.name;
    EXPECT_TRUE(healthy.finite) << scenario.name;
    recorded_all.insert(sites.begin(), sites.end());

    std::vector<std::string> owned;
    for (const std::string& site : sites) {
      if (Owns(scenario, site)) owned.push_back(site);
    }
    EXPECT_FALSE(owned.empty())
        << scenario.name << ": healthy run reached no owned fault site";

    for (const std::string& site : owned) {
      const fault::FaultKind kind = IsBudgetSite(site)
                                        ? fault::FaultKind::kBudget
                                        : fault::FaultKind::kNaN;
      fault::Arm(site, kind);
      const Outcome faulted = scenario.run();
      EXPECT_GT(fault::InjectionCount(), 0)
          << scenario.name << " @ " << site << ": trigger never fired";
      EXPECT_NE(faulted.status, SolveStatus::kConverged)
          << scenario.name << " @ " << site
          << ": injected fault went unreported";
      EXPECT_TRUE(faulted.finite)
          << scenario.name << " @ " << site << ": poison leaked into output";
      armed_all.insert(site);
      fault::Disarm();
    }
  }
  // Every site any scenario passed through must have been exercised by
  // the scenario that owns it — a site reachable only through a
  // composite driver would otherwise silently escape the sweep.
  for (const std::string& site : recorded_all) {
    EXPECT_TRUE(armed_all.count(site) > 0)
        << "fault site " << site << " recorded but never injected; "
        << "add it to a scenario's prefixes";
  }
}

TEST(RobustnessTest, MqiKeepsSetWhenInnerMaxflowIsPoisoned) {
  if (!fault::Compiled()) {
    GTEST_SKIP() << "fault harness not compiled (IMPREG_FAULT_INJECTION=OFF)";
  }
  const Graph g = CavemanGraph(2, 8);
  std::vector<NodeId> set;
  for (NodeId u = 0; u < 8; ++u) set.push_back(u);
  fault::Arm("maxflow/pushed", fault::FaultKind::kNaN);
  const MqiResult r = Mqi(g, set);
  fault::Disarm();
  // A non-maximal flow certifies nothing: MQI must keep the set from
  // the completed rounds and surface the inner failure.
  EXPECT_NE(r.diagnostics.status, SolveStatus::kConverged);
  EXPECT_FALSE(r.diagnostics.usable());
  EXPECT_FALSE(r.set.empty());
  EXPECT_LE(r.stats.conductance, Conductance(g, set) + 1e-12);
}

TEST(RobustnessTest, PoisonedCacheInsertIsRejectedAndNeverServed) {
  if (!fault::Compiled()) {
    GTEST_SKIP() << "fault harness not compiled (IMPREG_FAULT_INJECTION=OFF)";
  }
  const Graph g = CavemanGraph(4, 8);
  QueryEngine engine(g);
  Query query;
  query.seeds = {0};
  query.epsilon = 1e-5;

  fault::Arm("service/cache_insert", fault::FaultKind::kNaN);
  const QueryResponse first = engine.Run(query);
  EXPECT_GT(fault::InjectionCount(), 0) << "cache_insert site never fired";
  fault::Disarm();

  // The response was materialized before the insert, so the caller's
  // answer is clean; the poisoned payload must be rejected at the
  // cache boundary — dropped, never cached, never served.
  EXPECT_TRUE(AllFinite(first.scores));
  EXPECT_EQ(first.source, QuerySource::kCold);
  EXPECT_EQ(engine.cache().stats().rejected, 1);
  EXPECT_EQ(engine.cache().Size(), 0u);

  // A repeat of the same query cold-solves (no poisoned hit) and
  // reproduces the original answer bitwise.
  const QueryResponse second = engine.Run(query);
  EXPECT_EQ(second.source, QuerySource::kCold);
  EXPECT_EQ(second.scores, first.scores);
  EXPECT_EQ(engine.cache().Size(), 1u);
}

TEST(RobustnessTest, CorruptedPermutationIsRejectedNotServed) {
  if (!fault::Compiled()) {
    GTEST_SKIP() << "fault harness not compiled (IMPREG_FAULT_INJECTION=OFF)";
  }
  const Graph g = CavemanGraph(4, 8);
  const Vector seed = SingleNodeSeed(g, 3);
  const PushResult expected = ApproximatePageRank(g, seed);

  fault::Arm("graph/reorder_permutation", fault::FaultKind::kNaN);
  const ReorderedGraph rg(g, ReorderMethod::kRcm);
  EXPECT_GT(fault::InjectionCount(), 0) << "permutation site never fired";
  fault::Disarm();

  // Validation must catch the poisoned permutation and fall back to the
  // original labeling — marked, never silently mislabeled.
  EXPECT_FALSE(rg.active());
  EXPECT_EQ(rg.diagnostics().status, SolveStatus::kNonFinite);
  EXPECT_EQ(&rg.graph(), &g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(rg.ToReordered(u), u);
    EXPECT_EQ(rg.ToOriginal(u), u);
  }

  // Serving through the rejected wrapper reproduces the plain answer
  // bitwise — the fallback is the original computation, not a degraded
  // variant.
  const PushResult served = ApproximatePageRank(rg, seed);
  ASSERT_EQ(served.p.size(), expected.p.size());
  for (std::size_t i = 0; i < served.p.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(served.p[i]),
              std::bit_cast<std::uint64_t>(expected.p[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(served.residual[i]),
              std::bit_cast<std::uint64_t>(expected.residual[i]));
  }

  // A clean rebuild succeeds and reorders for real.
  const ReorderedGraph clean(g, ReorderMethod::kRcm);
  EXPECT_TRUE(clean.active());
  EXPECT_EQ(clean.diagnostics().status, SolveStatus::kConverged);
}

// Runs in every build (no injection needed): a pre-exhausted budget
// must stop each driver at its first chunk boundary and still produce
// a complete, valid answer.
TEST(RobustnessTest, RealBudgetExhaustionDegradesGracefully) {
  {
    const Graph g = GridGraph(16, 16);
    WorkBudget budget(1);
    budget.Charge(10);  // Exhausted at the first boundary check.
    MultilevelOptions options;
    options.budget = &budget;
    const MultilevelResult r = MultilevelBisection(g, options);
    EXPECT_EQ(r.diagnostics.status, SolveStatus::kBudgetExhausted);
    EXPECT_FALSE(r.set.empty());
    EXPECT_TRUE(std::isfinite(r.cut));
  }
  {
    const Graph g = GridGraph(12, 12);
    WorkBudget budget(1);
    budget.Charge(10);
    KwayOptions options;
    options.bisection.budget = &budget;
    const KwayResult r = KwayPartition(g, 4, options);
    EXPECT_EQ(r.diagnostics.status, SolveStatus::kBudgetExhausted);
    ASSERT_EQ(r.part.size(), static_cast<std::size_t>(g.NumNodes()));
    for (const int block : r.part) {
      EXPECT_GE(block, 0);
      EXPECT_LT(block, 4);
    }
  }
  {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(1);
    budget.Charge(10);
    NibbleOptions options;
    options.budget = &budget;
    const NibbleResult r = Nibble(g, 0, options);
    EXPECT_EQ(r.diagnostics.status, SolveStatus::kBudgetExhausted);
    EXPECT_TRUE(AllFinite(r.distribution));
  }
  {
    const Graph g = CavemanGraph(4, 8);
    WorkBudget budget(1);
    budget.Charge(10);
    PushOptions options;
    options.budget = &budget;
    const PushResult r = ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
    EXPECT_EQ(r.diagnostics.status, SolveStatus::kBudgetExhausted);
    EXPECT_TRUE(AllFinite(r.p));
    EXPECT_TRUE(AllFinite(r.residual));
  }
  {
    FlowNetwork network(4);
    network.AddEdge(0, 1, 1.0);
    network.AddEdge(1, 3, 1.0);
    WorkBudget budget(1);
    budget.Charge(10);
    const double flow = network.MaxFlow(0, 3, &budget);
    EXPECT_EQ(network.Diagnostics().status, SolveStatus::kBudgetExhausted);
    EXPECT_TRUE(std::isfinite(flow));
  }
}

}  // namespace
}  // namespace impreg
