// The SIMD dispatch layer (linalg/simd): scalar and AVX2 kernels must
// compute the *same canonical reduction tree* — bit-identical doubles
// for every size, tail length, and index pattern — and the dispatch
// switches (forced level, IMPREG_SIMD env, per-kernel-class defaults)
// must never change a result, only which implementation computes it.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/impreg.h"

namespace impreg {
namespace {

using simd::SimdKernel;
using simd::SimdLevel;

void ExpectSameBits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

std::vector<double> RandomDoubles(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextGaussian();
  return x;
}

std::vector<std::int32_t> RandomIndices(std::int64_t len, std::int32_t n,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> heads(len);
  for (std::int32_t& h : heads) {
    h = static_cast<std::int32_t>(rng.NextBounded(n));
  }
  return heads;
}

// Sizes straddling every tail case (n mod 4 ∈ {0,1,2,3}) and a few
// larger ones so the AVX2 main loops run many iterations.
const std::int64_t kSizes[] = {0, 1, 2, 3, 4,  5,  6,   7,   8,
                               9, 12, 13, 31, 64, 100, 255, 1024};

TEST(SimdTest, DotRangeScalarAndAvx2AreBitIdentical) {
  for (std::int64_t n : kSizes) {
    SCOPED_TRACE(n);
    const std::vector<double> x = RandomDoubles(n, 7 + n);
    const std::vector<double> y = RandomDoubles(n, 19 + n);
    const double scalar = simd::DotRangeScalar(x.data(), y.data(), n);
    const double avx2 = simd::DotRangeAvx2(x.data(), y.data(), n);
    ExpectSameBits(scalar, avx2);
    // The dispatch wrapper routes to the same implementations.
    ExpectSameBits(simd::DotRange(SimdLevel::kScalar, x.data(), y.data(), n),
                   scalar);
    ExpectSameBits(simd::DotRange(SimdLevel::kAvx2, x.data(), y.data(), n),
                   scalar);
  }
}

TEST(SimdTest, AxpyRangeScalarAndAvx2AreBitIdentical) {
  for (std::int64_t n : kSizes) {
    SCOPED_TRACE(n);
    const std::vector<double> x = RandomDoubles(n, 3 + n);
    const double a = 0.7071067811865476;
    std::vector<double> ys = RandomDoubles(n, 11 + n);
    std::vector<double> yv = ys;
    simd::AxpyRangeScalar(a, x.data(), ys.data(), n);
    simd::AxpyRangeAvx2(a, x.data(), yv.data(), n);
    for (std::int64_t i = 0; i < n; ++i) ExpectSameBits(ys[i], yv[i]);
  }
}

TEST(SimdTest, RowTreeScalarAndAvx2AreBitIdentical) {
  const std::int32_t kNodes = 512;
  const std::vector<double> x = RandomDoubles(kNodes, 23);
  for (std::int64_t len : kSizes) {
    SCOPED_TRACE(len);
    const std::vector<std::int32_t> heads = RandomIndices(len, kNodes, 5 + len);
    const std::vector<double> w = RandomDoubles(len, 29 + len);
    const double scalar =
        simd::RowTreeScalar(heads.data(), w.data(), len, x.data());
    const double avx2 =
        simd::RowTreeAvx2(heads.data(), w.data(), len, x.data());
    ExpectSameBits(scalar, avx2);
  }
}

TEST(SimdTest, RowTreeHandlesRepeatedAndClusteredIndices) {
  // Gathers with duplicate indices (self-loops, multi-arcs after
  // permutation) and fully clustered ones must agree too.
  const std::vector<double> x = RandomDoubles(16, 41);
  const std::vector<std::int32_t> heads = {3, 3, 3, 3, 0, 15, 0, 15, 7};
  const std::int64_t len = static_cast<std::int64_t>(heads.size());
  const std::vector<double> w = RandomDoubles(len, 43);
  ExpectSameBits(simd::RowTreeScalar(heads.data(), w.data(), len, x.data()),
                 simd::RowTreeAvx2(heads.data(), w.data(), len, x.data()));
}

TEST(SimdTest, RowTree4ScalarAndAvx2AreBitIdentical) {
  const std::int32_t kNodes = 256;
  std::vector<std::vector<double>> columns;
  const double* xs[4];
  for (int j = 0; j < 4; ++j) {
    columns.push_back(RandomDoubles(kNodes, 61 + j));
    xs[j] = columns.back().data();
  }
  for (std::int64_t len : kSizes) {
    SCOPED_TRACE(len);
    const std::vector<std::int32_t> heads =
        RandomIndices(len, kNodes, 67 + len);
    const std::vector<double> w = RandomDoubles(len, 71 + len);
    double out_scalar[4], out_avx2[4];
    simd::RowTree4Scalar(heads.data(), w.data(), len, xs, out_scalar);
    simd::RowTree4Avx2(heads.data(), w.data(), len, xs, out_avx2);
    for (int j = 0; j < 4; ++j) {
      SCOPED_TRACE(j);
      ExpectSameBits(out_scalar[j], out_avx2[j]);
      // Each column equals its single-vector tree.
      ExpectSameBits(out_scalar[j],
                     simd::RowTreeScalar(heads.data(), w.data(), len, xs[j]));
    }
  }
}

TEST(SimdTest, ForcedLevelOverridesEveryKernelClass) {
  {
    const simd::ScopedSimdLevel scoped(SimdLevel::kScalar);
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), SimdLevel::kScalar);
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kRowGather),
              SimdLevel::kScalar);
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kRowBlock4),
              SimdLevel::kScalar);
    EXPECT_EQ(simd::ActiveSimdLevel(), SimdLevel::kScalar);
  }
  if (simd::Avx2Supported()) {
    const simd::ScopedSimdLevel scoped(SimdLevel::kAvx2);
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), SimdLevel::kAvx2);
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kRowGather), SimdLevel::kAvx2);
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kRowBlock4), SimdLevel::kAvx2);
  }
}

TEST(SimdTest, ForcingAvx2WithoutSupportClampsToScalar) {
  if (simd::Avx2Supported()) GTEST_SKIP() << "AVX2 available on this machine";
  const simd::ScopedSimdLevel scoped(SimdLevel::kAvx2);
  EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), SimdLevel::kScalar);
}

TEST(SimdTest, ScopedLevelNestsAndRestores) {
  const SimdLevel ambient_dense = simd::ActiveSimdLevel(SimdKernel::kDense);
  const SimdLevel ambient_gather =
      simd::ActiveSimdLevel(SimdKernel::kRowGather);
  {
    const simd::ScopedSimdLevel outer(SimdLevel::kScalar);
    ASSERT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), SimdLevel::kScalar);
    if (simd::Avx2Supported()) {
      const simd::ScopedSimdLevel inner(SimdLevel::kAvx2);
      EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), SimdLevel::kAvx2);
    }
    EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), SimdLevel::kScalar);
  }
  EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kDense), ambient_dense);
  EXPECT_EQ(simd::ActiveSimdLevel(SimdKernel::kRowGather), ambient_gather);
}

TEST(SimdTest, DefaultDispatchIsPerKernelClass) {
  // Without a forced level or env override, the row gather defaults to
  // scalar (irregular loads lose on the measured cores) while the dense
  // and block kernels take AVX2 when available. An IMPREG_SIMD env
  // override legitimately changes this, so only pin the invariants that
  // hold either way.
  simd::ResetSimdLevel();
  const SimdLevel dense = simd::ActiveSimdLevel(SimdKernel::kDense);
  const SimdLevel gather = simd::ActiveSimdLevel(SimdKernel::kRowGather);
  const SimdLevel block = simd::ActiveSimdLevel(SimdKernel::kRowBlock4);
  if (!simd::Avx2Supported()) {
    EXPECT_EQ(dense, SimdLevel::kScalar);
    EXPECT_EQ(gather, SimdLevel::kScalar);
    EXPECT_EQ(block, SimdLevel::kScalar);
  } else {
    // Dense and block always share a default; the gather is never
    // *more* vectorized than they are.
    EXPECT_EQ(dense, block);
    EXPECT_TRUE(gather == SimdLevel::kScalar || gather == dense);
  }
  EXPECT_EQ(simd::ActiveSimdLevel(), dense);
}

TEST(SimdTest, LevelNamesAreStable) {
  EXPECT_STREQ(simd::SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdTest, VectorOpsMatchUnderBothLevels) {
  // End to end through vector_ops: Dot/Axpy under forced scalar and
  // forced AVX2 give bit-identical results (on top of the per-chunk
  // kernel checks above, this covers the parallel chunk fold).
  const Vector x = [] {
    Rng rng(97);
    Vector v(100000);
    for (double& e : v) e = rng.NextGaussian();
    return v;
  }();
  const Vector y = [] {
    Rng rng(101);
    Vector v(100000);
    for (double& e : v) e = rng.NextGaussian();
    return v;
  }();
  double dot_scalar, dot_avx2;
  Vector axpy_scalar, axpy_avx2;
  {
    const simd::ScopedSimdLevel scoped(SimdLevel::kScalar);
    dot_scalar = Dot(x, y);
    axpy_scalar = y;
    Axpy(0.25, x, axpy_scalar);
  }
  {
    const simd::ScopedSimdLevel scoped(SimdLevel::kAvx2);
    dot_avx2 = Dot(x, y);
    axpy_avx2 = y;
    Axpy(0.25, x, axpy_avx2);
  }
  ExpectSameBits(dot_scalar, dot_avx2);
  ASSERT_EQ(axpy_scalar.size(), axpy_avx2.size());
  for (std::size_t i = 0; i < axpy_scalar.size(); ++i) {
    ExpectSameBits(axpy_scalar[i], axpy_avx2[i]);
  }
}

TEST(SimdTest, OperatorApplyMatchesUnderBothLevels) {
  // The CSR kernels end to end: SpMV and the 4-column SpMM block under
  // forced scalar vs forced AVX2, on a graph with self-loops and skewed
  // degrees.
  Rng rng(13);
  const Graph g = BarabasiAlbert(4000, 5, rng);
  const NormalizedLaplacianOperator laplacian(g);
  const LazyWalkOperator walk(g, 0.5);
  const Vector x = [&] {
    Rng r(17);
    Vector v(g.NumNodes());
    for (double& e : v) e = r.NextGaussian();
    return v;
  }();
  std::vector<Vector> batch;
  for (int j = 0; j < 6; ++j) {
    Rng r(23 + j);
    Vector v(g.NumNodes());
    for (double& e : v) e = r.NextGaussian();
    batch.push_back(std::move(v));
  }
  Vector spmv_scalar, spmv_avx2;
  std::vector<Vector> spmm_scalar, spmm_avx2;
  {
    const simd::ScopedSimdLevel scoped(SimdLevel::kScalar);
    spmv_scalar = laplacian.Apply(x);
    spmm_scalar = walk.ApplyBatch(batch);
  }
  {
    const simd::ScopedSimdLevel scoped(SimdLevel::kAvx2);
    spmv_avx2 = laplacian.Apply(x);
    spmm_avx2 = walk.ApplyBatch(batch);
  }
  ASSERT_EQ(spmv_scalar.size(), spmv_avx2.size());
  for (std::size_t i = 0; i < spmv_scalar.size(); ++i) {
    ExpectSameBits(spmv_scalar[i], spmv_avx2[i]);
  }
  ASSERT_EQ(spmm_scalar.size(), spmm_avx2.size());
  for (std::size_t j = 0; j < spmm_scalar.size(); ++j) {
    for (std::size_t i = 0; i < spmm_scalar[j].size(); ++i) {
      ExpectSameBits(spmm_scalar[j][i], spmm_avx2[j][i]);
    }
  }
}

}  // namespace
}  // namespace impreg
