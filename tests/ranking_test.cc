#include "ranking/centrality.h"
#include "ranking/compare.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(EigenvectorCentralityTest, StarConcentratesOnHub) {
  const Graph g = StarGraph(9);
  const Vector c = EigenvectorCentrality(g);
  for (NodeId u = 1; u < 9; ++u) EXPECT_GT(c[0], c[u]);
  // Star Perron vector: hub = sqrt(n-1) × leaf.
  EXPECT_NEAR(c[0] / c[1], std::sqrt(8.0), 1e-6);
  EXPECT_NEAR(Sum(c), 1.0, 1e-12);
}

TEST(EigenvectorCentralityTest, RegularGraphIsUniform) {
  const Graph g = CycleGraph(11);
  const Vector c = EigenvectorCentrality(g);
  for (NodeId u = 0; u < 11; ++u) EXPECT_NEAR(c[u], 1.0 / 11.0, 1e-8);
}

TEST(SpectralRadiusTest, KnownValues) {
  EXPECT_NEAR(AdjacencySpectralRadius(CompleteGraph(7)), 6.0, 1e-8);
  EXPECT_NEAR(AdjacencySpectralRadius(CycleGraph(10)), 2.0, 1e-6);
  EXPECT_NEAR(AdjacencySpectralRadius(StarGraph(17)), 4.0, 1e-8);
}

TEST(KatzTest, SmallBetaApproachesDegreeRanking) {
  Rng rng(1);
  const Graph g = BarabasiAlbert(300, 3, rng);
  const double radius = AdjacencySpectralRadius(g);
  const Vector katz = KatzCentrality(g, 0.01 / radius);
  const Vector degree = DegreeCentrality(g);
  // τ-a penalizes the (many) degree ties of a BA graph, so the global
  // correlation is checked loosely and the (tie-free) hub ranking
  // strictly.
  EXPECT_GT(KendallTau(katz, degree), 0.75);
  EXPECT_GE(TopKOverlap(katz, degree, 20), 0.9);
}

TEST(KatzTest, LargeBetaApproachesEigenvectorCentrality) {
  Rng rng(2);
  const Graph g = BarabasiAlbert(300, 3, rng);
  const double radius = AdjacencySpectralRadius(g);
  const Vector katz = KatzCentrality(g, 0.95 / radius);
  const Vector eig = EigenvectorCentrality(g);
  EXPECT_GT(KendallTau(katz, eig), 0.95);
}

TEST(KatzTest, MonotonePathBetweenTheEnds) {
  // The regularization path: Kendall correlation with eigenvector
  // centrality increases with beta.
  Rng rng(3);
  const Graph g = BarabasiAlbert(200, 2, rng);
  const double radius = AdjacencySpectralRadius(g);
  const Vector eig = EigenvectorCentrality(g);
  double previous = -1.0;
  for (double frac : {0.05, 0.3, 0.6, 0.9}) {
    const double tau = KendallTau(KatzCentrality(g, frac / radius), eig);
    EXPECT_GE(tau, previous - 0.02) << "frac " << frac;
    previous = tau;
  }
}

TEST(KatzTest, DivergentBetaDies) {
  const Graph g = CompleteGraph(6);  // λ_max = 5.
  EXPECT_DEATH(KatzCentrality(g, 0.5), "diverges|converge");
}

TEST(DegreeCentralityTest, SumsToOne) {
  const Graph g = StarGraph(5);
  const Vector c = DegreeCentrality(g);
  EXPECT_NEAR(Sum(c), 1.0, 1e-14);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
}

TEST(RanksOfTest, DescendingWithIndexTieBreak) {
  const std::vector<int> ranks = RanksOf({0.5, 0.9, 0.5, 0.1});
  EXPECT_EQ(ranks[1], 0);
  EXPECT_EQ(ranks[0], 1);  // Tie with item 2, lower index wins.
  EXPECT_EQ(ranks[2], 2);
  EXPECT_EQ(ranks[3], 3);
}

TEST(KendallTauTest, PerfectAgreementAndReversal) {
  const Vector a = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(KendallTau(a, a), 1.0);
  const Vector reversed = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(KendallTau(a, reversed), -1.0);
}

TEST(KendallTauTest, KnownPartialAgreement) {
  // Permutation (0,1,2,3)→(1,0,2,3) has 1 inversion of 6 pairs:
  // tau = 1 − 2/6 = 2/3.
  const Vector a = {4.0, 3.0, 2.0, 1.0};
  const Vector b = {3.0, 4.0, 2.0, 1.0};
  EXPECT_NEAR(KendallTau(a, b), 2.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(30));
    Vector a(n), b(n);
    for (double& v : a) v = rng.NextDouble();
    for (double& v : b) v = rng.NextDouble();
    // Brute force over pairs.
    const std::vector<int> ra = RanksOf(a);
    const std::vector<int> rb = RanksOf(b);
    std::int64_t concordant = 0, discordant = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const bool same = (ra[i] < ra[j]) == (rb[i] < rb[j]);
        (same ? concordant : discordant) += 1;
      }
    }
    const double expected =
        static_cast<double>(concordant - discordant) /
        (static_cast<double>(n) * (n - 1) / 2);
    EXPECT_NEAR(KendallTau(a, b), expected, 1e-12);
  }
}

TEST(TopKOverlapTest, Basics) {
  const Vector a = {5.0, 4.0, 3.0, 2.0, 1.0};
  const Vector b = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(TopKOverlap(a, a, 3), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 2), 0.0);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 5), 1.0);
  // Top-3 of a = {0,1,2}; of b = {2,3,4}; overlap {2}.
  EXPECT_NEAR(TopKOverlap(a, b, 3), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace impreg
