#include "partition/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "partition/conductance.h"

namespace impreg {
namespace {

// Property test: the sweep cut of the exact v₂ satisfies both sides of
// the Cheeger inequality λ₂/2 ≤ φ(G) ≤ φ(sweep) ≤ √(2 λ₂).
class CheegerPropertyTest : public testing::TestWithParam<int> {
 protected:
  Graph MakeGraph() const {
    Rng rng(GetParam());
    switch (GetParam() % 6) {
      case 0:
        return PathGraph(24);
      case 1:
        return CycleGraph(30);
      case 2:
        return CavemanGraph(4, 6);
      case 3:
        return GridGraph(5, 8);
      case 4:
        return CockroachGraph(6);
      default: {
        Graph g = ErdosRenyi(60, 0.12, rng);
        while (!IsConnectedEnough(g)) g = ErdosRenyi(60, 0.12, rng);
        return g;
      }
    }
  }

 private:
  static bool IsConnectedEnough(const Graph& g) {
    // Require a connected graph so λ₂ > 0.
    std::vector<char> seen(g.NumNodes(), 0);
    std::vector<NodeId> stack = {0};
    seen[0] = 1;
    NodeId count = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Arc& arc : g.Neighbors(u)) {
        if (!seen[arc.head]) {
          seen[arc.head] = 1;
          ++count;
          stack.push_back(arc.head);
        }
      }
    }
    return count == g.NumNodes();
  }
};

TEST_P(CheegerPropertyTest, SweepCutSatisfiesCheeger) {
  const Graph g = MakeGraph();
  const SpectralPartitionResult result = SpectralPartition(g);
  EXPECT_GT(result.lambda2, 0.0);
  ASSERT_FALSE(result.set.empty());
  // Upper bound: the sweep cut is quadratically good.
  EXPECT_LE(result.stats.conductance, result.cheeger_upper + 1e-9);
  // Lower bound: no cut beats λ₂/2, in particular not this one.
  EXPECT_GE(result.stats.conductance, result.cheeger_lower - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Families, CheegerPropertyTest,
                         testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11));

TEST(SpectralTest, DumbbellRecoversClique) {
  const Graph g = DumbbellGraph(8, 2);
  const SpectralPartitionResult result = SpectralPartition(g);
  // The bridge cut: conductance ≈ 1/vol(clique side).
  EXPECT_LT(result.stats.conductance, 0.05);
  // One side should contain a whole clique.
  EXPECT_GE(result.set.size(), 8u);
}

TEST(SpectralTest, CavemanSeparatesCliques) {
  const Graph g = CavemanGraph(2, 10);
  const SpectralPartitionResult result = SpectralPartition(g);
  EXPECT_EQ(result.set.size(), 10u);  // Exactly one clique.
  EXPECT_DOUBLE_EQ(result.stats.cut, 1.0);
}

TEST(SpectralTest, Lambda2MatchesAnalyticCycle) {
  const int n = 20;
  const SpectralPartitionResult result = SpectralPartition(CycleGraph(n));
  EXPECT_NEAR(result.lambda2, 1.0 - std::cos(2.0 * M_PI / n), 1e-8);
}

TEST(SpectralTest, CompleteGraphLambda2) {
  const int n = 12;
  const SpectralPartitionResult result = SpectralPartition(CompleteGraph(n));
  EXPECT_NEAR(result.lambda2, n / (n - 1.0), 1e-8);
}

TEST(SpectralTest, DisconnectedGraphHasZeroLambda2AndPerfectCut) {
  GraphBuilder builder(8);
  for (NodeId u = 0; u < 3; ++u) builder.AddEdge(u, (u + 1) % 4);
  builder.AddEdge(3, 0);
  for (NodeId u = 4; u < 7; ++u) builder.AddEdge(u, u + 1);
  builder.AddEdge(7, 4);
  const Graph g = builder.Build();
  const SpectralPartitionResult result = SpectralPartition(g);
  EXPECT_NEAR(result.lambda2, 0.0, 1e-8);
  EXPECT_NEAR(result.stats.conductance, 0.0, 1e-9);
  EXPECT_EQ(result.set.size(), 4u);  // One component.
}

TEST(SpectralTest, StringyGraphsSaturateTheUpperCheegerBound) {
  // §3.2: the quadratic factor "is obtained for spectral methods on
  // graphs with long stringy pieces". Quantitatively: on paths/cycles/
  // ladders the sweep conductance sits near the *upper* bound √(2λ₂)
  // (so φ ≫ λ₂/2: the certificate is quadratically loose), whereas on
  // the complete graph the *lower* bound λ₂/2 is exactly tight.
  for (const Graph& g :
       {CycleGraph(64), PathGraph(64), LadderGraph(32), CockroachGraph(16)}) {
    const SpectralPartitionResult result = SpectralPartition(g);
    EXPECT_GT(result.stats.conductance, 0.15 * result.cheeger_upper);
    EXPECT_GT(result.stats.conductance, 4.0 * result.cheeger_lower);
  }
  // Complete graph: the balanced cut achieves λ₂/2 exactly.
  const SpectralPartitionResult complete = SpectralPartition(CompleteGraph(10));
  EXPECT_NEAR(complete.stats.conductance, complete.cheeger_lower, 1e-9);
}

TEST(SpectralTest, SweepHatVectorOnProvidedVector) {
  const Graph g = DumbbellGraph(5, 0);
  Vector x(g.NumNodes(), -1.0);
  for (NodeId u = 0; u < 5; ++u) x[u] = 1.0;
  const SpectralPartitionResult result = SweepHatVector(g, x);
  EXPECT_DOUBLE_EQ(result.stats.cut, 1.0);
  EXPECT_GT(result.lambda2, 0.0);  // Rayleigh quotient of x.
}

TEST(SpectralTest, EdgelessGraphDies) {
  GraphBuilder builder(3);
  EXPECT_DEATH(SpectralPartition(builder.Build()), "no edges");
}

}  // namespace
}  // namespace impreg
