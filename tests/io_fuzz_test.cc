// Deterministic mini-fuzz of the text parsers: arbitrary byte soup and
// structured-but-corrupted inputs must parse cleanly or return
// std::nullopt — never crash, hang, or produce an invalid Graph.

#include <string>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "util/rng.h"

namespace impreg {
namespace {

std::string RandomBytes(Rng& rng, int length) {
  std::string out;
  out.reserve(length);
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return out;
}

std::string RandomTokenSoup(Rng& rng, int tokens) {
  static const char* kTokens[] = {"0",  "1",    "-1", "2.5", "#",
                                  "%",  "nodes", "x",  "1e9", "999999",
                                  "\n", " ",     "\t", "-",   "3 4"};
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kTokens[rng.NextBounded(std::size(kTokens))];
    out += rng.NextBernoulli(0.3) ? "\n" : " ";
  }
  return out;
}

void CheckParsedGraphIsValid(const std::optional<Graph>& g) {
  if (!g.has_value()) return;
  // Whatever parsed must be internally consistent.
  double volume = 0.0;
  for (NodeId u = 0; u < g->NumNodes(); ++u) {
    for (const Arc& arc : g->Neighbors(u)) {
      ASSERT_TRUE(g->IsValidNode(arc.head));
      ASSERT_GT(arc.weight, 0.0);
    }
    volume += g->Degree(u);
  }
  EXPECT_NEAR(volume, g->TotalVolume(), 1e-9 * (1.0 + volume));
}

TEST(IoFuzzTest, EdgeListSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string junk = RandomBytes(rng, 1 + trial % 300);
    CheckParsedGraphIsValid(ParseEdgeList(junk));
  }
}

TEST(IoFuzzTest, EdgeListSurvivesTokenSoup) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    CheckParsedGraphIsValid(ParseEdgeList(RandomTokenSoup(rng, 1 + trial % 40)));
  }
}

TEST(IoFuzzTest, MetisSurvivesRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    CheckParsedGraphIsValid(ParseMetis(RandomBytes(rng, 1 + trial % 300)));
  }
}

TEST(IoFuzzTest, MetisSurvivesTokenSoup) {
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    CheckParsedGraphIsValid(ParseMetis(RandomTokenSoup(rng, 1 + trial % 40)));
  }
}

TEST(IoFuzzTest, CorruptedValidFilesRejectOrReparse) {
  // Take a valid edge list and flip one character at every position;
  // each variant must parse-or-reject, never crash.
  const std::string valid = "# nodes 6\n0 1\n1 2 2.5\n3 4\n4 5 0.25\n";
  Rng rng(5);
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    std::string corrupted = valid;
    corrupted[pos] = static_cast<char>('0' + rng.NextBounded(80));
    CheckParsedGraphIsValid(ParseEdgeList(corrupted));
  }
}

}  // namespace
}  // namespace impreg
