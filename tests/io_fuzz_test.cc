// Deterministic mini-fuzz of the text parsers: arbitrary byte soup and
// structured-but-corrupted inputs must parse cleanly or return
// std::nullopt — never crash, hang, or produce an invalid Graph.

#include <string>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "service/wire.h"
#include "util/rng.h"

namespace impreg {
namespace {

std::string RandomBytes(Rng& rng, int length) {
  std::string out;
  out.reserve(length);
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return out;
}

std::string RandomTokenSoup(Rng& rng, int tokens) {
  static const char* kTokens[] = {"0",  "1",    "-1", "2.5", "#",
                                  "%",  "nodes", "x",  "1e9", "999999",
                                  "\n", " ",     "\t", "-",   "3 4"};
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kTokens[rng.NextBounded(std::size(kTokens))];
    out += rng.NextBernoulli(0.3) ? "\n" : " ";
  }
  return out;
}

void CheckParsedGraphIsValid(const std::optional<Graph>& g) {
  if (!g.has_value()) return;
  // Whatever parsed must be internally consistent.
  double volume = 0.0;
  for (NodeId u = 0; u < g->NumNodes(); ++u) {
    for (const Arc& arc : g->Neighbors(u)) {
      ASSERT_TRUE(g->IsValidNode(arc.head));
      ASSERT_GT(arc.weight, 0.0);
    }
    volume += g->Degree(u);
  }
  EXPECT_NEAR(volume, g->TotalVolume(), 1e-9 * (1.0 + volume));
}

TEST(IoFuzzTest, EdgeListSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string junk = RandomBytes(rng, 1 + trial % 300);
    CheckParsedGraphIsValid(ParseEdgeList(junk));
  }
}

TEST(IoFuzzTest, EdgeListSurvivesTokenSoup) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    CheckParsedGraphIsValid(ParseEdgeList(RandomTokenSoup(rng, 1 + trial % 40)));
  }
}

TEST(IoFuzzTest, MetisSurvivesRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    CheckParsedGraphIsValid(ParseMetis(RandomBytes(rng, 1 + trial % 300)));
  }
}

TEST(IoFuzzTest, MetisSurvivesTokenSoup) {
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    CheckParsedGraphIsValid(ParseMetis(RandomTokenSoup(rng, 1 + trial % 40)));
  }
}

TEST(IoFuzzTest, NonFiniteWeightsAreRejected) {
  // `w <= 0` style filters are false for NaN — the parsers must test
  // the acceptance condition instead and reject every non-finite
  // spelling the number parser understands.
  for (const char* bad : {"nan", "NaN", "-nan", "inf", "Inf", "-inf",
                          "infinity", "1e999", "-1e999"}) {
    const std::string edge_list = std::string("0 1 ") + bad + "\n";
    EXPECT_FALSE(ParseEdgeList(edge_list).has_value()) << edge_list;
    const GraphParseResult parsed = ParseEdgeListOrError(edge_list);
    EXPECT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error_line, 1);
    EXPECT_FALSE(parsed.error.empty());

    const std::string metis =
        std::string("2 1 001\n2 ") + bad + "\n1 " + bad + "\n";
    EXPECT_FALSE(ParseMetis(metis).has_value()) << metis;
    const GraphParseResult metis_parsed = ParseMetisOrError(metis);
    EXPECT_FALSE(metis_parsed.ok());
    EXPECT_EQ(metis_parsed.error_line, 2);
  }
}

TEST(IoFuzzTest, TruncatedMetisHeadersAndBodies) {
  const std::string valid = "4 4\n2 3\n1 3\n1 2 4\n3\n";
  ASSERT_TRUE(ParseMetis(valid).has_value());
  // Every proper prefix must be rejected (missing node lines or arcs),
  // never crash or mis-parse. (The prefix missing only the final
  // newline is excluded: getline treats EOF as end-of-line, so it is
  // the same document.)
  for (std::size_t len = 0; len + 1 < valid.size(); ++len) {
    const std::string prefix = valid.substr(0, len);
    const GraphParseResult parsed = ParseMetisOrError(prefix);
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len;
    EXPECT_FALSE(parsed.error.empty());
  }
  // A header promising more nodes/arcs than the body delivers.
  EXPECT_FALSE(ParseMetis("5 4\n2 3\n1 3\n1 2 4\n3\n").has_value());
  EXPECT_FALSE(ParseMetis("4 9\n2 3\n1 3\n1 2 4\n3\n").has_value());
}

TEST(IoFuzzTest, ParseErrorsNameTheFailingLine) {
  const GraphParseResult bad_id = ParseEdgeListOrError("0 1\n2 -3\n4 5\n");
  EXPECT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.error_line, 2);

  const GraphParseResult huge_id =
      ParseEdgeListOrError("0 1\n1 99999999999\n");
  EXPECT_FALSE(huge_id.ok());
  EXPECT_EQ(huge_id.error_line, 2);

  const GraphParseResult undercount =
      ParseEdgeListOrError("# nodes 2\n0 1\n2 3\n");
  EXPECT_FALSE(undercount.ok());
  EXPECT_EQ(undercount.error_line, 0);  // File-level inconsistency.

  const GraphParseResult good = ParseEdgeListOrError("0 1\n1 2 0.5\n");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.error.empty());
  EXPECT_EQ(good.graph->NumNodes(), 3);
}

TEST(IoFuzzTest, CrlfVariantsParseIdenticallyAndErrorsKeepTheirLine) {
  // A document must parse to the same graph whether it arrives with
  // Unix or Windows line endings (and with trailing blanks sprinkled
  // on every line).
  const std::string unix_doc = "# nodes 6\n0 1\n1 2 2.5\n3 4\n4 5 0.25\n";
  std::string dos_doc, padded_doc;
  for (char c : unix_doc) {
    if (c == '\n') {
      dos_doc += "\r\n";
      padded_doc += " \t\n";
    } else {
      dos_doc += c;
      padded_doc += c;
    }
  }
  const auto base = ParseEdgeList(unix_doc);
  ASSERT_TRUE(base.has_value());
  for (const std::string* variant : {&dos_doc, &padded_doc}) {
    const auto g = ParseEdgeList(*variant);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->NumNodes(), base->NumNodes());
    EXPECT_EQ(g->NumEdges(), base->NumEdges());
    EXPECT_DOUBLE_EQ(g->EdgeWeight(1, 2), 2.5);
    EXPECT_DOUBLE_EQ(g->EdgeWeight(4, 5), 0.25);
  }

  // Error reporting still pins the failing line under CRLF: the '\r'
  // must neither shift the count nor mask the bad field.
  const GraphParseResult bad = ParseEdgeListOrError("0 1\r\n2 -3\r\n4 5\r\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error_line, 2);

  const GraphParseResult bad_metis =
      ParseMetisOrError("3 2\r\n2\r\n1 x 3\r\n2\r\n");
  EXPECT_FALSE(bad_metis.ok());
}

TEST(IoFuzzTest, WireRequestsSurviveRandomBytesAndTokenSoup) {
  // The JSONL request parser faces the same adversary as the graph
  // parsers: arbitrary bytes must parse-or-error, never crash, and a
  // false return must carry a non-empty error.
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    QueryRequest request;
    std::string error;
    const std::string junk = trial % 2 == 0
                                 ? RandomBytes(rng, 1 + trial % 200)
                                 : RandomTokenSoup(rng, 1 + trial % 30);
    if (!ParseQueryRequest(junk, &request, &error)) {
      EXPECT_FALSE(error.empty()) << junk;
    }
  }
}

TEST(IoFuzzTest, WireEditWeightsAndIdsAreValidatedNotTruncated) {
  QueryRequest request;
  std::string error;

  // Bad weights on both mutation ops: zero/negative on add, negative
  // or non-finite on either — all must be parse errors that could
  // never reach the engine's IMPREG_CHECK abort.
  for (const char* bad :
       {R"({"op": "add-edge", "u": 0, "v": 1, "weight": 0})",
        R"({"op": "add-edge", "u": 0, "v": 1, "weight": -2})",
        R"({"op": "add-edge", "u": 0, "v": 1, "weight": 1e999})",
        R"({"op": "remove-edge", "u": 0, "v": 1, "weight": -0.5})",
        R"({"op": "remove-edge", "u": 0, "v": 1, "weight": 1e999})"}) {
    EXPECT_FALSE(ParseQueryRequest(bad, &request, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }

  // Ids that do not fit NodeId (or are fractional) must error, never
  // silently truncate into a different node.
  for (const char* bad :
       {R"({"op": "add-edge", "u": 3000000000, "v": 1})",
        R"({"op": "add-edge", "u": 0.5, "v": 1})",
        R"({"op": "remove-edge", "u": 0, "v": -3000000000})",
        R"({"op": "remove-edge", "u": 1e999, "v": 1})",
        R"({"method": "ppr", "seeds": [98765432109876]})",
        R"({"method": "ppr", "seeds": [1.5]})"}) {
    EXPECT_FALSE(ParseQueryRequest(bad, &request, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }

  // The happy paths, including remove-edge's 0-weight default (the
  // "remove entirely" sentinel add-edge must keep rejecting).
  ASSERT_TRUE(ParseQueryRequest(R"({"op": "remove-edge", "u": 3, "v": 7})",
                                &request, &error));
  EXPECT_TRUE(request.is_remove_edge);
  EXPECT_FALSE(request.is_add_edge);
  EXPECT_EQ(request.u, 3);
  EXPECT_EQ(request.v, 7);
  EXPECT_EQ(request.weight, 0.0);
  ASSERT_TRUE(ParseQueryRequest(
      R"({"op": "remove-edge", "u": 3, "v": 7, "weight": 0.25})", &request,
      &error));
  EXPECT_EQ(request.weight, 0.25);
  ASSERT_TRUE(ParseQueryRequest(
      R"({"op": "add-edge", "u": 3, "v": 7, "weight": 0.5})", &request,
      &error));
  EXPECT_TRUE(request.is_add_edge);
  EXPECT_FALSE(request.is_remove_edge);
}

TEST(IoFuzzTest, CorruptedValidFilesRejectOrReparse) {
  // Take a valid edge list and flip one character at every position;
  // each variant must parse-or-reject, never crash.
  const std::string valid = "# nodes 6\n0 1\n1 2 2.5\n3 4\n4 5 0.25\n";
  Rng rng(5);
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    std::string corrupted = valid;
    corrupted[pos] = static_cast<char>('0' + rng.NextBounded(80));
    CheckParsedGraphIsValid(ParseEdgeList(corrupted));
  }
}

}  // namespace
}  // namespace impreg
