#include "diffusion/pagerank.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/dense_matrix.h"

namespace impreg {
namespace {

// Dense ground truth: p = γ (I − (1−γ) A D^{-1})^{-1} s via the
// symmetric eigendecomposition route.
Vector DensePageRank(const Graph& g, double gamma, const Vector& seed) {
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  // (I − (1−γ)(I−ℒ))^{-1} = (γI + (1−γ)ℒ)^{-1} in hat space.
  const DenseMatrix inv = ApplySpectralFunction(eigen, [&](double lam) {
    return 1.0 / (gamma + (1.0 - gamma) * lam);
  });
  const Vector hat_seed = ToHatSpace(g, seed);
  Vector hat_out = inv.Apply(hat_seed);
  Scale(gamma, hat_out);
  return FromHatSpace(g, hat_out);
}

TEST(PageRankTest, RichardsonMatchesDenseSolve) {
  Rng rng(1);
  const Graph g = ErdosRenyi(40, 0.2, rng);
  const Vector seed = SingleNodeSeed(g, 5);
  PageRankOptions options;
  options.gamma = 0.2;
  options.tolerance = 1e-14;
  const PageRankResult result = PersonalizedPageRank(g, seed, options);
  EXPECT_TRUE(result.converged);
  const Vector exact = DensePageRank(g, 0.2, seed);
  EXPECT_LT(DistanceL1(result.scores, exact), 1e-9);
}

TEST(PageRankTest, ExactCgMatchesDenseSolve) {
  Rng rng(2);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  const Vector seed = SeedSetDistribution(g, {0, 7, 13});
  PageRankOptions options;
  options.gamma = 0.1;
  options.tolerance = 1e-13;
  const PageRankResult result = PersonalizedPageRankExact(g, seed, options);
  EXPECT_TRUE(result.converged);
  const Vector exact = DensePageRank(g, 0.1, seed);
  EXPECT_LT(DistanceL1(result.scores, exact), 1e-8);
}

TEST(PageRankTest, MassIsPreserved) {
  Rng rng(3);
  const Graph g = ErdosRenyi(60, 0.1, rng);
  const Vector seed = SingleNodeSeed(g, 0);
  const PageRankResult result = PersonalizedPageRank(g, seed);
  EXPECT_NEAR(Sum(result.scores), 1.0, 1e-9);
  for (double v : result.scores) EXPECT_GE(v, 0.0);
}

TEST(PageRankTest, LinearInSeed) {
  Rng rng(4);
  const Graph g = ErdosRenyi(30, 0.2, rng);
  PageRankOptions options;
  options.tolerance = 1e-14;
  const Vector pa =
      PersonalizedPageRank(g, SingleNodeSeed(g, 3), options).scores;
  const Vector pb =
      PersonalizedPageRank(g, SingleNodeSeed(g, 9), options).scores;
  Vector mixed_seed(g.NumNodes(), 0.0);
  mixed_seed[3] = 0.25;
  mixed_seed[9] = 0.75;
  const Vector pm = PersonalizedPageRank(g, mixed_seed, options).scores;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_NEAR(pm[u], 0.25 * pa[u] + 0.75 * pb[u], 1e-10);
  }
}

TEST(PageRankTest, GammaOneLimitReturnsSeed) {
  // As γ → 1, R_γ → I (the diffusion never leaves the seed).
  const Graph g = PathGraph(6);
  PageRankOptions options;
  options.gamma = 0.999;
  const Vector seed = SingleNodeSeed(g, 2);
  const PageRankResult result = PersonalizedPageRank(g, seed, options);
  EXPECT_GT(result.scores[2], 0.998);
}

TEST(PageRankTest, GammaSmallApproachesStationary) {
  Rng rng(5);
  const Graph g = ErdosRenyi(40, 0.3, rng);
  PageRankOptions options;
  options.gamma = 1e-4;
  options.max_iterations = 200000;
  const Vector seed = SingleNodeSeed(g, 1);
  const PageRankResult result = PersonalizedPageRank(g, seed, options);
  // Stationary distribution ∝ degree.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_NEAR(result.scores[u], g.Degree(u) / g.TotalVolume(), 5e-3);
  }
}

TEST(PageRankTest, GlobalPageRankRanksHubFirst) {
  const Graph g = StarGraph(20);
  const PageRankResult result = GlobalPageRank(g);
  for (NodeId u = 1; u < 20; ++u) {
    EXPECT_GT(result.scores[0], result.scores[u]);
  }
}

TEST(PageRankTest, SymmetricNodesGetEqualScores) {
  const Graph g = CycleGraph(9);
  const PageRankResult result = GlobalPageRank(g);
  for (NodeId u = 1; u < 9; ++u) {
    EXPECT_NEAR(result.scores[u], result.scores[0], 1e-10);
  }
}

TEST(PageRankTest, IsolatedSeedKeepsTeleportMass) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  Vector seed = {0.0, 0.0, 1.0};
  PageRankOptions options;
  options.gamma = 0.3;
  const PageRankResult exact = PersonalizedPageRankExact(g, seed, options);
  EXPECT_NEAR(exact.scores[2], 0.3, 1e-10);
}

TEST(PageRankTest, NegativeSeedDies) {
  const Graph g = PathGraph(3);
  EXPECT_DEATH(PersonalizedPageRank(g, {0.5, -0.5, 1.0}), "nonnegative");
}

TEST(PageRankTest, StatusMirrorsConvergedFlag) {
  const Graph g = CycleGraph(12);
  const Vector seed = SingleNodeSeed(g, 0);
  const PageRankResult ok = PersonalizedPageRank(g, seed);
  EXPECT_TRUE(ok.converged);
  EXPECT_EQ(ok.diagnostics.status, SolveStatus::kConverged);

  PageRankOptions capped;
  capped.max_iterations = 1;
  capped.tolerance = 1e-15;
  const PageRankResult stopped = PersonalizedPageRank(g, seed, capped);
  EXPECT_FALSE(stopped.converged);
  EXPECT_EQ(stopped.diagnostics.status, SolveStatus::kMaxIterations);
  // An early stop is still the (more) regularized answer.
  EXPECT_TRUE(stopped.diagnostics.usable());
  EXPECT_TRUE(AllFinite(stopped.scores));
}

TEST(PageRankTest, NonFiniteSeedIsContainedNotFatal) {
  // A NaN seed entry slips past any `v < 0` sign check (NaN compares
  // false); the solvers must reject it gracefully rather than diffuse
  // poison or abort.
  const Graph g = PathGraph(4);
  Vector seed = {1.0, 0.0, std::numeric_limits<double>::quiet_NaN(), 0.0};
  for (const PageRankResult& result :
       {PersonalizedPageRank(g, seed), PersonalizedPageRankExact(g, seed),
        PersonalizedPageRankChebyshev(g, seed)}) {
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.diagnostics.status, SolveStatus::kNonFinite);
    EXPECT_TRUE(AllFinite(result.scores));
  }
}

}  // namespace
}  // namespace impreg
