#include "regularization/density.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "linalg/graph_operators.h"

namespace impreg {
namespace {

TEST(DensityTest, IdentityOverNIsAlmostFeasible) {
  const Graph g = CompleteGraph(4);
  DenseMatrix x = DenseMatrix::Identity(4);
  x.ScaleBy(0.25);
  const DensityDiagnostics diag = CheckDensity(g, x);
  EXPECT_NEAR(diag.trace_defect, 0.0, 1e-14);
  EXPECT_NEAR(diag.psd_defect, 0.0, 1e-14);
  EXPECT_NEAR(diag.symmetry_defect, 0.0, 1e-14);
  // But I/n is NOT orthogonal to the trivial direction.
  EXPECT_GT(diag.orthogonality_defect, 0.1);
}

TEST(DensityTest, RankOneOnSecondEigenvectorIsFeasible) {
  const Graph g = CycleGraph(8);
  const SymmetricEigen eigen =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  const DenseMatrix x =
      DenseMatrix::OuterProduct(eigen.eigenvectors.Column(1));
  const DensityDiagnostics diag = CheckDensity(g, x);
  EXPECT_NEAR(diag.trace_defect, 0.0, 1e-10);
  EXPECT_NEAR(diag.psd_defect, 0.0, 1e-12);
  EXPECT_NEAR(diag.orthogonality_defect, 0.0, 1e-10);
}

TEST(DensityTest, NegativeEigenvalueDetected) {
  const Graph g = PathGraph(2);
  DenseMatrix x(2, 2);
  x.At(0, 0) = 1.5;
  x.At(1, 1) = -0.5;
  const DensityDiagnostics diag = CheckDensity(g, x);
  EXPECT_NEAR(diag.psd_defect, 0.5, 1e-12);
}

TEST(DensityTest, NormalizeTraceScales) {
  DenseMatrix x = DenseMatrix::Identity(5);
  const DenseMatrix normalized = NormalizeTrace(x);
  EXPECT_NEAR(normalized.Trace(), 1.0, 1e-15);
}

TEST(DensityTest, NormalizeZeroTraceDies) {
  DenseMatrix x(2, 2);
  x.At(0, 0) = 1.0;
  x.At(1, 1) = -1.0;
  EXPECT_DEATH(NormalizeTrace(x), "zero trace");
}

TEST(TraceDistanceTest, IdenticalMatricesAreAtZero) {
  const DenseMatrix x = DenseMatrix::Identity(3);
  EXPECT_NEAR(TraceDistance(x, x), 0.0, 1e-15);
}

TEST(TraceDistanceTest, OrthogonalPureStatesAreAtOne) {
  // Trace distance between e₁e₁ᵀ and e₂e₂ᵀ is 1 (maximally
  // distinguishable).
  const DenseMatrix a = DenseMatrix::OuterProduct({1.0, 0.0});
  const DenseMatrix b = DenseMatrix::OuterProduct({0.0, 1.0});
  EXPECT_NEAR(TraceDistance(a, b), 1.0, 1e-12);
}

TEST(TraceDistanceTest, SymmetricInArguments) {
  DenseMatrix a = DenseMatrix::Identity(3);
  a.ScaleBy(1.0 / 3.0);
  const DenseMatrix b = DenseMatrix::OuterProduct({1.0, 0.0, 0.0});
  EXPECT_NEAR(TraceDistance(a, b), TraceDistance(b, a), 1e-14);
  EXPECT_GT(TraceDistance(a, b), 0.0);
}

TEST(VonNeumannEntropyTest, PureStateHasZeroEntropy) {
  const DenseMatrix pure = DenseMatrix::OuterProduct({0.6, 0.8});
  EXPECT_NEAR(VonNeumannEntropy(pure), 0.0, 1e-10);
}

TEST(VonNeumannEntropyTest, MaximallyMixedIsLogN) {
  DenseMatrix mixed = DenseMatrix::Identity(4);
  mixed.ScaleBy(0.25);
  EXPECT_NEAR(VonNeumannEntropy(mixed), std::log(4.0), 1e-12);
}

}  // namespace
}  // namespace impreg
