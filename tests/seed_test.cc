#include "diffusion/seed.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "linalg/graph_operators.h"

namespace impreg {
namespace {

TEST(SeedTest, SingleNodeSeedIsIndicator) {
  const Graph g = PathGraph(5);
  const Vector s = SingleNodeSeed(g, 2);
  EXPECT_DOUBLE_EQ(s[2], 1.0);
  EXPECT_DOUBLE_EQ(Sum(s), 1.0);
}

TEST(SeedTest, SeedSetIsUniform) {
  const Graph g = PathGraph(6);
  const Vector s = SeedSetDistribution(g, {1, 3, 5});
  EXPECT_DOUBLE_EQ(s[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s[3], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_NEAR(Sum(s), 1.0, 1e-15);
}

TEST(SeedTest, DegreeWeightedSeed) {
  const Graph g = StarGraph(5);  // Hub degree 4, leaves 1.
  const Vector s = DegreeWeightedSeed(g, {0, 1});
  EXPECT_DOUBLE_EQ(s[0], 0.8);
  EXPECT_DOUBLE_EQ(s[1], 0.2);
}

TEST(SeedTest, DuplicateSeedNodesDie) {
  const Graph g = PathGraph(4);
  EXPECT_DEATH(SeedSetDistribution(g, {1, 1}), "distinct");
}

TEST(SeedTest, RandomSignSeedIsUnitAndOrthogonal) {
  const Graph g = CavemanGraph(2, 6);
  Rng rng(5);
  const Vector x = RandomSignSeed(g, rng);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-12);
  EXPECT_NEAR(Dot(x, TrivialNormalizedEigenvector(g)), 0.0, 1e-12);
}

TEST(SeedTest, HatSpaceRoundTrip) {
  const Graph g = StarGraph(6);
  const Vector p = SeedSetDistribution(g, {0, 2});
  const Vector back = FromHatSpace(g, ToHatSpace(g, p));
  EXPECT_LT(DistanceL2(back, p), 1e-14);
}

TEST(SeedTest, HatSpaceScalesBySqrtDegree) {
  const Graph g = StarGraph(5);  // d(0) = 4.
  Vector p(5, 0.0);
  p[0] = 2.0;
  const Vector hat = ToHatSpace(g, p);
  EXPECT_DOUBLE_EQ(hat[0], 1.0);  // 2 / sqrt(4).
}

TEST(SeedTest, HatSpaceZeroOnIsolated) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  Vector p = {0.5, 0.0, 0.5};
  const Vector hat = ToHatSpace(g, p);
  EXPECT_DOUBLE_EQ(hat[2], 0.0);
}

}  // namespace
}  // namespace impreg
