// Bit-for-bit determinism of the parallel execution layer: every
// operator and every diffusion must produce *identical* doubles whether
// the pool runs 1 thread or 8. This is the library's reproducibility
// guarantee (chunk boundaries and reduce fold order are pure functions
// of the problem size, never of the thread count) checked end to end on
// Erdős–Rényi, preferential-attachment, and ring-of-cliques graphs.

#include <bit>
#include <cstdint>
#include <functional>

#include <gtest/gtest.h>

#include "core/impreg.h"

namespace impreg {
namespace {

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Runs `compute` under 1 thread and under 8 threads and asserts the
/// results are bit-identical.
void ExpectSameUnderOneAndEightThreads(
    const std::function<Vector()>& compute) {
  Vector serial, parallel;
  {
    const ScopedNumThreads threads(1);
    serial = compute();
  }
  {
    const ScopedNumThreads threads(8);
    parallel = compute();
  }
  ExpectBitIdentical(serial, parallel);
}

struct GraphCase {
  const char* name;
  Graph graph;
};

std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  {
    // Large enough that SpMV spans many row chunks and the dense
    // reductions span multiple vector chunks (> 2^14 elements).
    Rng rng(11);
    cases.push_back({"erdos_renyi", ErdosRenyi(20000, 4.0 / 20000.0, rng)});
  }
  {
    Rng rng(12);
    cases.push_back({"barabasi_albert", BarabasiAlbert(3000, 4, rng)});
  }
  // Ring of cliques: 60 cliques of 20 nodes each.
  cases.push_back({"ring_of_cliques", CavemanGraph(60, 20)});
  return cases;
}

Vector GaussianVector(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  Vector x(n);
  for (double& v : x) v = rng.NextGaussian();
  return x;
}

TEST(DeterminismTest, AllFiveOperatorsAreThreadCountInvariant) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector x = GaussianVector(c.graph.NumNodes(), 99);
    const AdjacencyOperator adjacency(c.graph);
    const CombinatorialLaplacianOperator combinatorial(c.graph);
    const NormalizedLaplacianOperator normalized(c.graph);
    const RandomWalkOperator walk(c.graph);
    const LazyWalkOperator lazy(c.graph, 0.5);
    const LinearOperator* operators[] = {&adjacency, &combinatorial,
                                         &normalized, &walk, &lazy};
    for (const LinearOperator* op : operators) {
      ExpectSameUnderOneAndEightThreads([&] { return op->Apply(x); });
    }
  }
}

TEST(DeterminismTest, PageRankEndToEnd) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector seed = SingleNodeSeed(c.graph, c.graph.NumNodes() / 3);
    PageRankOptions options;
    options.gamma = 0.1;
    options.tolerance = 1e-10;
    ExpectSameUnderOneAndEightThreads([&] {
      return PersonalizedPageRank(c.graph, seed, options).scores;
    });
    ExpectSameUnderOneAndEightThreads([&] {
      return PersonalizedPageRankChebyshev(c.graph, seed, options).scores;
    });
  }
}

TEST(DeterminismTest, HeatKernelEndToEnd) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector seed = SingleNodeSeed(c.graph, 7);
    ExpectSameUnderOneAndEightThreads(
        [&] { return HeatKernelWalkTaylor(c.graph, seed, 5.0, 1e-10); });
    HeatKernelOptions options;
    options.t = 3.0;
    ExpectSameUnderOneAndEightThreads(
        [&] { return HeatKernelWalk(c.graph, seed, options); });
  }
}

TEST(DeterminismTest, LazyWalkEndToEnd) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector seed = SingleNodeSeed(c.graph, 0);
    LazyWalkOptions options;
    options.alpha = 0.5;
    options.steps = 12;
    ExpectSameUnderOneAndEightThreads(
        [&] { return LazyWalk(c.graph, seed, options); });
  }
}

TEST(DeterminismTest, SweepCutProfileAndSetAreThreadCountInvariant) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector values = GaussianVector(c.graph.NumNodes(), 4242);
    SweepResult serial, parallel;
    {
      const ScopedNumThreads threads(1);
      serial = SweepCut(c.graph, values);
    }
    {
      const ScopedNumThreads threads(8);
      parallel = SweepCut(c.graph, values);
    }
    EXPECT_EQ(serial.order, parallel.order);
    EXPECT_EQ(serial.set, parallel.set);
    ExpectBitIdentical(serial.conductance_profile,
                       parallel.conductance_profile);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(serial.stats.conductance),
              std::bit_cast<std::uint64_t>(parallel.stats.conductance));
  }
}

TEST(DeterminismTest, DenseReductionsAreThreadCountInvariant) {
  // Vectors long enough for > 4 reduce chunks.
  const Vector x = GaussianVector(100000, 5);
  const Vector y = GaussianVector(100000, 6);
  auto scalars = [&] {
    return Vector{Dot(x, y),          Norm1(x),           Norm2(x),
                  NormInf(x),         Sum(x),             DistanceL1(x, y),
                  DistanceL2(x, y),   DistanceUpToSign(x, y),
                  WeightedDot(x, x, y)};
  };
  Vector serial, parallel;
  {
    const ScopedNumThreads threads(1);
    serial = scalars();
  }
  {
    const ScopedNumThreads threads(8);
    parallel = scalars();
  }
  ExpectBitIdentical(serial, parallel);
}

}  // namespace
}  // namespace impreg
