// Bit-for-bit determinism of the parallel execution layer: every
// operator and every diffusion must produce *identical* doubles whether
// the pool runs 1 thread or 8. This is the library's reproducibility
// guarantee (chunk boundaries and reduce fold order are pure functions
// of the problem size, never of the thread count) checked end to end on
// Erdős–Rényi, preferential-attachment, and ring-of-cliques graphs.

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/impreg.h"

namespace impreg {
namespace {

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Runs `compute` under 1 thread and under 8 threads and asserts the
/// results are bit-identical.
void ExpectSameUnderOneAndEightThreads(
    const std::function<Vector()>& compute) {
  Vector serial, parallel;
  {
    const ScopedNumThreads threads(1);
    serial = compute();
  }
  {
    const ScopedNumThreads threads(8);
    parallel = compute();
  }
  ExpectBitIdentical(serial, parallel);
}

struct GraphCase {
  const char* name;
  Graph graph;
};

std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  {
    // Large enough that SpMV spans many row chunks and the dense
    // reductions span multiple vector chunks (> 2^14 elements).
    Rng rng(11);
    cases.push_back({"erdos_renyi", ErdosRenyi(20000, 4.0 / 20000.0, rng)});
  }
  {
    Rng rng(12);
    cases.push_back({"barabasi_albert", BarabasiAlbert(3000, 4, rng)});
  }
  // Ring of cliques: 60 cliques of 20 nodes each.
  cases.push_back({"ring_of_cliques", CavemanGraph(60, 20)});
  return cases;
}

Vector GaussianVector(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  Vector x(n);
  for (double& v : x) v = rng.NextGaussian();
  return x;
}

TEST(DeterminismTest, AllFiveOperatorsAreThreadCountInvariant) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector x = GaussianVector(c.graph.NumNodes(), 99);
    const AdjacencyOperator adjacency(c.graph);
    const CombinatorialLaplacianOperator combinatorial(c.graph);
    const NormalizedLaplacianOperator normalized(c.graph);
    const RandomWalkOperator walk(c.graph);
    const LazyWalkOperator lazy(c.graph, 0.5);
    const LinearOperator* operators[] = {&adjacency, &combinatorial,
                                         &normalized, &walk, &lazy};
    for (const LinearOperator* op : operators) {
      ExpectSameUnderOneAndEightThreads([&] { return op->Apply(x); });
    }
  }
}

TEST(DeterminismTest, PageRankEndToEnd) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector seed = SingleNodeSeed(c.graph, c.graph.NumNodes() / 3);
    PageRankOptions options;
    options.gamma = 0.1;
    options.tolerance = 1e-10;
    ExpectSameUnderOneAndEightThreads([&] {
      return PersonalizedPageRank(c.graph, seed, options).scores;
    });
    ExpectSameUnderOneAndEightThreads([&] {
      return PersonalizedPageRankChebyshev(c.graph, seed, options).scores;
    });
  }
}

TEST(DeterminismTest, HeatKernelEndToEnd) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector seed = SingleNodeSeed(c.graph, 7);
    ExpectSameUnderOneAndEightThreads(
        [&] { return HeatKernelWalkTaylor(c.graph, seed, 5.0, 1e-10); });
    HeatKernelOptions options;
    options.t = 3.0;
    ExpectSameUnderOneAndEightThreads(
        [&] { return HeatKernelWalk(c.graph, seed, options); });
  }
}

TEST(DeterminismTest, LazyWalkEndToEnd) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector seed = SingleNodeSeed(c.graph, 0);
    LazyWalkOptions options;
    options.alpha = 0.5;
    options.steps = 12;
    ExpectSameUnderOneAndEightThreads(
        [&] { return LazyWalk(c.graph, seed, options); });
  }
}

TEST(DeterminismTest, SweepCutProfileAndSetAreThreadCountInvariant) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector values = GaussianVector(c.graph.NumNodes(), 4242);
    SweepResult serial, parallel;
    {
      const ScopedNumThreads threads(1);
      serial = SweepCut(c.graph, values);
    }
    {
      const ScopedNumThreads threads(8);
      parallel = SweepCut(c.graph, values);
    }
    EXPECT_EQ(serial.order, parallel.order);
    EXPECT_EQ(serial.set, parallel.set);
    ExpectBitIdentical(serial.conductance_profile,
                       parallel.conductance_profile);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(serial.stats.conductance),
              std::bit_cast<std::uint64_t>(parallel.stats.conductance));
  }
}

// —— Layout equivalence (ISSUE 2, extended by ISSUE 7) ——
// The SoA kernels (split heads/weights arrays, head-side degree folds,
// register-blocked SpMM) must be bit-identical to a plain serial
// adjacency-list traversal that performs the same arithmetic with the
// same reduction tree. These references intentionally use the
// `Neighbors(u)` compatibility view — the AoS-style access path — so
// any divergence between the two layouts shows up as a failed bit
// comparison. Since ISSUE 7 the per-row reduction is the canonical
// striped tree of docs/simd.md (four lanes over the 4-aligned arc
// prefix folded (l0+l2)+(l1+l3), sequential tail, one `init ± tree`
// rounding), implemented here from first principles so the production
// kernels — scalar and AVX2 alike — are checked against an independent
// copy of the tree.

double CanonicalRowTree(const std::vector<double>& terms) {
  const std::int64_t len = static_cast<std::int64_t>(terms.size());
  const std::int64_t main = len & ~std::int64_t{3};
  double lane0 = 0.0, lane1 = 0.0, lane2 = 0.0, lane3 = 0.0;
  for (std::int64_t a = 0; a < main; a += 4) {
    lane0 += terms[a];
    lane1 += terms[a + 1];
    lane2 += terms[a + 2];
    lane3 += terms[a + 3];
  }
  double sum = (lane0 + lane2) + (lane1 + lane3);
  for (std::int64_t a = main; a < len; ++a) sum += terms[a];
  return sum;
}

Vector ReferenceApply(const Graph& g, const LinearOperator& op,
                      const Vector& x, double lazy_alpha = 0.5) {
  const NodeId n = g.NumNodes();
  Vector y(n);
  // Per-arc products in adjacency order, one entry per arc of row u.
  const auto row_terms = [&](NodeId u, const Vector& head_scale) {
    std::vector<double> terms;
    for (const Arc& arc : g.Neighbors(u)) {
      terms.push_back(head_scale.empty()
                          ? arc.weight * x[arc.head]
                          : (arc.weight * head_scale[arc.head]) * x[arc.head]);
    }
    return terms;
  };
  if (dynamic_cast<const AdjacencyOperator*>(&op) != nullptr) {
    for (NodeId u = 0; u < n; ++u) {
      const std::vector<double> terms = row_terms(u, {});
      y[u] = terms.empty() ? 0.0 : 0.0 + CanonicalRowTree(terms);
    }
  } else if (dynamic_cast<const CombinatorialLaplacianOperator*>(&op) !=
             nullptr) {
    for (NodeId u = 0; u < n; ++u) {
      const double init = g.Degree(u) * x[u];
      const std::vector<double> terms = row_terms(u, {});
      y[u] = terms.empty() ? init : init - CanonicalRowTree(terms);
    }
  } else if (dynamic_cast<const NormalizedLaplacianOperator*>(&op) !=
             nullptr) {
    Vector isd(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (g.Degree(u) > 0.0) isd[u] = 1.0 / std::sqrt(g.Degree(u));
    }
    for (NodeId u = 0; u < n; ++u) {
      const std::vector<double> terms = row_terms(u, isd);
      const double acc = terms.empty() ? 0.0 : 0.0 + CanonicalRowTree(terms);
      y[u] = isd[u] == 0.0 ? 0.0 : x[u] - isd[u] * acc;
    }
  } else if (dynamic_cast<const RandomWalkOperator*>(&op) != nullptr) {
    Vector inv_deg(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (g.Degree(u) > 0.0) inv_deg[u] = 1.0 / g.Degree(u);
    }
    for (NodeId u = 0; u < n; ++u) {
      const std::vector<double> terms = row_terms(u, inv_deg);
      y[u] = terms.empty() ? 0.0 : 0.0 + CanonicalRowTree(terms);
    }
  } else {
    Vector inv_deg(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (g.Degree(u) > 0.0) inv_deg[u] = 1.0 / g.Degree(u);
    }
    for (NodeId u = 0; u < n; ++u) {
      const std::vector<double> terms = row_terms(u, inv_deg);
      const double acc = terms.empty() ? 0.0 : 0.0 + CanonicalRowTree(terms);
      y[u] = g.Degree(u) > 0.0 ? lazy_alpha * x[u] + (1.0 - lazy_alpha) * acc
                               : x[u];
    }
  }
  return y;
}

TEST(LayoutEquivalenceTest, SoAKernelsMatchReferenceTraversal) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const Vector x = GaussianVector(c.graph.NumNodes(), 77);
    const AdjacencyOperator adjacency(c.graph);
    const CombinatorialLaplacianOperator combinatorial(c.graph);
    const NormalizedLaplacianOperator normalized(c.graph);
    const RandomWalkOperator walk(c.graph);
    const LazyWalkOperator lazy(c.graph, 0.5);
    const LinearOperator* operators[] = {&adjacency, &combinatorial,
                                         &normalized, &walk, &lazy};
    for (const LinearOperator* op : operators) {
      const Vector reference = ReferenceApply(c.graph, *op, x);
      for (int threads : {1, 8}) {
        const ScopedNumThreads scoped(threads);
        ExpectBitIdentical(reference, op->Apply(x));
      }
    }
  }
}

TEST(LayoutEquivalenceTest, ApplyBatchColumnsMatchSingleVectorApply) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const AdjacencyOperator adjacency(c.graph);
    const CombinatorialLaplacianOperator combinatorial(c.graph);
    const NormalizedLaplacianOperator normalized(c.graph);
    const RandomWalkOperator walk(c.graph);
    const LazyWalkOperator lazy(c.graph, 0.5);
    const LinearOperator* operators[] = {&adjacency, &combinatorial,
                                         &normalized, &walk, &lazy};
    // k = 1, 4, 8 exercises the B = 1 path, one full register block,
    // and two full blocks (no tail / the switch tails come from k = 7
    // below in the edge-case test via k = 0/1 plus this loop's 4 + 3).
    for (int k : {1, 4, 7, 8}) {
      std::vector<Vector> xs;
      for (int j = 0; j < k; ++j) {
        xs.push_back(GaussianVector(c.graph.NumNodes(),
                                    1000 + static_cast<std::uint64_t>(j)));
      }
      for (const LinearOperator* op : operators) {
        for (int threads : {1, 8}) {
          const ScopedNumThreads scoped(threads);
          std::vector<Vector> ys;
          op->ApplyBatch(xs, ys);
          ASSERT_EQ(ys.size(), xs.size());
          for (int j = 0; j < k; ++j) {
            SCOPED_TRACE("k=" + std::to_string(k) + " column " +
                         std::to_string(j) + " threads " +
                         std::to_string(threads));
            ExpectBitIdentical(op->Apply(xs[j]), ys[j]);
          }
        }
      }
    }
  }
}

// —— SIMD dispatch equivalence (ISSUE 7) ——
// Forcing the scalar and AVX2 kernel paths must produce bit-identical
// results for every operator Apply/ApplyBatch and for the dispatched
// dense kernels (Dot/Axpy), at 1 and 8 threads. On hardware without
// AVX2 the forced level clamps to scalar and the comparison is
// trivially green — the real check runs wherever AVX2 exists.
TEST(LayoutEquivalenceTest, ScalarAndSimdPathsAreBitIdentical) {
  for (const GraphCase& c : TestGraphs()) {
    SCOPED_TRACE(c.name);
    const NodeId n = c.graph.NumNodes();
    const Vector x = GaussianVector(n, 314);
    const Vector z = GaussianVector(n, 315);
    std::vector<Vector> xs;
    for (int j = 0; j < 4; ++j) {
      xs.push_back(GaussianVector(n, 400 + static_cast<std::uint64_t>(j)));
    }
    const AdjacencyOperator adjacency(c.graph);
    const CombinatorialLaplacianOperator combinatorial(c.graph);
    const NormalizedLaplacianOperator normalized(c.graph);
    const RandomWalkOperator walk(c.graph);
    const LazyWalkOperator lazy(c.graph, 0.5);
    const LinearOperator* operators[] = {&adjacency, &combinatorial,
                                         &normalized, &walk, &lazy};
    const auto compute = [&](simd::SimdLevel level, int threads) {
      const simd::ScopedSimdLevel forced(level);
      const ScopedNumThreads scoped(threads);
      Vector out;
      for (const LinearOperator* op : operators) {
        const Vector y = op->Apply(x);
        out.insert(out.end(), y.begin(), y.end());
        std::vector<Vector> ys;
        op->ApplyBatch(xs, ys);
        for (const Vector& col : ys) {
          out.insert(out.end(), col.begin(), col.end());
        }
      }
      out.push_back(Dot(x, z));
      Vector axpy = z;
      Axpy(0.37, x, axpy);
      out.insert(out.end(), axpy.begin(), axpy.end());
      return out;
    };
    for (int threads : {1, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      ExpectBitIdentical(compute(simd::SimdLevel::kScalar, threads),
                         compute(simd::SimdLevel::kAvx2, threads));
    }
  }
}

TEST(LayoutEquivalenceTest, ApplyBatchEdgeCases) {
  // k = 0: no columns in, no columns out.
  {
    Rng rng(3);
    const Graph g = ErdosRenyi(100, 0.05, rng);
    const AdjacencyOperator op(g);
    std::vector<Vector> xs, ys(5, Vector(7, 1.0));
    op.ApplyBatch(xs, ys);  // Must also clear stale output columns.
    EXPECT_TRUE(ys.empty());
  }
  // Isolated nodes: nodes 3 and 4 have no arcs. Normalized Laplacian
  // rows are exactly 0; lazy-walk rows keep their mass exactly.
  {
    GraphBuilder builder(5);
    builder.AddEdge(0, 1, 2.0);
    builder.AddEdge(1, 2, 0.5);
    const Graph g = builder.Build();
    const NormalizedLaplacianOperator normalized(g);
    const LazyWalkOperator lazy(g, 0.5);
    const std::vector<Vector> xs = {GaussianVector(5, 21),
                                    GaussianVector(5, 22)};
    std::vector<Vector> ys;
    normalized.ApplyBatch(xs, ys);
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(ys[j][3], 0.0);
      EXPECT_EQ(ys[j][4], 0.0);
      ExpectBitIdentical(normalized.Apply(xs[j]), ys[j]);
    }
    lazy.ApplyBatch(xs, ys);
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(ys[j][3], xs[j][3]);
      EXPECT_EQ(ys[j][4], xs[j][4]);
      ExpectBitIdentical(lazy.Apply(xs[j]), ys[j]);
    }
  }
  // Empty graph: zero nodes, k columns of length zero.
  {
    const Graph g = GraphBuilder(0).Build();
    const AdjacencyOperator op(g);
    const std::vector<Vector> xs(3);
    std::vector<Vector> ys;
    op.ApplyBatch(xs, ys);
    ASSERT_EQ(ys.size(), 3u);
    for (const Vector& y : ys) EXPECT_TRUE(y.empty());
  }
}

#ifdef IMPREG_OBSERVABILITY
// —— Observability invariance (ISSUE 4) ——
// Metrics and tracing only *read* solver values; enabling them must
// not move a single bit of any output, at any thread count. This is
// the disabled-path-cost contract of core/metrics.h and core/trace.h
// checked end to end across the solver families the CLI exercises.
TEST(DeterminismTest, ObservabilityOnAndOffAreBitIdentical) {
  const Graph g = CavemanGraph(40, 15);
  const Vector seed = SingleNodeSeed(g, 3);
  PageRankOptions pagerank;
  pagerank.gamma = 0.1;
  pagerank.tolerance = 1e-10;
  PushOptions push;
  push.epsilon = 1e-6;
  // One long vector concatenating every solver family's output, so a
  // single bit comparison covers them all.
  const auto compute = [&] {
    Vector out = PersonalizedPageRank(g, seed, pagerank).scores;
    const PushResult pushed = ApproximatePageRank(g, seed, push);
    out.insert(out.end(), pushed.p.begin(), pushed.p.end());
    out.insert(out.end(), pushed.residual.begin(), pushed.residual.end());
    const Vector heat = HeatKernelWalkTaylor(g, seed, 5.0, 1e-10);
    out.insert(out.end(), heat.begin(), heat.end());
    const HkRelaxResult hk = HeatKernelRelax(g, /*seed=*/0, {});
    out.insert(out.end(), hk.rho.begin(), hk.rho.end());
    out.push_back(static_cast<double>(pushed.work));
    return out;
  };
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const ScopedNumThreads scoped(threads);
    ImpregEnableMetrics(false);
    TraceCollector::Get().Disable();
    const Vector off = compute();
    ImpregEnableMetrics(true);
    TraceCollector::Get().Enable();
    TraceCollector::Get().Clear();
    const Vector on = compute();
    // The instrumented pass must actually have observed something —
    // otherwise this test silently compares two uninstrumented runs.
    EXPECT_FALSE(TraceCollector::Get().Traces().empty());
    ImpregEnableMetrics(false);
    TraceCollector::Get().Disable();
    ExpectBitIdentical(off, on);
  }
}
#endif  // IMPREG_OBSERVABILITY

TEST(DeterminismTest, QueryEngineBatchIsThreadCountInvariantWithCacheOnAndOff) {
  // A mixed batch — push (duplicated, so dedup kicks in), two grouped
  // dense solves, a heat-kernel query and a nibble query — answered
  // before and after an edge insertion, then again after the edge is
  // removed (the surgical-invalidation delete path). With the cache
  // on, the later batches exercise the warm-restart and
  // region-retention paths; with it off, everything is cold. In both
  // configurations every response must be bit-identical at 1 and 8
  // threads.
  const Graph g = CavemanGraph(12, 10);
  std::vector<Query> batch;
  Query ppr;
  ppr.seeds = {0, 25};
  ppr.epsilon = 1e-6;
  batch.push_back(ppr);
  batch.push_back(ppr);  // Exact duplicate → answered once.
  Query dense;
  dense.method = QueryMethod::kPprDense;
  dense.seeds = {3};
  dense.tolerance = 1e-10;
  dense.max_iterations = 300;
  batch.push_back(dense);
  dense.seeds = {40};  // Same (γ, tol, iters) → same ApplyBatch group.
  batch.push_back(dense);
  Query hk;
  hk.method = QueryMethod::kHeatKernel;
  hk.seeds = {7};
  batch.push_back(hk);
  Query nibble;
  nibble.method = QueryMethod::kNibble;
  nibble.seeds = {50};
  nibble.epsilon = 1e-4;
  batch.push_back(nibble);

  for (const bool cache_on : {false, true}) {
    SCOPED_TRACE(cache_on ? "cache on" : "cache off");
    ExpectSameUnderOneAndEightThreads([&] {
      QueryEngine::Options options;
      options.enable_cache = cache_on;
      QueryEngine engine(g, options);
      Vector out;
      const auto absorb = [&](const std::vector<QueryResponse>& responses) {
        for (const QueryResponse& r : responses) {
          out.insert(out.end(), r.scores.begin(), r.scores.end());
          out.push_back(static_cast<double>(r.work));
          out.push_back(static_cast<double>(static_cast<int>(r.source)));
          out.push_back(static_cast<double>(static_cast<int>(r.status)));
          for (const NodeId u : r.set) out.push_back(static_cast<double>(u));
        }
      };
      absorb(engine.RunBatch(batch));
      engine.AddEdge(0, 61);
      absorb(engine.RunBatch(batch));
      engine.RemoveEdge(0, 61);
      engine.AddEdge(25, 90, 0.5);
      engine.RemoveEdge(25, 90, 0.25);  // Partial: weight 0.25 remains.
      absorb(engine.RunBatch(batch));
      return out;
    });
  }
}

TEST(DeterminismTest, DenseReductionsAreThreadCountInvariant) {
  // Vectors long enough for > 4 reduce chunks.
  const Vector x = GaussianVector(100000, 5);
  const Vector y = GaussianVector(100000, 6);
  auto scalars = [&] {
    return Vector{Dot(x, y),          Norm1(x),           Norm2(x),
                  NormInf(x),         Sum(x),             DistanceL1(x, y),
                  DistanceL2(x, y),   DistanceUpToSign(x, y),
                  WeightedDot(x, x, y)};
  };
  Vector serial, parallel;
  {
    const ScopedNumThreads threads(1);
    serial = scalars();
  }
  {
    const ScopedNumThreads threads(8);
    parallel = scalars();
  }
  ExpectBitIdentical(serial, parallel);
}

}  // namespace
}  // namespace impreg
