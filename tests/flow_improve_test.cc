#include "flow/flow_improve.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "util/rng.h"

namespace impreg {
namespace {

TEST(FlowImproveTest, NeverWorsensConductance) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 0.12, rng);
  Rng pick(2);
  for (int trial = 0; trial < 8; ++trial) {
    const int k = 5 + static_cast<int>(pick.NextBounded(20));
    std::vector<int> sample = pick.SampleWithoutReplacement(50, k);
    std::vector<NodeId> ref(sample.begin(), sample.end());
    const double before = Conductance(g, ref);
    const FlowImproveResult result = FlowImprove(g, ref);
    EXPECT_LE(result.stats.conductance, before + 1e-9);
  }
}

TEST(FlowImproveTest, CanGrowBeyondReference) {
  // Reference = half a clique of a dumbbell; FlowImprove should expand
  // to the whole clique (MQI could only shrink).
  const Graph g = DumbbellGraph(8, 2);
  std::vector<NodeId> ref = {0, 1, 2, 3};  // Half of the left K8.
  const FlowImproveResult result = FlowImprove(g, ref);
  EXPECT_GT(result.set.size(), ref.size());
  // The improved set should achieve (nearly) the bridge cut.
  EXPECT_LE(result.stats.cut, 1.0 + 1e-9);
}

TEST(FlowImproveTest, PerfectSetIsFixpoint) {
  const Graph g = DumbbellGraph(6, 0);
  std::vector<NodeId> clique;
  for (NodeId u = 0; u < 6; ++u) clique.push_back(u);
  const double before = Conductance(g, clique);
  const FlowImproveResult result = FlowImprove(g, clique);
  EXPECT_NEAR(result.stats.conductance, before, 1e-12);
  EXPECT_EQ(result.set.size(), 6u);
}

TEST(FlowImproveTest, QuotientDecreasesMonotonically) {
  Rng rng(3);
  const Graph g = CavemanGraph(4, 8);
  // A sloppy reference: one clique plus random extras.
  std::vector<NodeId> ref;
  for (NodeId u = 0; u < 8; ++u) ref.push_back(u);
  ref.push_back(12);
  ref.push_back(20);
  const double before = Conductance(g, ref);
  const FlowImproveResult result = FlowImprove(g, ref);
  EXPECT_LE(result.quotient, before + 1e-12);
  EXPECT_LE(result.stats.conductance, before + 1e-9);
}

TEST(FlowImproveTest, OversizedReferenceUsesComplement) {
  const Graph g = CavemanGraph(3, 6);
  std::vector<NodeId> most;
  for (NodeId u = 0; u < 14; ++u) most.push_back(u);
  const FlowImproveResult result = FlowImprove(g, most);
  EXPECT_LE(result.stats.volume, result.stats.complement_volume + 1e-9);
}

TEST(FlowImproveTest, ResultOverlapsReference) {
  // FlowImprove is locally biased: its output must intersect R.
  Rng rng(4);
  const Graph g = CavemanGraph(5, 6);
  std::vector<NodeId> ref;
  for (NodeId u = 0; u < 6; ++u) ref.push_back(u);  // First clique.
  const FlowImproveResult result = FlowImprove(g, ref);
  std::vector<char> in_ref(g.NumNodes(), 0);
  for (NodeId u : ref) in_ref[u] = 1;
  int overlap = 0;
  for (NodeId u : result.set) overlap += in_ref[u];
  EXPECT_GT(overlap, 0);
}

}  // namespace
}  // namespace impreg
