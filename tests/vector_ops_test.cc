#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace impreg {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  const Vector x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(NormInf({-7.0, 2.0}), 7.0);
}

TEST(VectorOpsTest, AxpyAndScale) {
  Vector y = {1.0, 1.0};
  Axpy(2.0, {1.0, -1.0}, y);
  EXPECT_EQ(y, (Vector{3.0, -1.0}));
  Scale(0.5, y);
  EXPECT_EQ(y, (Vector{1.5, -0.5}));
}

TEST(VectorOpsTest, NormalizeReturnsNormAndUnitizes) {
  Vector x = {0.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Normalize(x), 5.0);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-15);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoop) {
  Vector x = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(Normalize(x), 0.0);
  EXPECT_EQ(x, (Vector{0.0, 0.0}));
}

TEST(VectorOpsTest, ProjectOutMakesOrthogonal) {
  const Vector d = {1.0, 1.0, 0.0};
  Vector x = {2.0, 0.0, 5.0};
  ProjectOut(d, x);
  EXPECT_NEAR(Dot(d, x), 0.0, 1e-14);
  EXPECT_DOUBLE_EQ(x[2], 5.0);  // Orthogonal component untouched.
}

TEST(VectorOpsTest, ProjectOutZeroDirectionIsNoop) {
  Vector x = {1.0, 2.0};
  ProjectOut({0.0, 0.0}, x);
  EXPECT_EQ(x, (Vector{1.0, 2.0}));
}

TEST(VectorOpsTest, SumAndDistances) {
  EXPECT_DOUBLE_EQ(Sum({1.0, 2.0, -0.5}), 2.5);
  EXPECT_DOUBLE_EQ(DistanceL2({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceL1({1.0, -1.0}, {0.0, 1.0}), 3.0);
}

TEST(VectorOpsTest, DistanceUpToSign) {
  const Vector x = {1.0, 0.0};
  const Vector y = {-1.0, 0.0};
  EXPECT_DOUBLE_EQ(DistanceUpToSign(x, y), 0.0);
  EXPECT_DOUBLE_EQ(DistanceUpToSign(x, x), 0.0);
  EXPECT_GT(DistanceUpToSign(x, {0.0, 1.0}), 1.0);
}

TEST(VectorOpsTest, WeightedDot) {
  EXPECT_DOUBLE_EQ(WeightedDot({2.0, 3.0}, {1.0, 1.0}, {1.0, 2.0}), 8.0);
}

}  // namespace
}  // namespace impreg
