#include "partition/spectral_kway.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "flow/recursive_partition.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(SpectralKwayTest, RecoversCavemanCliquesExactly) {
  const Graph g = CavemanGraph(4, 8);
  const SpectralClusteringResult result = SpectralClusterKway(g, 4);
  // Each clique monochromatic, all four labels used.
  std::set<int> labels_used;
  for (int c = 0; c < 4; ++c) {
    const int label = result.labels[c * 8];
    labels_used.insert(label);
    for (NodeId i = 0; i < 8; ++i) {
      EXPECT_EQ(result.labels[c * 8 + i], label) << "clique " << c;
    }
  }
  EXPECT_EQ(labels_used.size(), 4u);
  EXPECT_DOUBLE_EQ(result.cut, 4.0);  // The four ring bridges.
}

TEST(SpectralKwayTest, RecoversPlantedBlocks) {
  Rng rng(1);
  const Graph g = PlantedPartition(3, 60, 0.3, 0.01, rng);
  const SpectralClusteringResult result = SpectralClusterKway(g, 3);
  // Majority label per block should be distinct and dominant.
  std::set<int> majorities;
  for (int b = 0; b < 3; ++b) {
    std::vector<int> counts(3, 0);
    for (NodeId i = 0; i < 60; ++i) ++counts[result.labels[b * 60 + i]];
    const int majority = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    EXPECT_GT(counts[majority], 50) << "block " << b;
    majorities.insert(majority);
  }
  EXPECT_EQ(majorities.size(), 3u);
}

TEST(SpectralKwayTest, SizesAndLabelsConsistent) {
  Rng rng(2);
  const Graph g = ErdosRenyi(80, 0.1, rng);
  const SpectralClusteringResult result = SpectralClusterKway(g, 5);
  std::int64_t total = 0;
  for (std::int64_t s : result.sizes) total += s;
  EXPECT_EQ(total, 80);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
  ASSERT_EQ(result.eigenvalues.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LE(result.eigenvalues[i - 1], result.eigenvalues[i] + 1e-12);
  }
}

TEST(SpectralKwayTest, CutMatchesKwayCutHelper) {
  Rng rng(3);
  const Graph g = ErdosRenyi(60, 0.15, rng);
  const SpectralClusteringResult result = SpectralClusterKway(g, 4);
  EXPECT_DOUBLE_EQ(result.cut, KwayCut(g, result.labels));
}

TEST(SpectralKwayTest, ComparableToRecursiveBisectionOnStructure) {
  // On a graph with genuine k-block structure, both partitioners find
  // (near-)optimal cuts.
  const Graph g = CavemanGraph(4, 10);
  const SpectralClusteringResult spectral = SpectralClusterKway(g, 4);
  const KwayResult flow = KwayPartition(g, 4);
  EXPECT_LE(spectral.cut, 8.0);
  EXPECT_LE(flow.cut, 8.0);
}

TEST(SpectralKwayTest, DeterministicGivenSeed) {
  Rng rng(4);
  const Graph g = ErdosRenyi(50, 0.2, rng);
  const SpectralClusteringResult a = SpectralClusterKway(g, 3);
  const SpectralClusteringResult b = SpectralClusterKway(g, 3);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SpectralKwayTest, InvalidArgumentsDie) {
  const Graph g = PathGraph(5);
  EXPECT_DEATH(SpectralClusterKway(g, 1), "");
  EXPECT_DEATH(SpectralClusterKway(g, 6), "");
  GraphBuilder edgeless(4);
  EXPECT_DEATH(SpectralClusterKway(edgeless.Build(), 2), "no edges");
}

}  // namespace
}  // namespace impreg
