#include "graph/bridges.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"
#include "partition/conductance.h"

namespace impreg {
namespace {

TEST(BridgesTest, EveryTreeEdgeIsABridge) {
  const Graph g = CompleteBinaryTree(15);
  EXPECT_EQ(FindBridges(g).size(), 14u);
  EXPECT_EQ(FindBridges(PathGraph(10)).size(), 9u);
  EXPECT_EQ(FindBridges(StarGraph(8)).size(), 7u);
}

TEST(BridgesTest, CyclesHaveNoBridges) {
  EXPECT_TRUE(FindBridges(CycleGraph(8)).empty());
  EXPECT_TRUE(FindBridges(CompleteGraph(6)).empty());
  EXPECT_TRUE(FindBridges(TorusGraph(4, 4)).empty());
}

TEST(BridgesTest, DumbbellBridgePath) {
  // Two cliques joined through a 2-node path: 3 bridges.
  const Graph g = DumbbellGraph(5, 2);
  const std::vector<Bridge> bridges = FindBridges(g);
  EXPECT_EQ(bridges.size(), 3u);
}

TEST(BridgesTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = ErdosRenyi(24, 0.12, rng);
    const std::vector<Bridge> fast = FindBridges(g);
    // Brute force: an edge is a bridge iff removing it increases the
    // number of components.
    const int base_components = CountComponents(g);
    std::vector<Bridge> brute;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (const Arc& arc : g.Neighbors(u)) {
        if (arc.head <= u) continue;
        GraphBuilder builder(g.NumNodes());
        for (NodeId x = 0; x < g.NumNodes(); ++x) {
          for (const Arc& a : g.Neighbors(x)) {
            if (a.head > x && !(x == u && a.head == arc.head)) {
              builder.AddEdge(x, a.head, a.weight);
            }
          }
        }
        if (CountComponents(builder.Build()) > base_components) {
          brute.push_back({u, arc.head});
        }
      }
    }
    auto sorter = [](const Bridge& a, const Bridge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    };
    std::vector<Bridge> fast_sorted = fast;
    std::sort(fast_sorted.begin(), fast_sorted.end(), sorter);
    std::sort(brute.begin(), brute.end(), sorter);
    ASSERT_EQ(fast_sorted.size(), brute.size()) << "trial " << trial;
    for (std::size_t i = 0; i < brute.size(); ++i) {
      EXPECT_EQ(fast_sorted[i].u, brute[i].u);
      EXPECT_EQ(fast_sorted[i].v, brute[i].v);
    }
  }
}

TEST(BridgesTest, SelfLoopsAreNotBridges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 1, 2.0);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build();
  EXPECT_EQ(FindBridges(g).size(), 2u);
}

TEST(WhiskersTest, LollipopTailIsOneWhisker) {
  const Graph g = LollipopGraph(8, 5);
  const std::vector<Whisker> whiskers = FindWhiskers(g);
  ASSERT_EQ(whiskers.size(), 1u);
  EXPECT_EQ(whiskers[0].nodes.size(), 5u);  // The whole tail.
  // The whisker cut is a single edge.
  const CutStats stats = ComputeCutStats(g, whiskers[0].nodes);
  EXPECT_DOUBLE_EQ(stats.cut, 1.0);
}

TEST(WhiskersTest, BridgelessGraphHasNoWhiskers) {
  EXPECT_TRUE(FindWhiskers(CycleGraph(10)).empty());
  EXPECT_TRUE(FindWhiskers(CompleteGraph(5)).empty());
}

TEST(WhiskersTest, RecoverAllPlantedWhiskers) {
  Rng rng(7);
  SocialGraphParams params;
  params.core_nodes = 2000;
  params.num_communities = 0;  // Communities attach with ≥ 1 edge each;
                               // keep the test about whiskers only.
  params.num_whiskers = 40;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const std::vector<Whisker> found = FindWhiskers(sg.graph);
  // Every planted whisker must appear as (a subset of) some found
  // whisker: its single attachment edge is a bridge.
  std::vector<int> owner(sg.graph.NumNodes(), -1);
  for (std::size_t i = 0; i < found.size(); ++i) {
    for (NodeId u : found[i].nodes) owner[u] = static_cast<int>(i);
  }
  for (const auto& planted : sg.whiskers) {
    const int w = owner[planted[0]];
    ASSERT_GE(w, 0);
    for (NodeId u : planted) EXPECT_EQ(owner[u], w);
  }
}

TEST(WhiskersTest, WhiskerCutIsAlwaysOneBridge) {
  Rng rng(8);
  SocialGraphParams params;
  params.core_nodes = 1200;
  params.num_communities = 3;
  params.num_whiskers = 25;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  for (const Whisker& w : FindWhiskers(sg.graph)) {
    const CutStats stats = ComputeCutStats(sg.graph, w.nodes);
    EXPECT_DOUBLE_EQ(stats.cut, 1.0);
    EXPECT_DOUBLE_EQ(stats.volume, w.volume);
  }
}

TEST(WhiskersTest, SortedByVolumeDescending) {
  const Graph g = [&] {
    GraphBuilder b(20);
    // Core triangle.
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(2, 0);
    // Short whisker (2 nodes) off node 0.
    b.AddEdge(0, 3);
    b.AddEdge(3, 4);
    // Long whisker (5 nodes) off node 1.
    b.AddEdge(1, 5);
    for (NodeId i = 5; i < 9; ++i) b.AddEdge(i, i + 1);
    return b.Build();
  }();
  const std::vector<Whisker> whiskers = FindWhiskers(g);
  ASSERT_EQ(whiskers.size(), 2u);
  EXPECT_GE(whiskers[0].volume, whiskers[1].volume);
  EXPECT_EQ(whiskers[0].nodes.size(), 5u);
  EXPECT_EQ(whiskers[1].nodes.size(), 2u);
}

}  // namespace
}  // namespace impreg
