// Unit tests for the parallel execution layer (core/parallel.h):
// chunking, determinism of the ordered reduce, exception propagation,
// the nested-region serial fallback, and thread-count configuration.

#include "core/parallel.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace impreg {
namespace {

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::atomic<int> calls{0};
  std::int64_t begin = -1, end = -1;
  ParallelFor(3, 10, 100, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    begin = b;
    end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(begin, 3);
  EXPECT_EQ(end, 10);
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  const ScopedNumThreads threads(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(0, 1000, 7, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) touched[i]++;
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  auto boundaries = [](int num_threads) {
    const ScopedNumThreads threads(num_threads);
    std::mutex mu;
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    ParallelFor(10, 523, 37, [&](std::int64_t b, std::int64_t e) {
      const std::lock_guard<std::mutex> lock(mu);
      seen.emplace(b, e);
    });
    return seen;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(serial.size(), 14u);  // ceil(513 / 37).
  EXPECT_EQ(boundaries(3), serial);
  EXPECT_EQ(boundaries(8), serial);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  const ScopedNumThreads threads(4);
  EXPECT_THROW(ParallelFor(0, 1000, 10,
                           [&](std::int64_t b, std::int64_t) {
                             if (b >= 500) {
                               throw std::runtime_error("kernel fault");
                             }
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ExceptionsPropagateOnSerialPathToo) {
  const ScopedNumThreads threads(1);
  EXPECT_THROW(ParallelFor(0, 100, 10,
                           [&](std::int64_t, std::int64_t) {
                             throw std::runtime_error("serial fault");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallsFallBackToSerial) {
  const ScopedNumThreads threads(4);
  std::atomic<bool> saw_nested_region{false};
  std::atomic<bool> nested_escaped_thread{false};
  ParallelFor(0, 8, 1, [&](std::int64_t, std::int64_t) {
    if (internal::InParallelRegion()) saw_nested_region = true;
    const std::thread::id outer_thread = std::this_thread::get_id();
    // The inner region must run inline on the outer worker's thread.
    ParallelFor(0, 64, 1, [&](std::int64_t, std::int64_t) {
      if (std::this_thread::get_id() != outer_thread) {
        nested_escaped_thread = true;
      }
    });
  });
  EXPECT_TRUE(saw_nested_region.load());
  EXPECT_FALSE(nested_escaped_thread.load());
}

TEST(ParallelForTest, ThreadCountChangesTakeEffect) {
  auto distinct_threads = [](int num_threads) {
    const ScopedNumThreads threads(num_threads);
    std::mutex mu;
    std::set<std::thread::id> ids;
    ParallelFor(0, 64, 1, [&](std::int64_t, std::int64_t) {
      const std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    return ids;
  };
  // With 1 thread everything runs on the caller.
  const auto serial_ids = distinct_threads(1);
  EXPECT_EQ(serial_ids.size(), 1u);
  EXPECT_EQ(*serial_ids.begin(), std::this_thread::get_id());
  // With T threads at most T participants touch the region.
  EXPECT_LE(distinct_threads(3).size(), 3u);
  EXPECT_LE(distinct_threads(8).size(), 8u);
}

TEST(ParallelForTest, ScopedNumThreadsRestores) {
  ImpregSetNumThreads(2);
  EXPECT_EQ(ImpregNumThreads(), 2);
  {
    const ScopedNumThreads threads(6);
    EXPECT_EQ(ImpregNumThreads(), 6);
  }
  EXPECT_EQ(ImpregNumThreads(), 2);
  ImpregSetNumThreads(0);  // Back to automatic.
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const double result = ParallelReduce(
      4, 4, 8, 1.5,
      [](std::int64_t, std::int64_t) { return 100.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(result, 1.5);
}

TEST(ParallelReduceTest, SumsAllChunks) {
  const ScopedNumThreads threads(4);
  const std::int64_t n = 100000;
  const std::int64_t sum = ParallelReduce(
      0, n, 1024, std::int64_t{0},
      [](std::int64_t b, std::int64_t e) {
        std::int64_t s = 0;
        for (std::int64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduceTest, CombineRunsInChunkOrder) {
  // A non-commutative combine (sequence append) exposes the fold order:
  // it must be chunk 0, 1, 2, … regardless of the thread count.
  for (const int num_threads : {1, 2, 5, 8}) {
    const ScopedNumThreads threads(num_threads);
    using Chunks = std::vector<std::int64_t>;
    const Chunks order = ParallelReduce(
        0, 170, 10, Chunks{},
        [](std::int64_t b, std::int64_t) { return Chunks{b / 10}; },
        [](Chunks acc, const Chunks& chunk) {
          acc.insert(acc.end(), chunk.begin(), chunk.end());
          return acc;
        });
    ASSERT_EQ(order.size(), 17u) << num_threads;
    for (std::int64_t c = 0; c < 17; ++c) EXPECT_EQ(order[c], c);
  }
}

TEST(ParallelReduceTest, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  Rng rng(1234);
  std::vector<double> values(50000);
  for (double& v : values) v = rng.NextGaussian();
  auto reduce = [&](int num_threads) {
    const ScopedNumThreads threads(num_threads);
    return ParallelReduce(
        0, static_cast<std::int64_t>(values.size()), 777, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = reduce(1);
  for (const int num_threads : {2, 3, 4, 8, 16}) {
    EXPECT_EQ(serial, reduce(num_threads)) << num_threads;
  }
}

TEST(ParallelReduceTest, ExceptionsPropagate) {
  const ScopedNumThreads threads(4);
  EXPECT_THROW(ParallelReduce(
                   0, 1000, 10, 0.0,
                   [](std::int64_t b, std::int64_t) -> double {
                     if (b == 500) throw std::runtime_error("map fault");
                     return 1.0;
                   },
                   [](double a, double b) { return a + b; }),
               std::runtime_error);
}

TEST(ParallelConfigTest, NumThreadsIsAtLeastOne) {
  ImpregSetNumThreads(0);
  EXPECT_GE(ImpregNumThreads(), 1);
  ImpregSetNumThreads(-5);
  EXPECT_GE(ImpregNumThreads(), 1);
}

TEST(ParallelConfigTest, ChunkCountMatchesCeilDiv) {
  EXPECT_EQ(internal::ChunkCount(0, 0, 4), 0);
  EXPECT_EQ(internal::ChunkCount(0, 1, 4), 1);
  EXPECT_EQ(internal::ChunkCount(0, 4, 4), 1);
  EXPECT_EQ(internal::ChunkCount(0, 5, 4), 2);
  EXPECT_EQ(internal::ChunkCount(3, 11, 4), 2);
  EXPECT_EQ(internal::ChunkCount(0, 100, 0), 100);  // Grain clamps to 1.
}

}  // namespace
}  // namespace impreg
