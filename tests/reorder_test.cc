// Cache-aware relabeling (graph/reorder.h): permutation validity and
// round-trips on edge-case graphs (empty, isolated nodes, disconnected
// components, self-loops), bitwise label-invariance of the relabeled
// CSR (ApplyNodePermutation keeps row arc order), and end-to-end
// bit-identity of the consumers — push PPR, dense engine queries, and
// the walk-family NCP portfolio — against their unreordered twins at
// one and eight threads.

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/impreg.h"

namespace impreg {
namespace {

const ReorderMethod kAllMethods[] = {
    ReorderMethod::kIdentity, ReorderMethod::kBfs, ReorderMethod::kRcm,
    ReorderMethod::kDegreeSort};

const ReorderMethod kActiveMethods[] = {
    ReorderMethod::kBfs, ReorderMethod::kRcm, ReorderMethod::kDegreeSort};

void ExpectBitIdentical(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Content equality of two graphs (offsets, heads, weights in order,
/// plus the derived aggregates bitwise). Does NOT require RowsSorted to
/// match — a permuted-then-unpermuted graph has unsorted rows.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumArcs(), b.NumArcs());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(std::bit_cast<std::uint64_t>(a.TotalVolume()),
            std::bit_cast<std::uint64_t>(b.TotalVolume()));
  for (NodeId u = 0; u < a.NumNodes(); ++u) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.Degree(u)),
              std::bit_cast<std::uint64_t>(b.Degree(u)))
        << "degree of node " << u;
    const auto ah = a.Heads(u);
    const auto bh = b.Heads(u);
    const auto aw = a.Weights(u);
    const auto bw = b.Weights(u);
    ASSERT_EQ(ah.size(), bh.size()) << "row " << u;
    for (std::size_t i = 0; i < ah.size(); ++i) {
      ASSERT_EQ(ah[i], bh[i]) << "row " << u << " arc " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(aw[i]),
                std::bit_cast<std::uint64_t>(bw[i]))
          << "row " << u << " arc " << i;
    }
  }
}

Vector GaussianVector(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  Vector x(n);
  for (double& v : x) v = rng.NextGaussian();
  return x;
}

/// The edge-case menagerie the relabelers must survive: empty graph,
/// all-isolated nodes, disconnected components (with an isolated node
/// between them), self-loops (including a lollipop-ish mixed case).
struct NamedGraph {
  std::string name;
  Graph graph;
};

std::vector<NamedGraph> EdgeCaseGraphs() {
  std::vector<NamedGraph> cases;
  cases.push_back({"empty", Graph()});
  cases.push_back({"isolated_only", GraphBuilder(7).Build()});
  {
    // Two components of different shapes with an isolated node (id 4)
    // wedged between them: triangle {0,1,2}, path {5,6,7,8}, node 3
    // attached to the triangle.
    GraphBuilder b(9);
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(2, 0);
    b.AddEdge(3, 0, 2.5);
    b.AddEdge(5, 6);
    b.AddEdge(6, 7);
    b.AddEdge(7, 8);
    cases.push_back({"disconnected", b.Build()});
  }
  {
    // Self-loops: one pure self-loop node, one self-loop on a path.
    GraphBuilder b(5);
    b.AddEdge(0, 0, 3.0);
    b.AddEdge(1, 2);
    b.AddEdge(2, 3, 0.5);
    b.AddEdge(2, 2, 2.0);
    cases.push_back({"self_loops", b.Build()});
  }
  {
    Rng rng(21);
    // Sparse ER at this size has isolated nodes and many components.
    cases.push_back({"sparse_er", ErdosRenyi(400, 1.0 / 400.0, rng)});
  }
  cases.push_back({"caveman", CavemanGraph(6, 8)});
  return cases;
}

TEST(ReorderTest, MethodNamesRoundTrip) {
  for (ReorderMethod m : kAllMethods) {
    ReorderMethod parsed = ReorderMethod::kIdentity;
    EXPECT_TRUE(ReorderMethodFromName(ReorderMethodName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  ReorderMethod parsed = ReorderMethod::kRcm;
  EXPECT_FALSE(ReorderMethodFromName("hilbert", &parsed));
  EXPECT_EQ(parsed, ReorderMethod::kRcm);
}

TEST(ReorderTest, PermutationIsValidOnEdgeCases) {
  for (const NamedGraph& c : EdgeCaseGraphs()) {
    for (ReorderMethod m : kAllMethods) {
      SCOPED_TRACE(c.name + std::string("/") + ReorderMethodName(m));
      const std::vector<NodeId> perm = ComputeReorderPermutation(c.graph, m);
      ASSERT_TRUE(IsPermutation(perm, c.graph.NumNodes()));
      const std::vector<NodeId> inverse = InvertPermutation(perm);
      ASSERT_TRUE(IsPermutation(inverse, c.graph.NumNodes()));
      for (NodeId u = 0; u < c.graph.NumNodes(); ++u) {
        EXPECT_EQ(inverse[perm[u]], u);
        EXPECT_EQ(perm[inverse[u]], u);
      }
    }
  }
}

TEST(ReorderTest, ApplyThenInverseRoundTripsTheGraph) {
  for (const NamedGraph& c : EdgeCaseGraphs()) {
    for (ReorderMethod m : kActiveMethods) {
      SCOPED_TRACE(c.name + std::string("/") + ReorderMethodName(m));
      const std::vector<NodeId> perm = ComputeReorderPermutation(c.graph, m);
      const Graph forward = ApplyNodePermutation(c.graph, perm);
      EXPECT_FALSE(forward.RowsSorted());
      // Aggregates are copied, not recomputed: bitwise equal.
      EXPECT_EQ(forward.NumEdges(), c.graph.NumEdges());
      EXPECT_EQ(std::bit_cast<std::uint64_t>(forward.TotalVolume()),
                std::bit_cast<std::uint64_t>(c.graph.TotalVolume()));
      const Graph back =
          ApplyNodePermutation(forward, InvertPermutation(perm));
      ExpectSameGraph(back, c.graph);
    }
  }
}

TEST(ReorderTest, EdgeWeightScansUnsortedRows) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(0, 3, 4.0);
  b.AddEdge(1, 2, 1.5);
  const Graph g = b.Build();
  // Reverse the labels so relabeled rows are no longer head-sorted.
  const std::vector<NodeId> perm = {3, 2, 1, 0};
  const Graph r = ApplyNodePermutation(g, perm);
  ASSERT_FALSE(r.RowsSorted());
  EXPECT_DOUBLE_EQ(r.EdgeWeight(3, 2), 2.0);  // was (0, 1)
  EXPECT_DOUBLE_EQ(r.EdgeWeight(3, 0), 4.0);  // was (0, 3)
  EXPECT_DOUBLE_EQ(r.EdgeWeight(2, 1), 1.5);  // was (1, 2)
  EXPECT_DOUBLE_EQ(r.EdgeWeight(3, 1), 0.0);
  EXPECT_TRUE(r.HasEdge(0, 3));
  EXPECT_FALSE(r.HasEdge(0, 1));
}

TEST(ReorderTest, VectorRoundTripIsBitwise) {
  for (const NamedGraph& c : EdgeCaseGraphs()) {
    for (ReorderMethod m : kAllMethods) {
      SCOPED_TRACE(c.name + std::string("/") + ReorderMethodName(m));
      const ReorderedGraph rg(c.graph, m);
      const Vector x = GaussianVector(c.graph.NumNodes(), 31);
      ExpectBitIdentical(rg.ToOriginalVector(rg.ToReorderedVector(x)), x);
      for (NodeId u = 0; u < c.graph.NumNodes(); ++u) {
        EXPECT_EQ(rg.ToOriginal(rg.ToReordered(u)), u);
      }
    }
  }
}

TEST(ReorderTest, IdentityWrapperPassesThrough) {
  const Graph g = CavemanGraph(4, 6);
  const ReorderedGraph rg(g, ReorderMethod::kIdentity);
  EXPECT_FALSE(rg.active());
  EXPECT_EQ(&rg.graph(), &g);
  EXPECT_EQ(&rg.original(), &g);
  EXPECT_EQ(rg.diagnostics().status, SolveStatus::kConverged);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(rg.locality_original()),
            std::bit_cast<std::uint64_t>(rg.locality_reordered()));
}

TEST(ReorderTest, SpmvIsBitwiseLabelInvariant) {
  for (const NamedGraph& c : EdgeCaseGraphs()) {
    if (c.graph.NumNodes() == 0) continue;
    const Vector x = GaussianVector(c.graph.NumNodes(), 77);
    const NormalizedLaplacianOperator original_op(c.graph);
    const Vector expected = original_op.Apply(x);
    for (ReorderMethod m : kActiveMethods) {
      SCOPED_TRACE(c.name + std::string("/") + ReorderMethodName(m));
      const ReorderedGraph rg(c.graph, m);
      ASSERT_TRUE(rg.active());
      const NormalizedLaplacianOperator reordered_op(rg.graph());
      const Vector y = reordered_op.Apply(rg.ToReorderedVector(x));
      ExpectBitIdentical(rg.ToOriginalVector(y), expected);
    }
  }
}

TEST(ReorderTest, SpmmBatchIsBitwiseLabelInvariant) {
  const Graph g = CavemanGraph(10, 12);
  const ReorderedGraph rg(g, ReorderMethod::kRcm);
  ASSERT_TRUE(rg.active());
  const LazyWalkOperator original_op(g, 0.5);
  const LazyWalkOperator reordered_op(rg.graph(), 0.5);
  std::vector<Vector> columns;
  std::vector<Vector> permuted;
  for (int j = 0; j < 5; ++j) {
    columns.push_back(GaussianVector(g.NumNodes(), 100 + j));
    permuted.push_back(rg.ToReorderedVector(columns.back()));
  }
  const std::vector<Vector> expected = original_op.ApplyBatch(columns);
  const std::vector<Vector> got = reordered_op.ApplyBatch(permuted);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    ExpectBitIdentical(rg.ToOriginalVector(got[j]), expected[j]);
  }
}

TEST(ReorderTest, PushPprIsBitwiseLabelInvariantAtOneAndEightThreads) {
  for (const NamedGraph& c : EdgeCaseGraphs()) {
    if (c.graph.NumNodes() == 0 || c.graph.NumEdges() == 0) continue;
    // Seed on a node with edges so the push actually runs.
    NodeId seed_node = 0;
    while (c.graph.Degree(seed_node) <= 0.0) ++seed_node;
    const Vector seed = SingleNodeSeed(c.graph, seed_node);
    PushOptions options;
    options.alpha = 0.1;
    options.epsilon = 1e-7;
    const PushResult expected = ApproximatePageRank(c.graph, seed, options);
    for (ReorderMethod m : kAllMethods) {
      SCOPED_TRACE(c.name + std::string("/") + ReorderMethodName(m));
      const ReorderedGraph rg(c.graph, m);
      for (int threads : {1, 8}) {
        const ScopedNumThreads scoped(threads);
        const PushResult got = ApproximatePageRank(rg, seed, options);
        EXPECT_EQ(got.pushes, expected.pushes);
        EXPECT_EQ(got.work, expected.work);
        EXPECT_EQ(got.support, expected.support);
        EXPECT_EQ(got.converged, expected.converged);
        ExpectBitIdentical(got.p, expected.p);
        ExpectBitIdentical(got.residual, expected.residual);
      }
    }
  }
}

TEST(ReorderTest, PushCallbackSeesOriginalLabelsAndMasses) {
  const Graph g = CavemanGraph(6, 8);
  PushOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-5;
  struct Event {
    std::int64_t push;
    NodeId node;
    double mass;
  };
  std::vector<Event> plain, relabeled;
  options.on_push = [&plain](std::int64_t push, NodeId u, double mass) {
    plain.push_back({push, u, mass});
  };
  const Vector seed = SingleNodeSeed(g, 3);
  ApproximatePageRank(g, seed, options);
  const ReorderedGraph rg(g, ReorderMethod::kRcm);
  options.on_push = [&relabeled](std::int64_t push, NodeId u, double mass) {
    relabeled.push_back({push, u, mass});
  };
  ApproximatePageRank(rg, seed, options);
  ASSERT_EQ(plain.size(), relabeled.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].push, relabeled[i].push);
    EXPECT_EQ(plain[i].node, relabeled[i].node);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(plain[i].mass),
              std::bit_cast<std::uint64_t>(relabeled[i].mass));
  }
}

TEST(ReorderTest, PushLocalClusterMatchesOriginal) {
  const Graph g = CavemanGraph(8, 10);
  PushOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-6;
  const LocalClusterResult expected = PushLocalCluster(g, 5, options);
  for (ReorderMethod m : kActiveMethods) {
    SCOPED_TRACE(ReorderMethodName(m));
    const ReorderedGraph rg(g, m);
    const LocalClusterResult got = PushLocalCluster(rg, 5, options);
    EXPECT_EQ(got.set, expected.set);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.stats.conductance),
              std::bit_cast<std::uint64_t>(expected.stats.conductance));
    ExpectBitIdentical(got.push.p, expected.push.p);
  }
}

TEST(ReorderTest, RcmImprovesLocalityOnShuffledGrid) {
  // A grid row-major labeling is already local; shuffle it so the
  // relabelers have something to recover, then check RCM gets most of
  // the locality back.
  const Graph grid = GridGraph(32, 32);
  Rng rng(5);
  std::vector<NodeId> shuffle(grid.NumNodes());
  for (NodeId u = 0; u < grid.NumNodes(); ++u) shuffle[u] = u;
  for (NodeId u = grid.NumNodes() - 1; u > 0; --u) {
    const NodeId j = static_cast<NodeId>(rng.NextBounded(u + 1));
    std::swap(shuffle[u], shuffle[j]);
  }
  const Graph shuffled = ApplyNodePermutation(grid, shuffle);
  const ReorderedGraph rg(shuffled, ReorderMethod::kRcm);
  ASSERT_TRUE(rg.active());
  EXPECT_GT(rg.locality_original(), 100.0);  // Shuffled: ~n/3 distance.
  EXPECT_LT(rg.locality_reordered(), 0.25 * rg.locality_original());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(
                AvgNeighborLabelDistance(rg.graph())),
            std::bit_cast<std::uint64_t>(rg.locality_reordered()));
}

TEST(ReorderTest, EngineDenseQueriesAreBitIdenticalUnderReorder) {
  const Graph g = CavemanGraph(8, 12);
  Query q;
  q.method = QueryMethod::kPprDense;
  q.seeds = {3, 40, 41};
  q.gamma = 0.2;
  q.tolerance = 1e-12;
  QueryEngine::Options plain_options;
  plain_options.enable_cache = false;
  QueryEngine::Options reorder_options = plain_options;
  reorder_options.graph.reorder = ReorderMethod::kRcm;
  QueryEngine plain(g, plain_options);
  const QueryResponse expected = plain.Run(q);
  for (int threads : {1, 8}) {
    const ScopedNumThreads scoped(threads);
    QueryEngine reordered(g, reorder_options);
    // A mixed batch exercises the grouped ApplyBatch dense path.
    Query q2 = q;
    q2.seeds = {17};
    const std::vector<QueryResponse> got = reordered.RunBatch({q, q2});
    EXPECT_EQ(got[0].work, expected.work);
    EXPECT_EQ(got[0].status, expected.status);
    ExpectBitIdentical(got[0].scores, expected.scores);
    const QueryResponse expected2 = plain.Run(q2);
    ExpectBitIdentical(got[1].scores, expected2.scores);
  }
}

TEST(ReorderTest, EngineCommunityQueriesStayDeterministicUnderReorder) {
  // hk-relax and nibble iterate hash maps, so reordering is only
  // promised deterministic run-to-run (not bitwise vs the original
  // labeling) — pin exactly that, plus sane answers in original labels.
  const Graph g = CavemanGraph(8, 12);
  QueryEngine::Options options;
  options.enable_cache = false;
  options.graph.reorder = ReorderMethod::kRcm;
  for (QueryMethod method : {QueryMethod::kHeatKernel, QueryMethod::kNibble}) {
    Query q;
    q.method = method;
    q.seeds = {30};
    QueryEngine a(g, options);
    QueryEngine b(g, options);
    const QueryResponse first = a.Run(q);
    const QueryResponse second = b.Run(q);
    ASSERT_FALSE(first.set.empty());
    for (NodeId u : first.set) EXPECT_TRUE(g.IsValidNode(u));
    EXPECT_EQ(first.set, second.set);
    ExpectBitIdentical(first.scores, second.scores);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(first.conductance),
              std::bit_cast<std::uint64_t>(second.conductance));
    // The community should be (contained in) the seed's cave.
    const CutStats stats = ComputeCutStats(g, first.set);
    EXPECT_LT(stats.conductance, 0.5);
  }
}

TEST(ReorderTest, EngineSurvivesEdgeInsertionsWithReorder) {
  // The relabeled snapshot is epoch-tracked: grow the graph between
  // queries and check answers keep matching an unreordered engine.
  const Graph g = CavemanGraph(4, 8);
  QueryEngine::Options reorder_options;
  reorder_options.graph.reorder = ReorderMethod::kBfs;
  QueryEngine reordered(g, reorder_options);
  QueryEngine plain(g);
  Query q;
  q.method = QueryMethod::kPprDense;
  q.seeds = {2};
  q.tolerance = 1e-11;
  ExpectBitIdentical(reordered.Run(q).scores, plain.Run(q).scores);
  reordered.AddEdge(0, 17, 2.0);
  plain.AddEdge(0, 17, 2.0);
  EXPECT_EQ(reordered.Epoch(), plain.Epoch());
  ExpectBitIdentical(reordered.Run(q).scores, plain.Run(q).scores);
}

TEST(ReorderTest, WalkFamilyPortfolioIsBitwiseLabelInvariant) {
  const Graph g = CavemanGraph(10, 10);
  WalkFamilyOptions options;
  options.num_seeds = 6;
  options.checkpoints = {2, 8, 32};
  const std::vector<NcpCluster> expected = WalkFamilyClusters(g, options);
  WalkFamilyOptions relabeled = options;
  relabeled.reorder = ReorderMethod::kRcm;
  for (int threads : {1, 8}) {
    const ScopedNumThreads scoped(threads);
    const std::vector<NcpCluster> got = WalkFamilyClusters(g, relabeled);
    ASSERT_EQ(got.size(), expected.size());
    ASSERT_FALSE(got.empty());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].nodes, expected[i].nodes);
      EXPECT_EQ(got[i].method, expected[i].method);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].stats.conductance),
                std::bit_cast<std::uint64_t>(expected[i].stats.conductance));
    }
  }
}

}  // namespace
}  // namespace impreg
