#include "regularization/sdp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "regularization/density.h"

namespace impreg {
namespace {

class SdpFeasibilityTest
    : public testing::TestWithParam<std::tuple<int, double>> {
 protected:
  Graph MakeGraph() const {
    Rng rng(std::get<0>(GetParam()));
    switch (std::get<0>(GetParam()) % 4) {
      case 0:
        return CycleGraph(12);
      case 1:
        return CavemanGraph(3, 5);
      case 2:
        return CompleteGraph(8);
      default:
        return LollipopGraph(6, 5);
    }
  }
  double Eta() const { return std::get<1>(GetParam()); }
};

TEST_P(SdpFeasibilityTest, EntropyOptimumIsFeasible) {
  const Graph g = MakeGraph();
  const RegularizedSdpSolution sol =
      SolveRegularizedSdp(g, Regularizer::kEntropy, Eta());
  const DensityDiagnostics diag = CheckDensity(g, sol.x);
  EXPECT_LT(diag.trace_defect, 1e-9);
  EXPECT_LT(diag.psd_defect, 1e-10);
  EXPECT_LT(diag.orthogonality_defect, 1e-9);
  EXPECT_LT(diag.symmetry_defect, 1e-10);
}

TEST_P(SdpFeasibilityTest, LogDetOptimumIsFeasible) {
  const Graph g = MakeGraph();
  const RegularizedSdpSolution sol =
      SolveRegularizedSdp(g, Regularizer::kLogDet, Eta());
  const DensityDiagnostics diag = CheckDensity(g, sol.x);
  EXPECT_LT(diag.trace_defect, 1e-9);
  EXPECT_LT(diag.psd_defect, 1e-10);
  EXPECT_LT(diag.orthogonality_defect, 1e-9);
  // The dual shift only needs μ > −λ₂ ≥ −2 (spectrum of ℒ ⊂ [0, 2]).
  EXPECT_GT(sol.mu, -2.0);
}

TEST_P(SdpFeasibilityTest, PNormOptimumIsFeasible) {
  const Graph g = MakeGraph();
  const RegularizedSdpSolution sol =
      SolveRegularizedSdp(g, Regularizer::kPNorm, Eta(), 1.5);
  const DensityDiagnostics diag = CheckDensity(g, sol.x);
  EXPECT_LT(diag.trace_defect, 1e-9);
  EXPECT_LT(diag.psd_defect, 1e-10);
  EXPECT_LT(diag.orthogonality_defect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndEtas, SdpFeasibilityTest,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values(0.5, 2.0, 10.0)));

TEST(SdpTest, EntropyLargeEtaApproachesRankOne) {
  // η → ∞ removes the regularizer: X* → v₂v₂ᵀ (the unregularized
  // optimum), provided λ₂ < λ₃.
  const Graph g = CavemanGraph(2, 6);  // Strong gap.
  const RegularizedSdpSolution reg =
      SolveRegularizedSdp(g, Regularizer::kEntropy, 500.0);
  const RegularizedSdpSolution exact = SolveUnregularizedSdp(g);
  EXPECT_LT(TraceDistance(reg.x, exact.x), 1e-6);
  EXPECT_NEAR(reg.rayleigh, exact.rayleigh, 1e-6);
}

TEST(SdpTest, EntropySmallEtaApproachesMaximallyMixed) {
  // η → 0 makes the entropy dominate: X* → uniform over the (n−1)-dim
  // feasible subspace, entropy → log(n−1).
  const Graph g = CycleGraph(10);
  const RegularizedSdpSolution sol =
      SolveRegularizedSdp(g, Regularizer::kEntropy, 1e-6);
  EXPECT_NEAR(VonNeumannEntropy(sol.x), std::log(9.0), 1e-3);
}

TEST(SdpTest, RayleighIncreasesAsEtaDecreases) {
  // More regularization (smaller η) ⇒ flatter density ⇒ larger Tr(ℒX).
  const Graph g = LollipopGraph(8, 6);
  double previous = -1.0;
  for (double eta : {100.0, 10.0, 1.0, 0.1}) {
    const RegularizedSdpSolution sol =
        SolveRegularizedSdp(g, Regularizer::kEntropy, eta);
    EXPECT_GT(sol.rayleigh, previous - 1e-12);
    previous = sol.rayleigh;
  }
}

TEST(SdpTest, UnregularizedObjectiveIsLambda2) {
  const Graph g = CycleGraph(12);
  const RegularizedSdpSolution sol = SolveUnregularizedSdp(g);
  // λ₂ of the 12-cycle: 1 − cos(2π/12).
  EXPECT_NEAR(sol.rayleigh, 1.0 - std::cos(2.0 * M_PI / 12.0), 1e-10);
}

TEST(SdpTest, OptimumBeatsOtherFeasiblePoints) {
  // The solver's X* must have no worse regularized objective than the
  // other regularizers' optima (which are feasible too).
  const Graph g = CavemanGraph(3, 4);
  const double eta = 3.0;
  const RegularizedSdpSolution entropy =
      SolveRegularizedSdp(g, Regularizer::kEntropy, eta);
  const RegularizedSdpSolution logdet =
      SolveRegularizedSdp(g, Regularizer::kLogDet, eta);
  const double entropy_at_logdet =
      RegularizedObjective(g, logdet.x, Regularizer::kEntropy, eta);
  EXPECT_LE(entropy.objective, entropy_at_logdet + 1e-9);
  const double logdet_at_entropy =
      RegularizedObjective(g, entropy.x, Regularizer::kLogDet, eta);
  EXPECT_LE(logdet.objective, logdet_at_entropy + 1e-9);
}

TEST(SdpTest, PNormRequiresPGreaterThanOne) {
  const Graph g = CycleGraph(6);
  EXPECT_DEATH(SolveRegularizedSdp(g, Regularizer::kPNorm, 1.0, 1.0),
               "p > 1");
}

TEST(SdpTest, DisconnectedGraphDies) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  EXPECT_DEATH(SolveRegularizedSdp(g, Regularizer::kEntropy, 1.0),
               "connected");
}

TEST(SdpTest, NonPositiveEtaDies) {
  const Graph g = CycleGraph(5);
  EXPECT_DEATH(SolveRegularizedSdp(g, Regularizer::kEntropy, 0.0),
               "positive");
}

TEST(SdpTest, ObjectiveDecomposition) {
  const Graph g = CompleteGraph(6);
  const double eta = 2.0;
  const RegularizedSdpSolution sol =
      SolveRegularizedSdp(g, Regularizer::kLogDet, eta);
  EXPECT_NEAR(sol.objective, sol.rayleigh + sol.regularizer_value / eta,
              1e-10);
  // Cross-check with the standalone evaluator.
  EXPECT_NEAR(sol.objective,
              RegularizedObjective(g, sol.x, Regularizer::kLogDet, eta),
              1e-8);
}

}  // namespace
}  // namespace impreg
