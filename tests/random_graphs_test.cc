#include "graph/random_graphs.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace impreg {
namespace {

TEST(ErdosRenyiTest, EdgeCountConcentrates) {
  Rng rng(1);
  const NodeId n = 400;
  const double p = 0.05;
  const Graph g = ErdosRenyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g.NumEdges(), expected, 5.0 * std::sqrt(expected));
  EXPECT_EQ(g.NumNodes(), n);
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(ErdosRenyi(50, 0.0, rng).NumEdges(), 0);
  EXPECT_EQ(ErdosRenyi(10, 1.0, rng).NumEdges(), 45);
}

TEST(ErdosRenyiTest, NoSelfLoopsOrParallel) {
  Rng rng(3);
  const Graph g = ErdosRenyi(100, 0.2, rng);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_FALSE(g.HasEdge(u, u));
    for (const Arc& arc : g.Neighbors(u)) {
      EXPECT_DOUBLE_EQ(arc.weight, 1.0);  // No merged parallels.
    }
  }
}

TEST(GnmTest, ExactEdgeCount) {
  Rng rng(4);
  const Graph g = GnmRandom(60, 300, rng);
  EXPECT_EQ(g.NumEdges(), 300);
  EXPECT_EQ(g.NumNodes(), 60);
}

TEST(GnmTest, FullGraph) {
  Rng rng(5);
  const Graph g = GnmRandom(8, 28, rng);
  EXPECT_EQ(g.NumEdges(), 28);
}

TEST(ChungLuTest, ExpectedDegreesRealized) {
  Rng rng(6);
  const NodeId n = 2000;
  std::vector<double> weights(n, 10.0);  // Homogeneous: like G(n,p).
  const Graph g = ChungLu(weights, rng);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_NEAR(stats.mean, 10.0, 0.5);
}

TEST(ChungLuTest, HeterogeneousDegreesTrackWeights) {
  Rng rng(7);
  const NodeId n = 3000;
  std::vector<double> weights = PowerLawWeights(n, 2.5, 8.0);
  const Graph g = ChungLu(weights, rng);
  // Total degree ≈ total weight.
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  EXPECT_NEAR(g.TotalVolume(), total_weight, 0.08 * total_weight);
  // High-weight node 0 should get a much larger degree than the median.
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(g.Degree(0), 4.0 * stats.median);
}

TEST(PowerLawWeightsTest, AverageMatches) {
  const std::vector<double> w = PowerLawWeights(1000, 2.5, 8.0);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum / 1000.0, 8.0, 1e-9);
  // Monotone decreasing.
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
}

TEST(BarabasiAlbertTest, StructureAndHubs) {
  Rng rng(8);
  const Graph g = BarabasiAlbert(1000, 3, rng);
  EXPECT_EQ(g.NumNodes(), 1000);
  EXPECT_TRUE(IsConnected(g));
  // Every non-seed node adds exactly 3 edges (merging is possible but
  // rare and only reduces the count).
  EXPECT_LE(g.NumEdges(), 3 + 997 * 3);
  EXPECT_GE(g.NumEdges(), 997 * 3 / 2);
  // Preferential attachment produces a hub well above the mean.
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.max, 5.0 * stats.mean);
}

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  Rng rng(9);
  const Graph g = WattsStrogatz(50, 4, 0.0, rng);
  EXPECT_EQ(g.NumEdges(), 100);
  for (NodeId u = 0; u < 50; ++u) EXPECT_DOUBLE_EQ(g.Degree(u), 4.0);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCount) {
  Rng rng(10);
  const Graph g = WattsStrogatz(100, 6, 0.3, rng);
  EXPECT_EQ(g.NumEdges(), 300);
  EXPECT_EQ(g.NumNodes(), 100);
}

TEST(WattsStrogatzTest, RewiringShrinksDiameter) {
  Rng rng(11);
  const Graph lattice = WattsStrogatz(300, 4, 0.0, rng);
  const Graph small_world = WattsStrogatz(300, 4, 0.2, rng);
  EXPECT_LT(EstimateDiameter(small_world), EstimateDiameter(lattice));
}

TEST(RandomRegularTest, IsSimpleAndRegular) {
  Rng rng(12);
  for (int d : {3, 4, 10}) {
    const Graph g = RandomRegular(200, d, rng);
    EXPECT_EQ(g.NumNodes(), 200);
    EXPECT_EQ(g.NumEdges(), 100 * d);
    for (NodeId u = 0; u < 200; ++u) {
      EXPECT_DOUBLE_EQ(g.Degree(u), static_cast<double>(d));
      EXPECT_FALSE(g.HasEdge(u, u));
    }
  }
}

TEST(RandomRegularTest, ThreeRegularIsConnectedWhp) {
  Rng rng(13);
  // d ≥ 3 random regular graphs are connected w.h.p.; with a fixed seed
  // this is deterministic.
  EXPECT_TRUE(IsConnected(RandomRegular(500, 3, rng)));
}

TEST(PlantedPartitionTest, BlockStructure) {
  Rng rng(14);
  const Graph g = PlantedPartition(4, 50, 0.4, 0.01, rng);
  EXPECT_EQ(g.NumNodes(), 200);
  // Count within vs across edges.
  std::int64_t within = 0, across = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (arc.head > u) {
        (u / 50 == arc.head / 50 ? within : across) += 1;
      }
    }
  }
  const double expected_within = 4 * 0.4 * 50 * 49 / 2.0;
  const double expected_across = 6 * 0.01 * 50 * 50;
  EXPECT_NEAR(within, expected_within, 5.0 * std::sqrt(expected_within));
  EXPECT_NEAR(across, expected_across, 5.0 * std::sqrt(expected_across));
}

TEST(PlantedPartitionTest, ZeroAcrossIsDisconnectedBlocks) {
  Rng rng(15);
  const Graph g = PlantedPartition(3, 20, 1.0, 0.0, rng);
  EXPECT_EQ(CountComponents(g), 3);
  EXPECT_EQ(g.NumEdges(), 3 * 190);
}


TEST(ForestFireTest, ConnectedAndSized) {
  Rng rng(20);
  const Graph g = ForestFire(500, 0.35, rng);
  EXPECT_EQ(g.NumNodes(), 500);
  EXPECT_TRUE(IsConnected(g));  // Every arrival links to its ambassador.
  EXPECT_GE(g.NumEdges(), 499);  // At least the arrival tree.
}

TEST(ForestFireTest, BurningProbabilityControlsDensity) {
  Rng rng(21);
  const Graph sparse = ForestFire(400, 0.1, rng);
  const Graph dense = ForestFire(400, 0.45, rng);
  EXPECT_GT(dense.NumEdges(), sparse.NumEdges());
}

TEST(ForestFireTest, ZeroBurningIsARandomRecursiveTree) {
  Rng rng(22);
  const Graph g = ForestFire(200, 0.0, rng);
  EXPECT_EQ(g.NumEdges(), 199);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ForestFireTest, ProducesHeavyTailAndClustering) {
  Rng rng(23);
  const Graph g = ForestFire(2000, 0.4, rng);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.max, 6.0 * stats.mean);  // Heavy tail.
}

TEST(DeterminismTest, SameSeedSameGraph) {
  Rng rng_a(99), rng_b(99);
  const Graph a = ErdosRenyi(200, 0.1, rng_a);
  const Graph b = ErdosRenyi(200, 0.1, rng_b);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId u = 0; u < a.NumNodes(); ++u) {
    const auto na = a.Neighbors(u);
    const auto nb = b.Neighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].head, nb[i].head);
    }
  }
}

}  // namespace
}  // namespace impreg
