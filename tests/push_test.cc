#include "partition/push.h"

#include <cmath>

#include <gtest/gtest.h>

#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"

namespace impreg {
namespace {

TEST(PushTest, TeleportConversionsAreInverse) {
  for (double gamma : {0.05, 0.15, 0.5, 0.9}) {
    EXPECT_NEAR(StandardTeleportFromLazy(LazyTeleportFromStandard(gamma)),
                gamma, 1e-14);
  }
}

TEST(PushTest, ResidualGuaranteeHolds) {
  Rng rng(1);
  const Graph g = ErdosRenyi(100, 0.06, rng);
  PushOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-4;
  const PushResult result =
      ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
  EXPECT_TRUE(result.converged);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      EXPECT_LT(result.residual[u], options.epsilon * g.Degree(u));
    }
  }
}

TEST(PushTest, MassConservation) {
  Rng rng(2);
  const Graph g = ErdosRenyi(80, 0.08, rng);
  const PushResult result =
      ApproximatePageRank(g, SingleNodeSeed(g, 3), {});
  // p-mass + residual mass = seed mass (the push rule conserves mass).
  EXPECT_NEAR(Sum(result.p) + Sum(result.residual), 1.0, 1e-10);
}

TEST(PushTest, UnderestimatesExactLazyPpr) {
  // p = pr(s) − pr(r) entrywise with pr nonnegative ⇒ p ≤ exact PPR.
  Rng rng(3);
  const Graph g = ErdosRenyi(60, 0.1, rng);
  PushOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-5;
  const PushResult push =
      ApproximatePageRank(g, SingleNodeSeed(g, 5), options);
  PageRankOptions pr;
  pr.gamma = StandardTeleportFromLazy(options.alpha);
  pr.tolerance = 1e-14;
  const Vector exact =
      PersonalizedPageRank(g, SingleNodeSeed(g, 5), pr).scores;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(push.p[u], exact[u] + 1e-9);
  }
  // And the total shortfall equals what the residual would produce.
  EXPECT_NEAR(Sum(exact) - Sum(push.p), Sum(push.residual), 1e-8);
}

TEST(PushTest, ConvergesToExactAsEpsilonShrinks) {
  Rng rng(4);
  const Graph g = ErdosRenyi(50, 0.12, rng);
  PageRankOptions pr;
  pr.gamma = StandardTeleportFromLazy(0.1);
  pr.tolerance = 1e-14;
  const Vector exact =
      PersonalizedPageRank(g, SingleNodeSeed(g, 7), pr).scores;
  double previous_error = 1e9;
  for (double eps : {1e-3, 1e-5, 1e-7}) {
    PushOptions options;
    options.alpha = 0.1;
    options.epsilon = eps;
    const PushResult push =
        ApproximatePageRank(g, SingleNodeSeed(g, 7), options);
    const double error = DistanceL1(push.p, exact);
    EXPECT_LT(error, previous_error + 1e-12);
    previous_error = error;
  }
  EXPECT_LT(previous_error, 1e-4);
}

TEST(PushTest, SupportIsSparseOnLargeGraph) {
  // The implicit-regularization claim: support bounded by ~1/(ε·α),
  // independent of n.
  Rng rng(5);
  SocialGraphParams params;
  params.core_nodes = 8000;
  params.num_communities = 6;
  params.num_whiskers = 40;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  PushOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-3;
  const PushResult result = ApproximatePageRank(
      sg.graph, SingleNodeSeed(sg.graph, sg.communities[0][0]), options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.support,
            static_cast<std::int64_t>(1.0 / (options.alpha *
                                             options.epsilon)));
  EXPECT_LT(result.support, sg.graph.NumNodes() / 4);
}

TEST(PushTest, WorkScalesWithOneOverEpsAlpha) {
  // Strong locality: pushes ≤ O(1/(ε α)) regardless of graph size.
  Rng rng(6);
  for (NodeId n : {2000, 8000}) {
    const Graph g = ErdosRenyi(n, 10.0 / n, rng);
    PushOptions options;
    options.alpha = 0.1;
    options.epsilon = 1e-3;
    const PushResult result =
        ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
    EXPECT_LE(result.pushes,
              static_cast<std::int64_t>(4.0 / (options.alpha *
                                               options.epsilon)));
  }
}

TEST(PushTest, LocalClusterFindsPlantedCommunity) {
  Rng rng(7);
  SocialGraphParams params;
  params.core_nodes = 3000;
  params.num_communities = 4;
  params.min_community_size = 40;
  params.max_community_size = 60;
  params.num_whiskers = 10;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const auto& community = sg.communities[1];
  PushOptions options;
  options.alpha = 0.05;
  options.epsilon = 5e-5;
  const LocalClusterResult result =
      PushLocalCluster(sg.graph, community[0], options);
  ASSERT_FALSE(result.set.empty());
  // The sweep cut should be a low-conductance set overlapping the
  // community substantially.
  EXPECT_LT(result.stats.conductance, 0.35);
  std::vector<char> in_community(sg.graph.NumNodes(), 0);
  for (NodeId u : community) in_community[u] = 1;
  int overlap = 0;
  for (NodeId u : result.set) overlap += in_community[u];
  EXPECT_GT(overlap, static_cast<int>(community.size()) / 2);
}

TEST(PushTest, SeedWithZeroMassStaysEmpty) {
  const Graph g = PathGraph(10);
  const PushResult result = ApproximatePageRank(g, Vector(10, 0.0), {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.pushes, 0);
  EXPECT_DOUBLE_EQ(Sum(result.p), 0.0);
}

TEST(PushTest, SelfLoopMassReturns) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0, 2.0);
  builder.AddEdge(0, 1, 1.0);
  const Graph g = builder.Build();
  PushOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-8;
  const PushResult result =
      ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(Sum(result.p) + Sum(result.residual), 1.0, 1e-10);
  EXPECT_GT(result.p[0], result.p[1]);
}


TEST(PushTest, ResidualMassDecreasesMonotonically) {
  // Push is Gauss–Southwell coordinate relaxation on the PPR linear
  // system ([20] in the paper): each push strictly decreases the
  // residual mass by exactly alpha * r(u).
  Rng rng(8);
  const Graph g = ErdosRenyi(80, 0.08, rng);
  PushOptions options;
  options.alpha = 0.12;
  options.epsilon = 1e-4;
  double previous = 1.0 + 1e-12;
  std::int64_t calls = 0;
  options.on_push = [&](std::int64_t index, NodeId u, double mass) {
    EXPECT_EQ(index, calls + 1);
    EXPECT_TRUE(g.IsValidNode(u));
    EXPECT_LT(mass, previous);
    EXPECT_GE(mass, -1e-12);
    previous = mass;
    ++calls;
  };
  const PushResult result =
      ApproximatePageRank(g, SingleNodeSeed(g, 0), options);
  EXPECT_EQ(calls, result.pushes);
  // The final reported mass matches the actual residual mass.
  EXPECT_NEAR(previous, Sum(result.residual), 1e-10);
}

}  // namespace
}  // namespace impreg
