#include "util/csv.h"

#include <gtest/gtest.h>

namespace impreg {
namespace {

TEST(TableTest, CsvRendering) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"x", "y"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TableTest, AlignedRenderingHasHeaderRuleAndRows) {
  Table table({"name", "v"});
  table.AddRow({"longvalue", "1"});
  const std::string out = table.ToAligned();
  // Header, rule, one row.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longvalue  1"), std::string::npos);
}

TEST(TableTest, NumRows) {
  Table table({"x"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(TableTest, RowWidthMismatchDies) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(TableTest, CommaInCsvCellDies) {
  Table table({"a"});
  table.AddRow({"has,comma"});
  EXPECT_DEATH(table.ToCsv(), "commas");
}

TEST(TableTest, CellsFormatsDoubles) {
  const std::vector<std::string> cells = Cells({1.5, 0.25}, 3);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "1.5");
  EXPECT_EQ(cells[1], "0.25");
}

}  // namespace
}  // namespace impreg
