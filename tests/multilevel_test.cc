#include "flow/multilevel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"

namespace impreg {
namespace {

TEST(MultilevelTest, BalancedBisectionOfGrid) {
  const Graph g = GridGraph(16, 16);
  const MultilevelResult result = MultilevelBisection(g);
  // Balance within tolerance.
  EXPECT_NEAR(result.set.size(), 128u, 26);
  // A good grid bisection cuts ~16 edges; allow generous slack but far
  // below a random half (~256 crossing edges).
  EXPECT_LT(result.cut, 64.0);
}

TEST(MultilevelTest, RecoversPlantedBisection) {
  Rng rng(1);
  const Graph g = PlantedPartition(2, 100, 0.3, 0.01, rng);
  const MultilevelResult result = MultilevelBisection(g);
  // Count how many of the first block ended up together.
  int first_block_in_set = 0;
  for (NodeId u : result.set) {
    if (u < 100) ++first_block_in_set;
  }
  const int majority = std::max(first_block_in_set,
                                static_cast<int>(result.set.size()) -
                                    first_block_in_set);
  // The set should be (almost) one block.
  EXPECT_GT(majority, 90);
  const double expected_cross = 100.0 * 100.0 * 0.01;
  EXPECT_LT(result.cut, 3.0 * expected_cross);
}

TEST(MultilevelTest, TargetFractionControlsSize) {
  Rng rng(2);
  const Graph g = ErdosRenyi(400, 0.03, rng);
  for (double frac : {0.1, 0.25, 0.5}) {
    MultilevelOptions options;
    options.target_fraction = frac;
    const MultilevelResult result = MultilevelBisection(g, options);
    const double achieved =
        static_cast<double>(result.set.size()) / g.NumNodes();
    EXPECT_NEAR(achieved, frac, 0.35 * frac + 0.02) << "frac " << frac;
  }
}

TEST(MultilevelTest, CutBeatsRandomHalf) {
  Rng rng(3);
  const Graph g = ErdosRenyi(300, 0.05, rng);
  const MultilevelResult result = MultilevelBisection(g);
  // A random half crosses ~m/2 edges.
  EXPECT_LT(result.cut, 0.5 * static_cast<double>(g.NumEdges()));
}

TEST(MultilevelTest, SeparatesDumbbellExactly) {
  const Graph g = DumbbellGraph(20, 0);
  const MultilevelResult result = MultilevelBisection(g);
  EXPECT_DOUBLE_EQ(result.cut, 1.0);
  EXPECT_EQ(result.set.size(), 20u);
}

TEST(MultilevelTest, TinyGraphsDoNotDegenerate) {
  const Graph g = PathGraph(2);
  const MultilevelResult result = MultilevelBisection(g);
  EXPECT_EQ(result.set.size(), 1u);
  const Graph g4 = CycleGraph(4);
  const MultilevelResult r4 = MultilevelBisection(g4);
  EXPECT_GE(r4.set.size(), 1u);
  EXPECT_LE(r4.set.size(), 3u);
}

TEST(MultilevelTest, UsesMultipleLevelsOnLargeGraphs) {
  Rng rng(4);
  const Graph g = ErdosRenyi(2000, 0.005, rng);
  const MultilevelResult result = MultilevelBisection(g);
  EXPECT_GT(result.levels, 3);
}

TEST(MultilevelTest, DeterministicGivenSeed) {
  Rng rng(5);
  const Graph g = ErdosRenyi(300, 0.04, rng);
  const MultilevelResult a = MultilevelBisection(g);
  const MultilevelResult b = MultilevelBisection(g);
  EXPECT_EQ(a.set, b.set);
}

TEST(MultilevelTest, SmallFractionOnSocialGraphFindsSmallSet) {
  Rng rng(6);
  SocialGraphParams params;
  params.core_nodes = 1500;
  params.num_communities = 5;
  params.num_whiskers = 30;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  MultilevelOptions options;
  options.target_fraction = 0.05;
  const MultilevelResult result = MultilevelBisection(sg.graph, options);
  EXPECT_LT(result.set.size(),
            static_cast<std::size_t>(sg.graph.NumNodes() / 5));
  EXPECT_GE(result.set.size(), 10u);
}

}  // namespace
}  // namespace impreg
