// Cross-module property tests: algebraic identities and invariants that
// tie the substrates together, checked over a parameterized family of
// graphs. These catch exactly the bugs unit tests miss — two modules
// each "working" but disagreeing about conventions.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/impreg.h"

namespace impreg {
namespace {

Graph Family(int id) {
  Rng rng(500 + id);
  switch (id) {
    case 0:
      return PathGraph(30);
    case 1:
      return CycleGraph(24);
    case 2:
      return CompleteGraph(12);
    case 3:
      return StarGraph(16);
    case 4:
      return GridGraph(5, 6);
    case 5:
      return CavemanGraph(3, 6);
    case 6:
      return LollipopGraph(8, 6);
    case 7:
      return CockroachGraph(5);
    case 8: {
      Graph g = ErdosRenyi(40, 0.15, rng);
      while (!IsConnected(g)) g = ErdosRenyi(40, 0.15, rng);
      return g;
    }
    default: {
      // Weighted graph with a self-loop.
      GraphBuilder b(10);
      for (NodeId i = 0; i + 1 < 10; ++i) b.AddEdge(i, i + 1, 1.0 + i * 0.3);
      b.AddEdge(0, 9, 2.0);
      b.AddEdge(4, 4, 1.5);
      b.AddEdge(2, 7, 0.25);
      return b.Build();
    }
  }
}

class PropertyTest : public testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Families, PropertyTest,
                         testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9));

TEST_P(PropertyTest, LanczosAgreesWithJacobiOnLambda2) {
  const Graph g = Family(GetParam());
  const NormalizedLaplacianOperator lap(g);
  LanczosOptions options;
  options.deflate.push_back(lap.TrivialEigenvector());
  options.max_iterations = 400;
  const LanczosResult lanczos = LanczosSmallest(lap, 1, options);
  const SymmetricEigen dense =
      SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  EXPECT_NEAR(lanczos.eigenvalues[0], dense.eigenvalues[1], 1e-8);
}

TEST_P(PropertyTest, NormalizedLaplacianIsConjugatedCombinatorial) {
  // ℒ = D^{-1/2} L D^{-1/2} (on positive-degree nodes): check on random
  // vectors via both operators.
  const Graph g = Family(GetParam());
  const NormalizedLaplacianOperator norm(g);
  const CombinatorialLaplacianOperator comb(g);
  Rng rng(GetParam());
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  // y1 = ℒ x.
  Vector y1;
  norm.Apply(x, y1);
  // y2 = D^{-1/2} L D^{-1/2} x.
  Vector scaled(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) scaled[u] = x[u] / std::sqrt(g.Degree(u));
  }
  Vector mid;
  comb.Apply(scaled, mid);
  Vector y2(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) y2[u] = mid[u] / std::sqrt(g.Degree(u));
  }
  EXPECT_LT(DistanceL2(y1, y2), 1e-10 * (1.0 + Norm2(y1)));
}

TEST_P(PropertyTest, HeatKernelSemigroup) {
  // exp(−(s+t)ℒ) = exp(−sℒ) exp(−tℒ).
  const Graph g = Family(GetParam());
  Rng rng(GetParam() + 1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  HeatKernelOptions t1;
  t1.t = 1.3;
  HeatKernelOptions t2;
  t2.t = 2.2;
  HeatKernelOptions sum;
  sum.t = 3.5;
  const Vector chained =
      HeatKernelNormalized(g, HeatKernelNormalized(g, x, t1), t2);
  const Vector direct = HeatKernelNormalized(g, x, sum);
  EXPECT_LT(DistanceL2(chained, direct), 1e-7 * (1.0 + Norm2(direct)));
}

TEST_P(PropertyTest, PageRankFixpointEquation) {
  // p = γ s + (1−γ) M p must hold at the solution.
  const Graph g = Family(GetParam());
  const Vector seed = SingleNodeSeed(g, g.NumNodes() / 2);
  PageRankOptions options;
  options.gamma = 0.2;
  options.tolerance = 1e-14;
  const Vector p = PersonalizedPageRank(g, seed, options).scores;
  const RandomWalkOperator walk(g);
  Vector mp;
  walk.Apply(p, mp);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_NEAR(p[u], 0.2 * seed[u] + 0.8 * mp[u], 1e-10);
  }
}

TEST_P(PropertyTest, PushPlusResidualPprIsExact) {
  // ACL identity: pr(s) = p + pr(r) — the residual accounts exactly
  // for the approximation error.
  const Graph g = Family(GetParam());
  PushOptions push;
  push.alpha = 0.15;
  push.epsilon = 1e-3;
  const Vector seed = SingleNodeSeed(g, 0);
  const PushResult approx = ApproximatePageRank(g, seed, push);
  PageRankOptions pr;
  pr.gamma = StandardTeleportFromLazy(push.alpha);
  pr.tolerance = 1e-14;
  pr.max_iterations = 100000;
  const Vector exact_s = PersonalizedPageRank(g, seed, pr).scores;
  const Vector pr_residual =
      PersonalizedPageRank(g, approx.residual, pr).scores;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_NEAR(exact_s[u], approx.p[u] + pr_residual[u], 1e-8);
  }
}

TEST_P(PropertyTest, SweepProfileMatchesDirectConductance) {
  const Graph g = Family(GetParam());
  Rng rng(GetParam() + 2);
  Vector values(g.NumNodes());
  for (double& v : values) v = rng.NextGaussian();
  const SweepResult sweep = SweepCut(g, values);
  // Check a handful of prefixes directly.
  for (std::size_t k : {std::size_t{1}, sweep.order.size() / 3,
                        sweep.order.size() / 2, sweep.order.size() - 1}) {
    if (k < 1 || k >= sweep.order.size()) continue;
    const std::vector<NodeId> prefix(sweep.order.begin(),
                                     sweep.order.begin() + k);
    EXPECT_NEAR(sweep.conductance_profile[k - 1],
                ComputeCutStats(g, prefix).conductance, 1e-10);
  }
}

TEST_P(PropertyTest, SupportSweepEqualsGlobalSweepOnFullSupport) {
  const Graph g = Family(GetParam());
  Rng rng(GetParam() + 3);
  Vector values(g.NumNodes());
  for (double& v : values) v = rng.NextDouble() + 0.01;  // All positive.
  const SweepResult global = SweepCut(g, values);
  const SweepResult support = SweepCutOverSupport(g, values);
  EXPECT_EQ(global.order, support.order);
  EXPECT_EQ(global.set, support.set);
}

TEST_P(PropertyTest, LazyWalkMatchesOperatorPowers) {
  const Graph g = Family(GetParam());
  const Vector seed = SingleNodeSeed(g, 0);
  LazyWalkOptions options;
  options.alpha = 0.5;
  options.steps = 6;
  const Vector walked = LazyWalk(g, seed, options);
  // Apply the operator six times manually.
  const LazyWalkOperator op(g, 0.5);
  Vector current = seed, next;
  for (int i = 0; i < 6; ++i) {
    op.Apply(current, next);
    current.swap(next);
  }
  EXPECT_LT(DistanceL1(walked, current), 1e-12);
}

TEST_P(PropertyTest, MqiFixpointAgreesWithBruteForceOnSmallGraphs) {
  const Graph g = Family(GetParam());
  if (g.NumNodes() > 24) return;  // Brute force bound.
  // Run MQI from the full "half" split; its final set can do no better
  // than the global optimum and must be a valid set.
  std::vector<NodeId> half;
  for (NodeId u = 0; u < g.NumNodes() / 2; ++u) half.push_back(u);
  const MqiResult result = Mqi(g, half);
  const double optimal = BruteForceMinConductance(g);
  EXPECT_GE(result.stats.conductance, optimal - 1e-12);
}

TEST_P(PropertyTest, WhiskersAreDisjointAndBridgeBounded) {
  const Graph g = Family(GetParam());
  const std::vector<Whisker> whiskers = FindWhiskers(g);
  std::vector<char> seen(g.NumNodes(), 0);
  for (const Whisker& w : whiskers) {
    for (NodeId u : w.nodes) {
      EXPECT_FALSE(seen[u]);  // Disjoint.
      seen[u] = 1;
    }
    // Each whisker is detached by exactly one (bridge) edge.
    std::vector<char> in_whisker(g.NumNodes(), 0);
    for (NodeId u : w.nodes) in_whisker[u] = 1;
    int crossing_edges = 0;
    for (NodeId u : w.nodes) {
      for (const Arc& arc : g.Neighbors(u)) {
        if (arc.head != u && !in_whisker[arc.head]) ++crossing_edges;
      }
    }
    EXPECT_EQ(crossing_edges, 1);
    EXPECT_GT(w.volume, 0.0);
  }
}

TEST_P(PropertyTest, CoreNumbersMonotoneUnderKCore) {
  const Graph g = Family(GetParam());
  const std::vector<int> core = CoreNumbers(g);
  const int degeneracy = Degeneracy(g);
  EXPECT_TRUE(KCore(g, degeneracy + 1).empty());
  EXPECT_EQ(KCore(g, 0).size(), static_cast<std::size_t>(g.NumNodes()));
}

// —— Operator invariants exercised under the parallel execution path ——
// Each of these pins an algebraic identity of the §3.1 matrices while
// the kernels run on a multi-thread pool (ScopedNumThreads(4)), so a
// data race or mis-partitioned chunk shows up as a broken identity.

TEST_P(PropertyTest, NormalizedLaplacianIsSelfAdjointUnderParallelPath) {
  // ℒ is symmetric: ⟨ℒx, y⟩ = ⟨x, ℒy⟩.
  const ScopedNumThreads threads(4);
  const Graph g = Family(GetParam());
  const NormalizedLaplacianOperator lap(g);
  Rng rng(700 + GetParam());
  Vector x(g.NumNodes()), y(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  const Vector lx = lap.Apply(x);
  const Vector ly = lap.Apply(y);
  const double scale = 1.0 + std::abs(Dot(lx, y));
  EXPECT_NEAR(Dot(lx, y), Dot(x, ly), 1e-10 * scale);
}

TEST_P(PropertyTest, RandomWalkIsColumnStochasticUnderParallelPath) {
  // M = A D^{-1} preserves total mass: 1ᵀ M x = 1ᵀ x (the families have
  // no isolated nodes, so no mass is annihilated).
  const ScopedNumThreads threads(4);
  const Graph g = Family(GetParam());
  const RandomWalkOperator walk(g);
  Rng rng(710 + GetParam());
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextDouble();  // Nonnegative charge.
  const Vector mx = walk.Apply(x);
  EXPECT_NEAR(Sum(mx), Sum(x), 1e-10 * (1.0 + Sum(x)));
}

TEST_P(PropertyTest, LazyWalkIsConvexCombinationUnderParallelPath) {
  // W_α = αI + (1−α)M, entry by entry, for α ∈ {0, ½, 1}.
  const ScopedNumThreads threads(4);
  const Graph g = Family(GetParam());
  const RandomWalkOperator walk(g);
  Rng rng(720 + GetParam());
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  const Vector mx = walk.Apply(x);
  for (const double alpha : {0.0, 0.5, 1.0}) {
    const LazyWalkOperator lazy(g, alpha);
    const Vector wx = lazy.Apply(x);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      EXPECT_NEAR(wx[u], alpha * x[u] + (1.0 - alpha) * mx[u], 1e-12)
          << "alpha " << alpha << " node " << u;
    }
  }
}

TEST_P(PropertyTest, CombinatorialLaplacianAnnihilatesConstantsUnderParallelPath) {
  // L·1 = 0: every row of D − A sums to zero.
  const ScopedNumThreads threads(4);
  const Graph g = Family(GetParam());
  const CombinatorialLaplacianOperator lap(g);
  const Vector ones(g.NumNodes(), 1.0);
  const Vector l1 = lap.Apply(ones);
  double max_degree = 0.0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  EXPECT_LE(NormInf(l1), 1e-12 * (1.0 + max_degree));
}

TEST_P(PropertyTest, MonteCarloIsUnbiasedInExpectationShape) {
  // Cheap sanity: the MC estimate's mass equals 1 and its support is a
  // subset of nodes reachable from the seed.
  const Graph g = Family(GetParam());
  MonteCarloOptions options;
  options.walks_per_node = 200;
  options.gamma = 0.25;
  const Vector estimate = MonteCarloPersonalizedPageRank(g, 0, options);
  EXPECT_NEAR(Sum(estimate), 1.0, 1e-12);
  const std::vector<int> dist = BfsDistances(g, 0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (estimate[u] > 0.0) {
      EXPECT_GE(dist[u], 0);
    }
  }
}

}  // namespace
}  // namespace impreg
