// Acceptance test of the durability layer: the mutation WAL, epoch
// snapshots, snapshot-isolated serving, and the restart-recovery chaos
// sweep.
//
// The central contract under test is *bit-identity*: whatever epoch
// recovery reports after a crash — at any WAL record boundary, with a
// torn tail, with corrupt snapshots, under any durability fault site —
// the recovered graph must be bit-for-bit the graph of a process that
// never crashed at that epoch, and a query batch served after recovery
// must be bit-for-bit the batch the uninterrupted process would have
// served, at 1 and 8 threads alike.
//
// Crashes are simulated structurally (truncating the log at every byte,
// appending torn debris, flipping snapshot bytes) so the whole suite
// runs in every build; the fault-site sweeps additionally require the
// injection harness (IMPREG_FAULT_INJECTION=ON — the `faultinject` and
// `sanitize` presets) and skip themselves elsewhere.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/solve_status.h"
#include "graph/generators.h"
#include "service/durability/recovery.h"
#include "service/durability/snapshot.h"
#include "service/durability/wal.h"
#include "service/query_engine.h"
#include "service/sharding/shard_manifest.h"
#include "streaming/dynamic_graph.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace impreg {
namespace {

namespace fs = std::filesystem;

// WAL geometry pinned by the format doc (docs/durability.md): any drift
// breaks on-disk compatibility and must fail loudly here.
constexpr std::int64_t kWalHeaderBytes = 16;
constexpr std::int64_t kWalRecordBytes = 25;

std::uint64_t Bits(double x) { return std::bit_cast<std::uint64_t>(x); }

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Graph BaseGraph() { return CavemanGraph(3, 8); }  // 24 nodes.

// The edit history every crash scenario replays a prefix of. The repeat
// of {0, 9} accumulates weight, so degree/volume bits depend on getting
// the arrival order and the exact accumulated sums right — and the
// trailing removes (one partial decrement of that accumulated weight,
// one full removal) put every crash boundary after a delete into the
// sweep too.
std::vector<durability::WalRecord> Edits() {
  return {{0, 9, 1.0},  {8, 17, 0.5}, {1, 16, 2.0},
          {2, 10, 1.0}, {0, 9, 0.25}, {5, 21, 1.5},
          {0, 9, 0.75, /*remove=*/true}, {8, 17, 0.0, /*remove=*/true}};
}

/// Applies one history entry to a bare graph (the replay ground truth).
void ApplyEdit(DynamicGraph& g, const durability::WalRecord& e) {
  if (e.remove) {
    g.RemoveEdge(e.u, e.v, e.weight);
  } else {
    g.AddEdge(e.u, e.v, e.weight);
  }
}

/// Appends one history entry through the type-matching WAL call.
SolveStatus AppendEdit(durability::WriteAheadLog& wal,
                       const durability::WalRecord& e) {
  return e.remove ? wal.AppendRemoveEdge(e.u, e.v, e.weight)
                  : wal.AppendAddEdge(e.u, e.v, e.weight);
}

/// The graph of a process that applied the first `k` edits and never
/// crashed — the bitwise ground truth for recovery at epoch k.
DynamicGraph ReferenceGraph(std::int64_t k) {
  DynamicGraph g = DynamicGraph::FromGraph(BaseGraph());
  const auto edits = Edits();
  for (std::int64_t i = 0; i < k; ++i) ApplyEdit(g, edits[i]);
  return g;
}

std::unique_ptr<QueryEngine> ReferenceEngine(std::int64_t k,
                                             const QueryEngine::Options& opt) {
  auto engine = std::make_unique<QueryEngine>(
      DynamicGraph::FromGraph(BaseGraph()), opt);
  const auto edits = Edits();
  for (std::int64_t i = 0; i < k; ++i) {
    if (edits[i].remove) {
      engine->RemoveEdge(edits[i].u, edits[i].v, edits[i].weight);
    } else {
      engine->AddEdge(edits[i].u, edits[i].v, edits[i].weight);
    }
  }
  return engine;
}

/// A batch covering every query method (push, dense, heat kernel,
/// nibble) so the bit-identity assertion exercises all serving paths.
std::vector<Query> ServingBatch() {
  std::vector<Query> batch;
  Query push;
  push.method = QueryMethod::kPprPush;
  push.seeds = {0};
  push.epsilon = 1e-5;
  batch.push_back(push);
  Query push2;
  push2.method = QueryMethod::kPprPush;
  push2.seeds = {8, 9};
  push2.epsilon = 1e-4;
  batch.push_back(push2);
  Query dense;
  dense.method = QueryMethod::kPprDense;
  dense.seeds = {1};
  batch.push_back(dense);
  Query hk;
  hk.method = QueryMethod::kHeatKernel;
  hk.seeds = {3};
  hk.t = 3.0;
  hk.delta = 1e-4;
  batch.push_back(hk);
  Query nib;
  nib.method = QueryMethod::kNibble;
  nib.seeds = {17};
  nib.epsilon = 1e-4;
  nib.steps = 20;
  batch.push_back(nib);
  return batch;
}

void ExpectGraphsBitIdentical(const DynamicGraph& a, const DynamicGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(Bits(a.TotalVolume()), Bits(b.TotalVolume()));
  for (NodeId u = 0; u < a.NumNodes(); ++u) {
    EXPECT_EQ(Bits(a.Degree(u)), Bits(b.Degree(u))) << "node " << u;
    const auto& na = a.Neighbors(u);
    const auto& nb = b.Neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].head, nb[i].head) << "node " << u << " arc " << i;
      EXPECT_EQ(Bits(na[i].weight), Bits(nb[i].weight))
          << "node " << u << " arc " << i;
    }
  }
}

void ExpectResponsesBitIdentical(const std::vector<QueryResponse>& got,
                                 const std::vector<QueryResponse>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t q = 0; q < got.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    ASSERT_EQ(got[q].scores.size(), want[q].scores.size());
    for (std::size_t i = 0; i < got[q].scores.size(); ++i) {
      EXPECT_EQ(Bits(got[q].scores[i]), Bits(want[q].scores[i]))
          << "score " << i;
    }
    EXPECT_EQ(got[q].set, want[q].set);
    EXPECT_EQ(Bits(got[q].conductance), Bits(want[q].conductance));
    EXPECT_EQ(got[q].work, want[q].work);
    EXPECT_EQ(got[q].status, want[q].status);
    EXPECT_EQ(got[q].source, want[q].source);
    EXPECT_EQ(got[q].degraded, want[q].degraded);
    EXPECT_EQ(got[q].shed, want[q].shed);
  }
}

/// The uniform chaos assertion: recover at `threads` and require the
/// engine to be indistinguishable — graph bits, epoch, and a served
/// batch — from an uninterrupted process at the reported epoch.
void ExpectRecoveryServesReference(const durability::RecoveryOptions& ropts,
                                   const durability::RecoveryReport& report,
                                   QueryEngine& recovered, int threads) {
  ScopedNumThreads scoped(threads);
  const auto reference = ReferenceEngine(report.epoch, {});
  ExpectGraphsBitIdentical(recovered.graph(), reference->graph());
  EXPECT_EQ(recovered.Epoch(), reference->Epoch());
  const auto got = recovered.RunBatch(ServingBatch());
  const auto want = reference->RunBatch(ServingBatch());
  ExpectResponsesBitIdentical(got, want);
  (void)ropts;
}

/// Recover + assert at both thread counts (fresh recovery per count so
/// each comparison starts from an empty cache on both sides). `prepare`
/// re-creates the crash state before every recovery — the first
/// recovery repairs a torn tail in place, so the scene must be re-torn
/// for the run to test the same crash twice.
void ExpectRecoveredMatchesReference(
    const durability::RecoveryOptions& ropts, std::int64_t expected_epoch,
    SolveStatus expected_status,
    const std::function<void()>& prepare = nullptr) {
  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    if (prepare) prepare();
    std::unique_ptr<QueryEngine> recovered;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
    ASSERT_EQ(report.status, expected_status) << report.detail;
    ASSERT_EQ(report.epoch, expected_epoch) << report.detail;
    ASSERT_NE(recovered, nullptr);
    ExpectRecoveryServesReference(ropts, report, *recovered, threads);
  }
}

/// Writes the full edit history into a WAL at `path`, returning the raw
/// bytes (for boundary truncation).
std::string WriteFullWal(const std::string& path) {
  durability::WriteAheadLog wal;
  EXPECT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
  for (const durability::WalRecord& e : Edits()) {
    EXPECT_EQ(AppendEdit(wal, e), SolveStatus::kConverged);
  }
  wal.Close();
  return ReadFileBytes(path);
}

// ——— WAL unit coverage ———

TEST(DurabilityTest, WalRoundTripIsBitwise) {
  const fs::path dir = FreshDir("impreg_wal_roundtrip");
  const std::string path = (dir / "wal.log").string();
  const auto edits = Edits();

  {
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    ASSERT_TRUE(wal.is_open());
    for (const auto& e : edits) {
      ASSERT_EQ(AppendEdit(wal, e), SolveStatus::kConverged);
    }
    EXPECT_EQ(wal.records_appended(),
              static_cast<std::int64_t>(edits.size()));
    wal.Close();
    EXPECT_FALSE(wal.is_open());
  }
  EXPECT_EQ(static_cast<std::int64_t>(fs::file_size(path)),
            kWalHeaderBytes +
                kWalRecordBytes * static_cast<std::int64_t>(edits.size()));

  const durability::WalReadResult read = durability::ReadWal(path);
  ASSERT_EQ(read.status, SolveStatus::kConverged) << read.detail;
  EXPECT_FALSE(read.truncated);
  ASSERT_EQ(read.entries.size(), edits.size());
  for (std::size_t i = 0; i < edits.size(); ++i) {
    EXPECT_EQ(read.entries[i].u, edits[i].u);
    EXPECT_EQ(read.entries[i].v, edits[i].v);
    EXPECT_EQ(Bits(read.entries[i].weight), Bits(edits[i].weight));
    EXPECT_EQ(read.entries[i].remove, edits[i].remove) << "record " << i;
  }

  // Reopening an existing log verifies the header and keeps appending.
  {
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    ASSERT_EQ(wal.AppendAddEdge(6, 22, 0.125), SolveStatus::kConverged);
    wal.Close();
  }
  const durability::WalReadResult reread = durability::ReadWal(path);
  ASSERT_EQ(reread.entries.size(), edits.size() + 1);
  EXPECT_EQ(Bits(reread.entries.back().weight), Bits(0.125));

  // A missing file is an empty log (first boot), not corruption.
  const durability::WalReadResult missing =
      durability::ReadWal((dir / "never-written.log").string());
  EXPECT_EQ(missing.status, SolveStatus::kConverged);
  EXPECT_TRUE(missing.entries.empty());

  // A bad append is rejected before any byte is framed.
  {
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    const auto size_before = fs::file_size(path);
    EXPECT_EQ(wal.AppendAddEdge(0, 1, 0.0), SolveStatus::kInvalidInput);
    EXPECT_EQ(wal.AppendAddEdge(0, 1, -2.0), SolveStatus::kInvalidInput);
    EXPECT_EQ(wal.AppendAddEdge(-1, 1, 1.0), SolveStatus::kInvalidInput);
    // RemoveEdge accepts the 0.0 remove-entirely sentinel but rejects
    // negatives, non-finites and bad ids the same way.
    EXPECT_EQ(wal.AppendRemoveEdge(0, 1, -0.5), SolveStatus::kInvalidInput);
    EXPECT_EQ(wal.AppendRemoveEdge(0, 1, std::nan("")),
              SolveStatus::kInvalidInput);
    EXPECT_EQ(wal.AppendRemoveEdge(-1, 1, 0.0), SolveStatus::kInvalidInput);
    EXPECT_EQ(wal.records_appended(), 0);
    wal.Close();
    EXPECT_EQ(fs::file_size(path), size_before);
  }
}

TEST(DurabilityTest, EveryByteTruncationYieldsTheCertifiedPrefix) {
  const fs::path dir = FreshDir("impreg_wal_truncation");
  const std::string full_path = (dir / "wal.log").string();
  const std::string full = WriteFullWal(full_path);
  const std::int64_t num_edits = static_cast<std::int64_t>(Edits().size());
  ASSERT_EQ(static_cast<std::int64_t>(full.size()),
            kWalHeaderBytes + kWalRecordBytes * num_edits);

  const std::string path = (dir / "cut.log").string();
  for (std::int64_t len = 0; len <= static_cast<std::int64_t>(full.size());
       ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    WriteFileBytes(path, full.substr(0, static_cast<std::size_t>(len)));
    const durability::WalReadResult read = durability::ReadWal(path);
    if (len < kWalHeaderBytes) {
      // Not even the header survived: nothing is trusted.
      EXPECT_EQ(read.status, SolveStatus::kInvalidInput);
      continue;
    }
    const std::int64_t prefix = (len - kWalHeaderBytes) / kWalRecordBytes;
    const bool at_boundary =
        len == kWalHeaderBytes + prefix * kWalRecordBytes;
    ASSERT_EQ(static_cast<std::int64_t>(read.entries.size()), prefix);
    EXPECT_EQ(read.valid_bytes, kWalHeaderBytes + prefix * kWalRecordBytes);
    if (at_boundary) {
      EXPECT_EQ(read.status, SolveStatus::kConverged) << read.detail;
      EXPECT_FALSE(read.truncated);
    } else {
      EXPECT_EQ(read.status, SolveStatus::kBreakdown) << read.detail;
      EXPECT_TRUE(read.truncated);
      // Repairing to the certified prefix makes the file clean again.
      ASSERT_EQ(durability::TruncateWal(path, read.valid_bytes),
                SolveStatus::kConverged);
      const durability::WalReadResult repaired = durability::ReadWal(path);
      EXPECT_EQ(repaired.status, SolveStatus::kConverged);
      EXPECT_EQ(static_cast<std::int64_t>(repaired.entries.size()), prefix);
    }
    // The certified prefix replays to exactly the reference graph.
    DynamicGraph g = DynamicGraph::FromGraph(BaseGraph());
    const durability::WalReplayResult replay =
        durability::ReplayWal(read.entries, 0, &g);
    EXPECT_EQ(replay.status, SolveStatus::kConverged);
    EXPECT_EQ(replay.applied, prefix);
    ExpectGraphsBitIdentical(g, ReferenceGraph(prefix));
  }
}

TEST(DurabilityTest, TornTailRepairThenResumeAppending) {
  const fs::path dir = FreshDir("impreg_wal_resume");
  const std::string path = (dir / "wal.log").string();
  const auto edits = Edits();

  {
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(AppendEdit(wal, edits[i]), SolveStatus::kConverged);
    }
  }
  // Crash debris: garbage after the last intact record.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char junk[7] = {'\x7f', '\x00', '\x41', '\x41',
                          '\xff', '\x03', '\x09'};
    out.write(junk, sizeof(junk));
  }

  const durability::WalReadResult torn = durability::ReadWal(path);
  ASSERT_EQ(torn.status, SolveStatus::kBreakdown);
  ASSERT_TRUE(torn.truncated);
  ASSERT_EQ(torn.entries.size(), 3u);
  ASSERT_EQ(durability::TruncateWal(path, torn.valid_bytes),
            SolveStatus::kConverged);

  // The repaired log accepts the rest of the history seamlessly.
  {
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    for (std::size_t i = 3; i < edits.size(); ++i) {
      ASSERT_EQ(AppendEdit(wal, edits[i]), SolveStatus::kConverged);
    }
  }
  const durability::WalReadResult resumed = durability::ReadWal(path);
  ASSERT_EQ(resumed.status, SolveStatus::kConverged);
  ASSERT_EQ(resumed.entries.size(), edits.size());
  for (std::size_t i = 0; i < edits.size(); ++i) {
    EXPECT_EQ(resumed.entries[i].u, edits[i].u);
    EXPECT_EQ(Bits(resumed.entries[i].weight), Bits(edits[i].weight));
    EXPECT_EQ(resumed.entries[i].remove, edits[i].remove);
  }
}

TEST(DurabilityTest, Version1LogsStillReplayAndFutureVersionsAreRefused) {
  // Compatibility pin: logs written before RemoveEdge existed carry
  // header version 1 and only AddEdge frames. Patch a freshly written
  // add-only log down to v1 (re-CRC the header) and require ReadWal,
  // ReplayWal and reopen-for-append to treat it exactly like v2.
  const fs::path dir = FreshDir("impreg_wal_v1");
  const std::string path = (dir / "wal.log").string();
  std::vector<durability::WalRecord> adds;
  for (const auto& e : Edits()) {
    if (!e.remove) adds.push_back(e);  // A v1 log cannot hold removes.
  }
  {
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    for (const auto& e : adds) {
      ASSERT_EQ(wal.AppendAddEdge(e.u, e.v, e.weight),
                SolveStatus::kConverged);
    }
    wal.Close();
  }
  const auto patch_version = [&](std::uint32_t version) {
    std::string bytes = ReadFileBytes(path);
    ASSERT_GE(static_cast<std::int64_t>(bytes.size()), kWalHeaderBytes);
    bytes[8] = static_cast<char>(version);
    bytes[9] = bytes[10] = bytes[11] = '\0';
    const std::uint32_t crc =
        Crc32c(reinterpret_cast<const std::uint8_t*>(bytes.data()), 12);
    for (int i = 0; i < 4; ++i) {
      bytes[12 + i] = static_cast<char>(crc >> (8 * i));
    }
    WriteFileBytes(path, bytes);
  };

  patch_version(1);
  const durability::WalReadResult read = durability::ReadWal(path);
  ASSERT_EQ(read.status, SolveStatus::kConverged) << read.detail;
  ASSERT_EQ(read.entries.size(), adds.size());
  for (std::size_t i = 0; i < adds.size(); ++i) {
    EXPECT_EQ(read.entries[i].u, adds[i].u);
    EXPECT_EQ(Bits(read.entries[i].weight), Bits(adds[i].weight));
    EXPECT_FALSE(read.entries[i].remove);
  }
  DynamicGraph g = DynamicGraph::FromGraph(BaseGraph());
  const durability::WalReplayResult replay =
      durability::ReplayWal(read.entries, 0, &g);
  EXPECT_EQ(replay.status, SolveStatus::kConverged);
  EXPECT_EQ(replay.applied, static_cast<std::int64_t>(adds.size()));
  {
    // The pre-upgrade restart path: a v1 log reopens for append.
    durability::WriteAheadLog wal;
    EXPECT_EQ(wal.Open(path, {}), SolveStatus::kConverged);
    wal.Close();
  }

  // An unknown future version is refused outright — no guessing at
  // frames this build cannot understand.
  patch_version(3);
  EXPECT_EQ(durability::ReadWal(path).status, SolveStatus::kInvalidInput);
  {
    durability::WriteAheadLog wal;
    EXPECT_EQ(wal.Open(path, {}), SolveStatus::kInvalidInput);
  }
}

// ——— Snapshot unit coverage ———

TEST(DurabilityTest, SnapshotRoundTripIsBitIdentical) {
  const fs::path dir = FreshDir("impreg_snapshot_roundtrip");
  const std::string snap_dir = (dir / "snapshots").string();

  // Populate a cache with state-bearing entries through the real engine
  // so the persisted slice is exactly what serving would produce.
  QueryEngine engine(DynamicGraph::FromGraph(BaseGraph()));
  Query warm;
  warm.seeds = {0};
  warm.epsilon = 1e-4;
  engine.Run(warm);
  Query warm2;
  warm2.seeds = {8};
  warm2.epsilon = 1e-5;
  engine.Run(warm2);
  const DynamicGraph graph = ReferenceGraph(4);
  ASSERT_GE(engine.cache().Size(), 2u);

  const durability::SnapshotWriteResult written = durability::WriteSnapshot(
      snap_dir, 4, graph, engine.cache().ExportEntries());
  ASSERT_EQ(written.status, SolveStatus::kConverged) << written.detail;
  EXPECT_EQ(written.path, snap_dir + "/snapshot-4");
  // Atomic publish left no temp debris behind.
  for (const auto& entry : fs::directory_iterator(snap_dir)) {
    EXPECT_EQ(entry.path().filename().string(), "snapshot-4");
  }

  const durability::SnapshotLoadResult loaded =
      durability::LoadSnapshot(written.path);
  ASSERT_EQ(loaded.status, SolveStatus::kConverged) << loaded.detail;
  EXPECT_EQ(loaded.data.epoch, 4);
  ExpectGraphsBitIdentical(loaded.data.graph, graph);

  // The warm-restartable slice round-trips bitwise, in insertion order.
  const auto exported = engine.cache().ExportEntries();
  ASSERT_EQ(loaded.data.cache_entries.size(), exported.size());
  for (std::size_t i = 0; i < exported.size(); ++i) {
    SCOPED_TRACE("entry " + std::to_string(i));
    const auto& got = loaded.data.cache_entries[i];
    EXPECT_EQ(got.key, *exported[i].key);
    EXPECT_EQ(got.warm_key, *exported[i].warm_key);
    const CachedResult& want = *exported[i].result;
    ASSERT_EQ(got.result.scores.size(), want.scores.size());
    for (std::size_t j = 0; j < want.scores.size(); ++j) {
      EXPECT_EQ(Bits(got.result.scores[j]), Bits(want.scores[j]));
    }
    EXPECT_EQ(got.result.status, want.status);
    EXPECT_EQ(got.result.has_state, want.has_state);
    ASSERT_EQ(got.result.p.size(), want.p.size());
    ASSERT_EQ(got.result.r.size(), want.r.size());
    for (std::size_t j = 0; j < want.p.size(); ++j) {
      EXPECT_EQ(Bits(got.result.p[j]), Bits(want.p[j]));
      EXPECT_EQ(Bits(got.result.r[j]), Bits(want.r[j]));
    }
    EXPECT_EQ(got.result.epoch, want.epoch);
    EXPECT_EQ(Bits(got.result.epsilon), Bits(want.epsilon));
  }

  // ListSnapshots orders newest-first and ignores foreign names.
  ASSERT_EQ(durability::WriteSnapshot(snap_dir, 1, ReferenceGraph(1), {})
                .status,
            SolveStatus::kConverged);
  ASSERT_EQ(durability::WriteSnapshot(snap_dir, 10, ReferenceGraph(6), {})
                .status,
            SolveStatus::kConverged);
  WriteFileBytes(snap_dir + "/README", "not a snapshot");
  const auto listed = durability::ListSnapshots(snap_dir);
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0].first, 10);
  EXPECT_EQ(listed[1].first, 4);
  EXPECT_EQ(listed[2].first, 1);
}

TEST(DurabilityTest, CorruptSnapshotIsRejectedNeverLoaded) {
  const fs::path dir = FreshDir("impreg_snapshot_corrupt");
  const std::string snap_dir = (dir / "snapshots").string();
  const durability::SnapshotWriteResult written =
      durability::WriteSnapshot(snap_dir, 2, ReferenceGraph(2), {});
  ASSERT_EQ(written.status, SolveStatus::kConverged);

  const std::string clean = ReadFileBytes(written.path);
  // Flip one byte at a sample of positions across header, length, CRC,
  // and payload: every corruption must be rejected, never half-loaded.
  for (std::size_t pos = 0; pos < clean.size();
       pos += 1 + clean.size() / 64) {
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteFileBytes(written.path, corrupt);
    const durability::SnapshotLoadResult loaded =
        durability::LoadSnapshot(written.path);
    EXPECT_EQ(loaded.status, SolveStatus::kInvalidInput)
        << "byte " << pos << " flipped: " << loaded.detail;
  }
  // Truncations are rejected too.
  for (const std::size_t len : {std::size_t{0}, std::size_t{7},
                                clean.size() / 2, clean.size() - 1}) {
    WriteFileBytes(written.path, clean.substr(0, len));
    EXPECT_EQ(durability::LoadSnapshot(written.path).status,
              SolveStatus::kInvalidInput)
        << "truncated to " << len;
  }
  // The intact bytes still load.
  WriteFileBytes(written.path, clean);
  EXPECT_EQ(durability::LoadSnapshot(written.path).status,
            SolveStatus::kConverged);
}

// ——— Recovery ladder ———

TEST(DurabilityTest, CorruptNewestSnapshotFallsBackToOlder) {
  const fs::path dir = FreshDir("impreg_recovery_fallback");
  const std::string wal_path = (dir / "wal.log").string();
  const std::string snap_dir = (dir / "snapshots").string();
  WriteFullWal(wal_path);
  ASSERT_EQ(durability::WriteSnapshot(snap_dir, 2, ReferenceGraph(2), {})
                .status,
            SolveStatus::kConverged);
  const durability::SnapshotWriteResult newest =
      durability::WriteSnapshot(snap_dir, 4, ReferenceGraph(4), {});
  ASSERT_EQ(newest.status, SolveStatus::kConverged);
  // Corrupt the newest snapshot: recovery must fall back to epoch 2 and
  // replay the longer WAL suffix, landing at the same final state.
  std::string bytes = ReadFileBytes(newest.path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x1);
  WriteFileBytes(newest.path, bytes);

  durability::RecoveryOptions ropts;
  ropts.wal_path = wal_path;
  ropts.snapshot_dir = snap_dir;
  std::unique_ptr<QueryEngine> recovered;
  const durability::RecoveryReport report = durability::RecoverEngine(
      DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
  EXPECT_EQ(report.status, SolveStatus::kBreakdown) << report.detail;
  EXPECT_EQ(report.snapshot_epoch, 2);
  EXPECT_EQ(report.snapshots_rejected, 1);
  EXPECT_EQ(report.replayed, 6);
  EXPECT_EQ(report.epoch, 8);
  ExpectGraphsBitIdentical(recovered->graph(), ReferenceGraph(8));
}

TEST(DurabilityTest, UnreadableWalHeaderIsFatalOnlyWithoutSnapshot) {
  const fs::path dir = FreshDir("impreg_recovery_badheader");
  const std::string wal_path = (dir / "wal.log").string();
  const std::string snap_dir = (dir / "snapshots").string();
  std::string bytes = WriteFullWal(wal_path);
  bytes[3] = 'X';  // Corrupt the magic.
  WriteFileBytes(wal_path, bytes);

  durability::RecoveryOptions ropts;
  ropts.wal_path = wal_path;
  std::unique_ptr<QueryEngine> recovered;
  const durability::RecoveryReport no_snap = durability::RecoverEngine(
      DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
  EXPECT_EQ(no_snap.status, SolveStatus::kInvalidInput);

  // With an intact snapshot the service can still come up at that
  // epoch — degraded and loud, but serving.
  ASSERT_EQ(durability::WriteSnapshot(snap_dir, 3, ReferenceGraph(3), {})
                .status,
            SolveStatus::kConverged);
  ropts.snapshot_dir = snap_dir;
  const durability::RecoveryReport with_snap = durability::RecoverEngine(
      DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
  EXPECT_EQ(with_snap.status, SolveStatus::kBreakdown);
  EXPECT_EQ(with_snap.epoch, 3);
  ExpectGraphsBitIdentical(recovered->graph(), ReferenceGraph(3));
}

TEST(DurabilityTest, SnapshotNewerThanLogReplaysNothing) {
  const fs::path dir = FreshDir("impreg_recovery_newer_snap");
  const std::string wal_path = (dir / "wal.log").string();
  const std::string snap_dir = (dir / "snapshots").string();
  const std::string full = WriteFullWal(wal_path);
  WriteFileBytes(wal_path, full.substr(0, static_cast<std::size_t>(
                                              kWalHeaderBytes +
                                              2 * kWalRecordBytes)));
  ASSERT_EQ(durability::WriteSnapshot(snap_dir, 4, ReferenceGraph(4), {})
                .status,
            SolveStatus::kConverged);

  durability::RecoveryOptions ropts;
  ropts.wal_path = wal_path;
  ropts.snapshot_dir = snap_dir;
  std::unique_ptr<QueryEngine> recovered;
  const durability::RecoveryReport report = durability::RecoverEngine(
      DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
  EXPECT_EQ(report.status, SolveStatus::kConverged) << report.detail;
  EXPECT_EQ(report.replayed, 0);
  EXPECT_EQ(report.epoch, 4);
  ExpectGraphsBitIdentical(recovered->graph(), ReferenceGraph(4));
}

// ——— The restart-recovery chaos sweep ———

// Crash at every WAL record boundary (with and without torn debris
// after the boundary), with every snapshot layout a real run could have
// left behind, and require recovery to serve bit-identically to the
// uninterrupted process at 1 and 8 threads.
TEST(DurabilityChaosTest, EveryRecordBoundaryServesBitIdentically) {
  const fs::path dir = FreshDir("impreg_chaos_boundaries");
  const std::string full = WriteFullWal((dir / "full.log").string());
  const std::int64_t num_edits = static_cast<std::int64_t>(Edits().size());

  // Snapshots a serve loop with --snapshot-every=2 would have written.
  const std::string snap_src = (dir / "snap-src").string();
  for (const std::int64_t e : {2, 4}) {
    ASSERT_EQ(durability::WriteSnapshot(snap_src, e, ReferenceGraph(e), {})
                  .status,
              SolveStatus::kConverged);
  }

  int variant = 0;
  for (std::int64_t k = 0; k <= num_edits; ++k) {
    // Torn debris sizes: none (clean shutdown at the boundary), 1 byte,
    // a partial record, and all-but-one byte of the next record.
    for (const std::int64_t torn :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{12},
          kWalRecordBytes - 1}) {
      if (torn > 0 && k == num_edits) continue;  // No next record to tear.
      const fs::path vdir = dir / ("v" + std::to_string(variant++));
      fs::create_directories(vdir);
      const std::string wal_path = (vdir / "wal.log").string();
      const std::int64_t len = kWalHeaderBytes + k * kWalRecordBytes + torn;
      const auto write_crashed_wal = [&wal_path, &full, len] {
        WriteFileBytes(wal_path,
                       full.substr(0, static_cast<std::size_t>(len)));
      };
      write_crashed_wal();
      // Only snapshots the process could have written before dying.
      const std::string snap_dir = (vdir / "snapshots").string();
      fs::create_directories(snap_dir);
      for (const std::int64_t e : {std::int64_t{2}, std::int64_t{4}}) {
        if (e <= k) {
          fs::copy_file(snap_src + "/snapshot-" + std::to_string(e),
                        snap_dir + "/snapshot-" + std::to_string(e));
        }
      }
      SCOPED_TRACE("boundary " + std::to_string(k) + ", torn bytes " +
                   std::to_string(torn));
      durability::RecoveryOptions ropts;
      ropts.wal_path = wal_path;
      ropts.snapshot_dir = snap_dir;
      ExpectRecoveredMatchesReference(ropts, k,
                                      torn == 0 ? SolveStatus::kConverged
                                                : SolveStatus::kBreakdown,
                                      write_crashed_wal);
    }
  }
}

/// Builds the standard crash scene: full WAL + snapshots at 2 and 4.
void PrepareFullScene(const fs::path& dir, std::string* wal_path,
                      std::string* snap_dir) {
  *wal_path = (dir / "wal.log").string();
  *snap_dir = (dir / "snapshots").string();
  WriteFullWal(*wal_path);
  for (const std::int64_t e : {2, 4}) {
    ASSERT_EQ(durability::WriteSnapshot(*snap_dir, e, ReferenceGraph(e), {})
                  .status,
              SolveStatus::kConverged);
  }
}

/// A serve loop under fault injection: WAL-append-then-apply for each
/// edit, snapshot every 2 acknowledged edits, first non-usable append
/// status = the crash. Returns the number of *acknowledged* edits.
std::int64_t SimulateServeUntilFailure(const std::string& wal_path,
                                       const std::string& snap_dir,
                                       SolveStatus* first_failure) {
  *first_failure = SolveStatus::kConverged;
  DynamicGraph g = DynamicGraph::FromGraph(BaseGraph());
  durability::WriteAheadLog wal;
  const SolveStatus open_status = wal.Open(wal_path, {});
  if (open_status != SolveStatus::kConverged) {
    *first_failure = open_status;
    return 0;
  }
  std::int64_t acknowledged = 0;
  for (const durability::WalRecord& e : Edits()) {
    const SolveStatus s = AppendEdit(wal, e);
    if (s != SolveStatus::kConverged) {
      // Write-ahead contract: the edit was never acknowledged and must
      // not land on the in-memory graph. Treat it as the crash.
      *first_failure = s;
      return acknowledged;
    }
    ApplyEdit(g, e);
    ++acknowledged;
    if (acknowledged % 2 == 0 && !snap_dir.empty()) {
      const durability::SnapshotWriteResult w =
          durability::WriteSnapshot(snap_dir, acknowledged, g, {});
      if (w.status != SolveStatus::kConverged &&
          *first_failure == SolveStatus::kConverged) {
        // A failed snapshot is not fatal: the previous one stands and
        // the WAL covers the gap. Record it and keep serving.
        *first_failure = w.status;
      }
    }
  }
  return acknowledged;
}

// Every durability fault site, injected at its natural moment (serve
// time for the write path, recovery time for the read path), must leave
// a state recovery can reassemble bit-identically.
TEST(DurabilityChaosTest, EveryFaultSiteRecoversConsistently) {
  if (!fault::Compiled()) {
    GTEST_SKIP() << "fault harness not compiled (IMPREG_FAULT_INJECTION=OFF)";
  }
  const std::int64_t num_edits = static_cast<std::int64_t>(Edits().size());

  {
    // wal/append: the 3rd edit is poisoned and rejected before framing.
    // The log holds exactly the 2 acknowledged edits; recovery is clean.
    SCOPED_TRACE("wal/append");
    const fs::path dir = FreshDir("impreg_chaos_append");
    const std::string wal_path = (dir / "wal.log").string();
    fault::Arm("wal/append", fault::FaultKind::kNaN, /*trigger_hit=*/3);
    SolveStatus failure;
    const std::int64_t acked =
        SimulateServeUntilFailure(wal_path, "", &failure);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(failure, SolveStatus::kInvalidInput);
    EXPECT_EQ(acked, 2);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    ExpectRecoveredMatchesReference(ropts, 2, SolveStatus::kConverged);
  }

  {
    // wal/fsync: the 3rd edit's bytes reach the file but fsync fails, so
    // the serve loop refuses to acknowledge it. After the crash the
    // record may legally surface (it was written, just never certified):
    // recovery lands at epoch 3 with a fully consistent state — an
    // unacknowledged edit may commit, but never a half-written one.
    SCOPED_TRACE("wal/fsync");
    const fs::path dir = FreshDir("impreg_chaos_fsync");
    const std::string wal_path = (dir / "wal.log").string();
    fault::Arm("wal/fsync", fault::FaultKind::kNaN, /*trigger_hit=*/4);
    SolveStatus failure;
    const std::int64_t acked =
        SimulateServeUntilFailure(wal_path, "", &failure);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(failure, SolveStatus::kBreakdown);
    EXPECT_EQ(acked, 3);  // 4th append unacknowledged.
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    ExpectRecoveredMatchesReference(ropts, 4, SolveStatus::kConverged);
  }

  {
    // snapshot/write: the epoch-4 snapshot write is poisoned and caught
    // before publish. Serving continues; recovery later uses the intact
    // epoch-2 and epoch-6 snapshots as if nothing happened.
    SCOPED_TRACE("snapshot/write");
    const fs::path dir = FreshDir("impreg_chaos_snapwrite");
    const std::string wal_path = (dir / "wal.log").string();
    const std::string snap_dir = (dir / "snapshots").string();
    fault::Arm("snapshot/write", fault::FaultKind::kNaN, /*trigger_hit=*/2);
    SolveStatus failure;
    const std::int64_t acked =
        SimulateServeUntilFailure(wal_path, snap_dir, &failure);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(failure, SolveStatus::kInvalidInput);
    EXPECT_EQ(acked, num_edits);
    const auto listed = durability::ListSnapshots(snap_dir);
    ASSERT_EQ(listed.size(), 3u);  // Epochs 8, 6, 2; no epoch-4 debris.
    EXPECT_EQ(listed[0].first, 8);
    EXPECT_EQ(listed[1].first, 6);
    EXPECT_EQ(listed[2].first, 2);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    ropts.snapshot_dir = snap_dir;
    ExpectRecoveredMatchesReference(ropts, num_edits, SolveStatus::kConverged);
  }

  {
    // wal/torn_tail: frame validation is forced to fail at record 4
    // during recovery. The certified prefix (3 records) is kept, the
    // file is repaired in place, and a second recovery is clean.
    SCOPED_TRACE("wal/torn_tail");
    const fs::path dir = FreshDir("impreg_chaos_torn");
    const std::string wal_path = (dir / "wal.log").string();
    WriteFullWal(wal_path);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    fault::Arm("wal/torn_tail", fault::FaultKind::kNaN, /*trigger_hit=*/4);
    std::unique_ptr<QueryEngine> recovered;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(report.status, SolveStatus::kBreakdown) << report.detail;
    EXPECT_TRUE(report.wal_truncated);
    EXPECT_EQ(report.epoch, 3);
    ExpectRecoveryServesReference(ropts, report, *recovered, 1);
    // The repair truncated the file: the next recovery sees a clean log.
    ExpectRecoveredMatchesReference(ropts, 3, SolveStatus::kConverged);
  }

  {
    // wal/replay_record: a record that passed its CRC is poisoned at
    // apply time. Replay stops at the good prefix; the graph never holds
    // a poisoned edge.
    SCOPED_TRACE("wal/replay_record");
    const fs::path dir = FreshDir("impreg_chaos_replay");
    const std::string wal_path = (dir / "wal.log").string();
    WriteFullWal(wal_path);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    fault::Arm("wal/replay_record", fault::FaultKind::kNaN,
               /*trigger_hit=*/2);
    std::unique_ptr<QueryEngine> recovered;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(report.status, SolveStatus::kBreakdown) << report.detail;
    EXPECT_EQ(report.epoch, 1);
    ExpectRecoveryServesReference(ropts, report, *recovered, 1);
    // The log itself is intact: a clean recovery reaches the full epoch.
    ExpectRecoveredMatchesReference(ropts, num_edits,
                                    SolveStatus::kConverged);
  }

  {
    // wal/append_remove: the first RemoveEdge append (edit 7) is
    // poisoned and rejected before framing — the delete twin of
    // wal/append. The log holds the 6 acknowledged edits and recovery
    // is clean at that epoch.
    SCOPED_TRACE("wal/append_remove");
    const fs::path dir = FreshDir("impreg_chaos_append_remove");
    const std::string wal_path = (dir / "wal.log").string();
    fault::Arm("wal/append_remove", fault::FaultKind::kNaN,
               /*trigger_hit=*/1);
    SolveStatus failure;
    const std::int64_t acked =
        SimulateServeUntilFailure(wal_path, "", &failure);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(failure, SolveStatus::kInvalidInput);
    EXPECT_EQ(acked, 6);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    ExpectRecoveredMatchesReference(ropts, 6, SolveStatus::kConverged);
  }

  {
    // wal/replay_remove: a remove record that passed its CRC is
    // poisoned at apply time. Replay keeps the 6-record good prefix —
    // the graph never sees a poisoned delete — and, the injection gone,
    // a second recovery replays the intact log to the full epoch.
    SCOPED_TRACE("wal/replay_remove");
    const fs::path dir = FreshDir("impreg_chaos_replay_remove");
    const std::string wal_path = (dir / "wal.log").string();
    WriteFullWal(wal_path);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    fault::Arm("wal/replay_remove", fault::FaultKind::kNaN,
               /*trigger_hit=*/1);
    std::unique_ptr<QueryEngine> recovered;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(report.status, SolveStatus::kBreakdown) << report.detail;
    EXPECT_EQ(report.epoch, 6);
    ExpectRecoveryServesReference(ropts, report, *recovered, 1);
    ExpectRecoveredMatchesReference(ropts, num_edits,
                                    SolveStatus::kConverged);
  }

  {
    // snapshot/load: the newest snapshot decodes to a poisoned graph and
    // is rejected exactly like a CRC failure; recovery falls back to the
    // older snapshot and replays the longer suffix to the same state.
    SCOPED_TRACE("snapshot/load");
    const fs::path dir = FreshDir("impreg_chaos_snapload");
    std::string wal_path, snap_dir;
    PrepareFullScene(dir, &wal_path, &snap_dir);
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    ropts.snapshot_dir = snap_dir;
    fault::Arm("snapshot/load", fault::FaultKind::kNaN, /*trigger_hit=*/1);
    std::unique_ptr<QueryEngine> recovered;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(report.status, SolveStatus::kBreakdown) << report.detail;
    EXPECT_EQ(report.snapshots_rejected, 1);
    EXPECT_EQ(report.snapshot_epoch, 2);
    EXPECT_EQ(report.epoch, num_edits);
    ExpectRecoveryServesReference(ropts, report, *recovered, 1);
  }
}

// ——— Warm-start survives restart ———

TEST(DurabilityTest, WarmRestartSurvivesRestart) {
  const fs::path dir = FreshDir("impreg_warm_restart");
  const std::string wal_path = (dir / "wal.log").string();
  const std::string snap_dir = (dir / "snapshots").string();
  const auto edits = Edits();

  Query coarse;
  coarse.seeds = {0};
  coarse.epsilon = 1e-4;
  Query tight = coarse;
  tight.epsilon = 1e-6;

  // The doomed process: answer the coarse query (cached with its (p, r)
  // state), apply one edit, snapshot, apply another, crash.
  {
    QueryEngine engine(DynamicGraph::FromGraph(BaseGraph()));
    durability::WriteAheadLog wal;
    ASSERT_EQ(wal.Open(wal_path, {}), SolveStatus::kConverged);
    const QueryResponse first = engine.Run(coarse);
    ASSERT_EQ(first.source, QuerySource::kCold);
    ASSERT_EQ(wal.AppendAddEdge(edits[0].u, edits[0].v, edits[0].weight),
              SolveStatus::kConverged);
    engine.AddEdge(edits[0].u, edits[0].v, edits[0].weight);
    ASSERT_EQ(durability::WriteSnapshot(snap_dir, 1, engine.graph(),
                                        engine.cache().ExportEntries())
                  .status,
              SolveStatus::kConverged);
    ASSERT_EQ(wal.AppendAddEdge(edits[1].u, edits[1].v, edits[1].weight),
              SolveStatus::kConverged);
    engine.AddEdge(edits[1].u, edits[1].v, edits[1].weight);
    // Crash: no clean shutdown, no final snapshot.
  }

  // The uninterrupted twin.
  QueryEngine reference(DynamicGraph::FromGraph(BaseGraph()));
  reference.Run(coarse);
  reference.AddEdge(edits[0].u, edits[0].v, edits[0].weight);
  reference.AddEdge(edits[1].u, edits[1].v, edits[1].weight);

  durability::RecoveryOptions ropts;
  ropts.wal_path = wal_path;
  ropts.snapshot_dir = snap_dir;
  std::unique_ptr<QueryEngine> recovered;
  const durability::RecoveryReport report = durability::RecoverEngine(
      DynamicGraph::FromGraph(BaseGraph()), {}, ropts, &recovered);
  ASSERT_EQ(report.status, SolveStatus::kConverged) << report.detail;
  EXPECT_EQ(report.snapshot_epoch, 1);
  EXPECT_EQ(report.epoch, 2);
  EXPECT_EQ(report.cache_restored, 1);
  ExpectGraphsBitIdentical(recovered->graph(), reference.graph());

  // The tighter re-query warm-restarts from the restored (p, r) state on
  // both engines and produces bitwise-identical answers: warm-start
  // survived the restart.
  const QueryResponse got = recovered->Run(tight);
  const QueryResponse want = reference.Run(tight);
  EXPECT_EQ(got.source, QuerySource::kWarm);
  EXPECT_EQ(want.source, QuerySource::kWarm);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t i = 0; i < got.scores.size(); ++i) {
    EXPECT_EQ(Bits(got.scores[i]), Bits(want.scores[i]));
  }
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(recovered->cache().stats().warm_hits, 1);
}

// ——— Snapshot-isolated serving (mixed ingest + query) ———

TEST(DurabilityTest, PinnedBatchIsIsolatedFromConcurrentIngest) {
  const auto edits = Edits();
  const auto batch = ServingBatch();
  for (const bool cache_on : {true, false}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE("cache=" + std::to_string(cache_on) +
                   " threads=" + std::to_string(threads));
      ScopedNumThreads scoped(threads);
      QueryEngine::Options opt;
      opt.enable_cache = cache_on;

      // Engine A: pin, then let the whole edit stream land *before* the
      // batch executes. Engine B: pin, execute, then ingest.
      QueryEngine a(DynamicGraph::FromGraph(BaseGraph()), opt);
      QueryEngine b(DynamicGraph::FromGraph(BaseGraph()), opt);
      const DynamicGraph::SnapshotView view_a = a.PinSnapshot();
      const DynamicGraph::SnapshotView view_b = b.PinSnapshot();
      EXPECT_EQ(view_a.epoch(), 0);

      const auto ingest = [&edits](QueryEngine& engine) {
        for (const auto& e : edits) {
          if (e.remove) {
            engine.RemoveEdge(e.u, e.v, e.weight);
          } else {
            engine.AddEdge(e.u, e.v, e.weight);
          }
        }
      };
      ingest(a);
      const auto responses_a = a.RunBatchOn(view_a, batch);
      const auto responses_b = b.RunBatchOn(view_b, batch);
      ingest(b);

      // The pinned view answered at epoch 0 regardless of ingest
      // interleaving, and both engines end in the same state.
      ExpectResponsesBitIdentical(responses_a, responses_b);
      ExpectGraphsBitIdentical(a.graph(), b.graph());
      EXPECT_EQ(a.Epoch(), b.Epoch());
      ExpectGraphsBitIdentical(view_a.graph(),
                               DynamicGraph::FromGraph(BaseGraph()));

      if (cache_on) {
        // Entries cached through the old view are stamped with the
        // *snapshot* epoch as per-entry validity (keys are epoch-free)
        // — they can never masquerade as current-epoch answers, and a
        // current-epoch lookup of the same key must miss or warm, not
        // serve the stale bits.
        const auto keys_a = a.cache().KeysInInsertionOrder();
        EXPECT_EQ(keys_a, b.cache().KeysInInsertionOrder());
        const std::string pinned_key = QueryEngine::CanonicalKey(batch[0]);
        EXPECT_NE(std::find(keys_a.begin(), keys_a.end(), pinned_key),
                  keys_a.end());
        // A current-epoch batch still agrees bitwise between the two
        // interleavings (warm restarts included).
        ExpectResponsesBitIdentical(a.RunBatch(batch), b.RunBatch(batch));
      }
    }
  }
}

TEST(DurabilityTest, SnapshotViewIsStableUnderConcurrentWrites) {
  DynamicGraph g = DynamicGraph::FromGraph(BaseGraph());
  const DynamicGraph::SnapshotView view = g.Snapshot(0);
  const std::int64_t edges_before = view.graph().NumEdges();
  const std::uint64_t volume_before = Bits(view.graph().TotalVolume());

  // Readers traverse the pinned view while the writer thread mutates
  // the live graph: the copy-on-write clone must keep the frozen rep
  // untouched (run under the tsan preset to certify no data race).
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&view] {
      for (int pass = 0; pass < 50; ++pass) {
        double sum = 0.0;
        for (NodeId u = 0; u < view.graph().NumNodes(); ++u) {
          sum += view.graph().Degree(u);
          for (const auto& arc : view.graph().Neighbors(u)) {
            sum += arc.weight * 1e-9 * arc.head;
          }
        }
        ASSERT_TRUE(std::isfinite(sum));
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    g.AddEdge(i % 24, (i * 7 + 5) % 24 == i % 24 ? (i * 7 + 6) % 24
                                                 : (i * 7 + 5) % 24,
              1.0 + 0.25 * (i % 3));
  }
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(view.graph().NumEdges(), edges_before);
  EXPECT_EQ(Bits(view.graph().TotalVolume()), volume_before);
  EXPECT_GT(g.NumEdges(), edges_before);
}

// ——— Shard-aware durability (ISSUE 9) ———
//
// The durability ladder composes with sharding: recovery rebuilds the
// shard placement from the fully-recovered graph, so a process that
// crashed mid-ingest and recovered at k shards serves bit-for-bit what
// a never-crashed k-shard process — and, by the invariance contract,
// an unsharded one — would serve.

TEST(DurabilityShardingTest, CrashMidIngestRecoversShardedBitIdentically) {
  const fs::path dir = FreshDir("impreg_shard_crash");
  const std::string wal_path = (dir / "wal.log").string();
  const std::string bytes = WriteFullWal(wal_path);
  // Crash after the 3rd acknowledged edit: truncate at the record
  // boundary, exactly the bytes an fsync-certified prefix leaves.
  const std::int64_t cut = 3;
  WriteFileBytes(wal_path,
                 bytes.substr(0, static_cast<std::size_t>(
                                     kWalHeaderBytes + kWalRecordBytes * cut)));

  QueryEngine::Options sharded;
  sharded.sharding.shards = 4;
  durability::RecoveryOptions ropts;
  ropts.wal_path = wal_path;

  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedNumThreads scoped(threads);
    std::unique_ptr<QueryEngine> recovered;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(BaseGraph()), sharded, ropts, &recovered);
    ASSERT_EQ(report.status, SolveStatus::kConverged) << report.detail;
    ASSERT_EQ(report.epoch, cut) << report.detail;
    ASSERT_NE(recovered, nullptr);
    ASSERT_NE(recovered->shards(), nullptr) << "recovery lost the sharding";

    // Placement is a deterministic function of the recovered graph:
    // identical to a never-crashed process that built shards at epoch 3.
    QueryEngine direct(ReferenceGraph(cut), sharded);
    ASSERT_NE(direct.shards(), nullptr);
    EXPECT_EQ(recovered->shards()->plan().owner,
              direct.shards()->plan().owner);
    EXPECT_EQ(recovered->shards()->plan().shards,
              direct.shards()->plan().shards);

    // Served bits: recovered k=4 == never-crashed k=4 (shards built at
    // construction, edits routed through AddEdge) == never-crashed k=1.
    const auto never_crashed_k4 = ReferenceEngine(cut, sharded);
    const auto never_crashed_k1 = ReferenceEngine(cut, {});
    ExpectGraphsBitIdentical(recovered->graph(), never_crashed_k4->graph());
    const auto got = recovered->RunBatch(ServingBatch());
    ExpectResponsesBitIdentical(got, never_crashed_k4->RunBatch(ServingBatch()));
    ExpectResponsesBitIdentical(got, never_crashed_k1->RunBatch(ServingBatch()));
  }
}

// The three shard fault sites (docs/robustness.md catalog), injected at
// their natural moments: a poisoned slice build falls back to unsharded
// serving (bit-identical anyway), a poisoned manifest write publishes
// nothing, a poisoned manifest load rejects the file as a unit — and in
// every case serving and recovery proceed.
TEST(DurabilityShardingTest, ShardFaultSitesFailSafe) {
  if (!fault::Compiled()) {
    GTEST_SKIP() << "fault harness not compiled (IMPREG_FAULT_INJECTION=OFF)";
  }

  {
    // shard/slice_build: the slice carve is poisoned; ShardSet::Build
    // rejects it and the engine serves unsharded — same bits.
    SCOPED_TRACE("shard/slice_build");
    QueryEngine::Options sharded;
    sharded.sharding.shards = 4;
    fault::Arm("shard/slice_build", fault::FaultKind::kNaN,
               /*trigger_hit=*/1);
    QueryEngine engine(DynamicGraph::FromGraph(BaseGraph()), sharded);
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_EQ(engine.shards(), nullptr) << "poisoned build not rejected";
    QueryEngine reference(DynamicGraph::FromGraph(BaseGraph()), {});
    ExpectResponsesBitIdentical(engine.RunBatch(ServingBatch()),
                                reference.RunBatch(ServingBatch()));
  }

  ShardManifest manifest;
  manifest.shards = 2;
  manifest.partition_seed = 7;
  manifest.num_nodes = 4;
  manifest.routing_epoch = 3;
  manifest.shard_epochs = {5, 5};
  manifest.owner = {0, 0, 1, 1};

  {
    // shard/manifest_write: the write is poisoned before any byte
    // reaches disk — nothing published, no tmp debris, and a retry
    // after the fault clears succeeds.
    SCOPED_TRACE("shard/manifest_write");
    const fs::path dir = FreshDir("impreg_shard_manifest_wfault");
    const std::string path = ShardManifestPath(dir.string());
    fault::Arm("shard/manifest_write", fault::FaultKind::kNaN,
               /*trigger_hit=*/1);
    EXPECT_FALSE(WriteShardManifest(path, manifest));
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::is_empty(dir)) << "torn manifest debris left behind";
    EXPECT_TRUE(WriteShardManifest(path, manifest));
  }

  {
    // shard/manifest_load: a manifest that passes its CRC is poisoned
    // at decode time and rejected as a unit, exactly like corruption;
    // the caller recomputes the plan. The file is untouched, so a
    // clean load still round-trips.
    SCOPED_TRACE("shard/manifest_load");
    const fs::path dir = FreshDir("impreg_shard_manifest_lfault");
    const std::string path = ShardManifestPath(dir.string());
    ASSERT_TRUE(WriteShardManifest(path, manifest));
    ShardManifest loaded;
    std::string detail;
    fault::Arm("shard/manifest_load", fault::FaultKind::kNaN,
               /*trigger_hit=*/1);
    EXPECT_FALSE(LoadShardManifest(path, &loaded, &detail));
    EXPECT_GT(fault::InjectionCount(), 0);
    fault::Disarm();
    ASSERT_TRUE(LoadShardManifest(path, &loaded, &detail)) << detail;
    EXPECT_EQ(loaded.owner, manifest.owner);
    EXPECT_EQ(loaded.shard_epochs, manifest.shard_epochs);
    EXPECT_EQ(loaded.routing_epoch, manifest.routing_epoch);
  }
}

}  // namespace
}  // namespace impreg
