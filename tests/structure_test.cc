#include "graph/structure.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"

namespace impreg {
namespace {

TEST(CoreTest, CliqueIsItsOwnCore) {
  const std::vector<int> core = CoreNumbers(CompleteGraph(6));
  for (int c : core) EXPECT_EQ(c, 5);
  EXPECT_EQ(Degeneracy(CompleteGraph(6)), 5);
}

TEST(CoreTest, TreeHasDegeneracyOne) {
  EXPECT_EQ(Degeneracy(CompleteBinaryTree(31)), 1);
  EXPECT_EQ(Degeneracy(PathGraph(10)), 1);
  EXPECT_EQ(Degeneracy(StarGraph(10)), 1);
}

TEST(CoreTest, CycleIsTwoCore) {
  const std::vector<int> core = CoreNumbers(CycleGraph(9));
  for (int c : core) EXPECT_EQ(c, 2);
}

TEST(CoreTest, LollipopSeparatesCliqueFromTail) {
  const Graph g = LollipopGraph(6, 5);  // K6 + 5-node tail.
  const std::vector<int> core = CoreNumbers(g);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(core[u], 5);
  for (NodeId u = 6; u < 11; ++u) EXPECT_EQ(core[u], 1);
  const std::vector<NodeId> k5 = KCore(g, 5);
  EXPECT_EQ(k5.size(), 6u);
}

TEST(CoreTest, WhiskersArePeeledFirst) {
  Rng rng(1);
  SocialGraphParams params;
  params.core_nodes = 1000;
  params.num_communities = 3;
  params.num_whiskers = 20;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const std::vector<int> core = CoreNumbers(sg.graph);
  for (const auto& whisker : sg.whiskers) {
    for (NodeId u : whisker) EXPECT_EQ(core[u], 1);
  }
}

TEST(CoreTest, CoreNumberAtMostDegree) {
  Rng rng(2);
  const Graph g = ErdosRenyi(200, 0.05, rng);
  const std::vector<int> core = CoreNumbers(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(core[u], g.OutDegree(u));
    EXPECT_GE(core[u], 0);
  }
}

TEST(CoreTest, KCoreInducedMinDegreeIsK) {
  // Definitional property: within the k-core, every node has ≥ k
  // neighbors that are also in the k-core.
  Rng rng(3);
  const Graph g = ErdosRenyi(150, 0.08, rng);
  const int k = 4;
  const std::vector<NodeId> core_nodes = KCore(g, k);
  std::vector<char> in_core(g.NumNodes(), 0);
  for (NodeId u : core_nodes) in_core[u] = 1;
  for (NodeId u : core_nodes) {
    int internal = 0;
    for (const Arc& arc : g.Neighbors(u)) {
      if (arc.head != u && in_core[arc.head]) ++internal;
    }
    EXPECT_GE(internal, k);
  }
}

TEST(TriangleTest, KnownCounts) {
  EXPECT_EQ(CountTriangles(CompleteGraph(5)), 10);  // C(5,3).
  EXPECT_EQ(CountTriangles(CycleGraph(3)), 1);
  EXPECT_EQ(CountTriangles(CycleGraph(8)), 0);
  EXPECT_EQ(CountTriangles(PathGraph(10)), 0);
  EXPECT_EQ(CountTriangles(StarGraph(10)), 0);
}

TEST(TriangleTest, PerNodeCountsOnClique) {
  const std::vector<std::int64_t> counts = TriangleCounts(CompleteGraph(6));
  for (std::int64_t c : counts) EXPECT_EQ(c, 10);  // C(5,2).
}

TEST(TriangleTest, SelfLoopsIgnored) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 0, 4.0);
  EXPECT_EQ(CountTriangles(builder.Build()), 1);
}

TEST(TriangleTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ErdosRenyi(40, 0.2, rng);
    std::int64_t brute = 0;
    for (NodeId a = 0; a < 40; ++a) {
      for (NodeId b = a + 1; b < 40; ++b) {
        if (!g.HasEdge(a, b)) continue;
        for (NodeId c = b + 1; c < 40; ++c) {
          if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++brute;
        }
      }
    }
    EXPECT_EQ(CountTriangles(g), brute);
  }
}

TEST(ClusteringTest, CliqueHasCoefficientOne) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(CompleteGraph(7)), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteGraph(7)), 1.0);
}

TEST(ClusteringTest, TreeHasCoefficientZero) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(CompleteBinaryTree(15)), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(StarGraph(8)), 0.0);
}

TEST(ClusteringTest, LocalValuesInUnitInterval) {
  Rng rng(5);
  const Graph g = WattsStrogatz(100, 6, 0.1, rng);
  for (double c : LocalClusteringCoefficients(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(ClusteringTest, SmallWorldHasHighClustering) {
  Rng rng(6);
  const Graph lattice = WattsStrogatz(300, 6, 0.0, rng);
  const Graph random = ErdosRenyi(300, 6.0 / 299.0, rng);
  EXPECT_GT(AverageClusteringCoefficient(lattice),
            5.0 * AverageClusteringCoefficient(random) + 0.1);
}

TEST(ClusteringTest, EmptyAndTinyGraphs) {
  GraphBuilder empty(0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(empty.Build()), 0.0);
  EXPECT_EQ(Degeneracy(empty.Build()), 0);
  GraphBuilder single(1);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(single.Build()), 0.0);
}

}  // namespace
}  // namespace impreg
