#include "flow/mqi.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "graph/social.h"
#include "util/rng.h"

namespace impreg {
namespace {

TEST(MqiTest, NeverWorsensConductance) {
  Rng rng(1);
  const Graph g = ErdosRenyi(60, 0.1, rng);
  Rng pick(2);
  for (int trial = 0; trial < 10; ++trial) {
    const int k = 5 + static_cast<int>(pick.NextBounded(25));
    std::vector<int> sample = pick.SampleWithoutReplacement(60, k);
    std::vector<NodeId> set(sample.begin(), sample.end());
    const double before = Conductance(g, set);
    const MqiResult result = Mqi(g, set);
    EXPECT_LE(result.stats.conductance, before + 1e-9);
  }
}

TEST(MqiTest, ResultIsSubsetOfInput) {
  Rng rng(3);
  const Graph g = ErdosRenyi(50, 0.15, rng);
  std::vector<NodeId> set;
  for (NodeId u = 0; u < 20; ++u) set.push_back(u);
  const MqiResult result = Mqi(g, set);
  std::vector<char> in_input(g.NumNodes(), 0);
  for (NodeId u : set) in_input[u] = 1;
  for (NodeId u : result.set) EXPECT_TRUE(in_input[u]);
  EXPECT_FALSE(result.set.empty());
}

TEST(MqiTest, ExtractsWhiskerFromSloppySet) {
  // A lollipop's tail is the ideal low-conductance subset of a sloppy
  // half that contains it.
  const Graph g = LollipopGraph(20, 10);
  std::vector<NodeId> sloppy;
  // Tail nodes (20..29) plus a few clique nodes.
  for (NodeId u = 20; u < 30; ++u) sloppy.push_back(u);
  sloppy.push_back(1);
  sloppy.push_back(2);
  sloppy.push_back(3);
  const MqiResult result = Mqi(g, sloppy);
  // The improved set should be (close to) the pure tail: cut 1.
  EXPECT_DOUBLE_EQ(result.stats.cut, 1.0);
  EXPECT_LE(result.stats.conductance, Conductance(g, sloppy));
  EXPECT_TRUE(result.certified_optimal);
}

TEST(MqiTest, CertifiesOptimalityOnCliqueHalf) {
  // Half of a complete graph cannot be improved by any subset.
  const Graph g = CompleteGraph(10);
  std::vector<NodeId> half = {0, 1, 2, 3, 4};
  const MqiResult result = Mqi(g, half);
  EXPECT_TRUE(result.certified_optimal);
  EXPECT_EQ(result.set.size(), 5u);
}

TEST(MqiTest, LargerVolumeSideIsComplemented) {
  const Graph g = DumbbellGraph(6, 0);
  // Pass the big side; MQI should work on the complement (small side)
  // and still return a low-conductance set.
  std::vector<NodeId> big;
  for (NodeId u = 0; u < 7; ++u) big.push_back(u);  // 7 of 12 nodes.
  const MqiResult result = Mqi(g, big);
  EXPECT_LE(result.stats.volume, result.stats.complement_volume);
  EXPECT_LE(result.stats.conductance, 1.0);
}

TEST(MqiTest, DisconnectedSetIsAlreadyOptimal) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  const Graph g = builder.Build();
  const MqiResult result = Mqi(g, {0, 1, 2});
  EXPECT_DOUBLE_EQ(result.stats.conductance, 0.0);
  EXPECT_TRUE(result.certified_optimal);
}

TEST(MqiTest, ImprovesMultilevelStyleBisectionOnSocialGraph) {
  Rng rng(5);
  SocialGraphParams params;
  params.core_nodes = 1200;
  params.num_communities = 4;
  params.num_whiskers = 25;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  // A sloppy "half": nodes 0..n/2.
  std::vector<NodeId> half;
  for (NodeId u = 0; u < sg.graph.NumNodes() / 2; ++u) half.push_back(u);
  const double before = Conductance(sg.graph, half);
  const MqiResult result = Mqi(sg.graph, half);
  EXPECT_LT(result.stats.conductance, before);
  // On whiskered graphs MQI typically drills down to a whisker-grade
  // cut: conductance far below the sloppy half's.
  EXPECT_LT(result.stats.conductance, 0.5 * before);
}

TEST(MqiTest, SingleNodeSetIsStable) {
  const Graph g = StarGraph(6);
  const MqiResult result = Mqi(g, {3});
  EXPECT_EQ(result.set, (std::vector<NodeId>{3}));
}

}  // namespace
}  // namespace impreg
