#include "regularization/estimators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(SubsampleTest, KeepAllIsIdentity) {
  Rng rng(1);
  const Graph g = CompleteGraph(10);
  const Graph sample = SubsampleEdges(g, 1.0, rng);
  EXPECT_EQ(sample.NumEdges(), g.NumEdges());
  EXPECT_EQ(sample.NumNodes(), g.NumNodes());
}

TEST(SubsampleTest, KeepNoneIsEmpty) {
  Rng rng(2);
  const Graph g = CompleteGraph(8);
  const Graph sample = SubsampleEdges(g, 0.0, rng);
  EXPECT_EQ(sample.NumEdges(), 0);
  EXPECT_EQ(sample.NumNodes(), 8);
}

TEST(SubsampleTest, EdgeCountConcentrates) {
  Rng rng(3);
  const Graph g = CompleteGraph(80);  // 3160 edges.
  const Graph sample = SubsampleEdges(g, 0.25, rng);
  EXPECT_NEAR(sample.NumEdges(), 790.0, 5.0 * std::sqrt(790.0 * 0.75));
}

TEST(SubsampleTest, SampleEdgesAreSubset) {
  Rng rng(4);
  const Graph g = ErdosRenyi(50, 0.2, rng);
  const Graph sample = SubsampleEdges(g, 0.5, rng);
  for (NodeId u = 0; u < sample.NumNodes(); ++u) {
    for (const Arc& arc : sample.Neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(u, arc.head));
      EXPECT_DOUBLE_EQ(arc.weight, g.EdgeWeight(u, arc.head));
    }
  }
}

class EstimationTest : public testing::Test {
 protected:
  static constexpr NodeId kBlock = 120;

  Graph Population() {
    Rng rng(5);
    return PlantedPartition(2, kBlock, 0.3, 0.02, rng);
  }

  std::vector<int> Labels(const Graph& g) {
    std::vector<int> labels(g.NumNodes());
    for (NodeId u = 0; u < g.NumNodes(); ++u) labels[u] = u < kBlock;
    return labels;
  }
};

TEST_F(EstimationTest, DensePathConvergesToPerfect) {
  const Graph population = Population();
  const std::vector<int> labels = Labels(population);
  const auto path =
      HeatKernelEstimationPath(population, labels, {1.0, 8.0, 64.0});
  ASSERT_EQ(path.size(), 3u);
  // Accuracy improves with t on the clean graph and reaches ~1.
  EXPECT_LE(path[0].accuracy, path[2].accuracy + 1e-12);
  EXPECT_GT(path[2].accuracy, 0.95);
  // Rayleigh decreases with t (less regularization).
  EXPECT_GE(path[0].rayleigh, path[1].rayleigh);
  EXPECT_GE(path[1].rayleigh, path[2].rayleigh);
}

TEST_F(EstimationTest, ExactEstimateOnCleanGraphIsPerfect) {
  const Graph population = Population();
  const EstimationPoint exact =
      ExactEigenvectorEstimate(population, Labels(population));
  EXPECT_GT(exact.accuracy, 0.97);
  EXPECT_GT(exact.rayleigh, 0.0);
}

TEST_F(EstimationTest, RegularizationBeatsExactOnSparseSample) {
  // The Perry–Mahoney phenomenon: at aggressive subsampling, a finite
  // diffusion time outperforms the exact eigenvector of the sample.
  const Graph population = Population();
  const std::vector<int> labels = Labels(population);
  Rng rng(99);
  const Graph sample = SubsampleEdges(population, 0.08, rng);
  EstimationOptions options;
  options.trials = 5;
  const auto path = HeatKernelEstimationPath(
      sample, labels, {4.0, 8.0, 16.0, 32.0}, options);
  const EstimationPoint exact =
      ExactEigenvectorEstimate(sample, labels, options);
  double best = 0.0;
  for (const auto& p : path) best = std::max(best, p.accuracy);
  EXPECT_GT(best, exact.accuracy + 0.02);
}

TEST_F(EstimationTest, IgnoresUnlabeledNodes) {
  const Graph population = Population();
  std::vector<int> labels = Labels(population);
  // Unlabel half the nodes; accuracy must still be computable and high.
  for (NodeId u = 0; u < population.NumNodes(); u += 2) labels[u] = -1;
  const EstimationPoint exact = ExactEigenvectorEstimate(population, labels);
  EXPECT_GT(exact.accuracy, 0.95);
}

TEST_F(EstimationTest, AccuracyIsAtLeastChance) {
  Rng rng(7);
  const Graph g = ErdosRenyi(60, 0.2, rng);  // No planted structure.
  std::vector<int> labels(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) labels[u] = u % 2;
  const auto path = HeatKernelEstimationPath(g, labels, {2.0});
  EXPECT_GE(path[0].accuracy, 0.5);
  EXPECT_LE(path[0].accuracy, 0.7);  // And not mysteriously high.
}

}  // namespace
}  // namespace impreg
