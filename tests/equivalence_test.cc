#include "regularization/equivalence.h"

#include <cmath>

#include <gtest/gtest.h>

#include "diffusion/heat_kernel.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "linalg/graph_operators.h"
#include "regularization/density.h"

namespace impreg {
namespace {

// The paper's central theoretical claim (§3.1, Problem (5), ref [32]):
// each diffusion's density matrix EXACTLY solves the regularized SDP
// with the matching G and η. These tests verify it to numerical
// precision across graph families and parameter ranges.

Graph FamilyGraph(int id) {
  Rng rng(100 + id);
  switch (id % 5) {
    case 0:
      return CycleGraph(16);
    case 1:
      return CavemanGraph(3, 5);
    case 2:
      return LollipopGraph(7, 5);
    case 3:
      return GridGraph(4, 5);
    default: {
      // Connected ER (regenerate until connected; cheap at this size).
      Graph g = ErdosRenyi(24, 0.25, rng);
      while (!IsConnected(g)) g = ErdosRenyi(24, 0.25, rng);
      return g;
    }
  }
}

class HeatKernelEquivalenceTest
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HeatKernelEquivalenceTest, DiffusionSolvesEntropySdpExactly) {
  const Graph g = FamilyGraph(std::get<0>(GetParam()));
  const double t = std::get<1>(GetParam());
  const EquivalenceReport report = VerifyHeatKernelEquivalence(g, t);
  EXPECT_LT(report.trace_distance, 1e-8) << "t = " << t;
  EXPECT_NEAR(report.objective_gap, 0.0, 1e-8);
  EXPECT_DOUBLE_EQ(report.implied.eta, t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeatKernelEquivalenceTest,
    testing::Combine(testing::Values(0, 1, 2, 3, 4),
                     testing::Values(0.5, 2.0, 8.0)));

class PageRankEquivalenceTest
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PageRankEquivalenceTest, DiffusionSolvesLogDetSdpExactly) {
  const Graph g = FamilyGraph(std::get<0>(GetParam()));
  const double gamma = std::get<1>(GetParam());
  const EquivalenceReport report = VerifyPageRankEquivalence(g, gamma);
  EXPECT_LT(report.trace_distance, 1e-8) << "gamma = " << gamma;
  EXPECT_NEAR(report.objective_gap, 0.0, 1e-7);
  EXPECT_NEAR(report.implied.mu, gamma / (1.0 - gamma), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageRankEquivalenceTest,
    testing::Combine(testing::Values(0, 1, 2, 3, 4),
                     testing::Values(0.05, 0.15, 0.5)));

class LazyWalkEquivalenceTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LazyWalkEquivalenceTest, DiffusionSolvesPNormSdpExactly) {
  const Graph g = FamilyGraph(std::get<0>(GetParam()));
  const int steps = std::get<1>(GetParam());
  const EquivalenceReport report =
      VerifyLazyWalkEquivalence(g, 0.5, steps);
  EXPECT_LT(report.trace_distance, 1e-7) << "steps = " << steps;
  EXPECT_NEAR(report.objective_gap, 0.0, 1e-7);
  EXPECT_NEAR(report.implied.p, 1.0 + 1.0 / steps, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LazyWalkEquivalenceTest,
    testing::Combine(testing::Values(0, 1, 2, 3, 4),
                     testing::Values(1, 3, 10)));

TEST(EquivalenceTest, HeatKernelDensityMatchesDiffusionModule) {
  // The dense HeatKernelDensity must agree with the iterative
  // diffusion module applied to basis vectors (hat space), projected
  // and normalized: both represent exp(−tℒ) restricted off the trivial
  // eigenvector.
  const Graph g = CavemanGraph(2, 5);
  const double t = 3.0;
  const DenseMatrix density = HeatKernelDensity(g, t);
  // Compute P exp(−tℒ) P / Tr via the Krylov solver column by column.
  const int n = g.NumNodes();
  const Vector trivial = TrivialNormalizedEigenvector(g);
  DenseMatrix reference(n, n);
  for (int j = 0; j < n; ++j) {
    Vector e(n, 0.0);
    e[j] = 1.0;
    ProjectOut(trivial, e);
    HeatKernelOptions options;
    options.t = t;
    Vector col = HeatKernelNormalized(g, e, options);
    ProjectOut(trivial, col);
    for (int i = 0; i < n; ++i) reference.At(i, j) = col[i];
  }
  const DenseMatrix normalized = NormalizeTrace(reference);
  EXPECT_LT(TraceDistance(density, normalized), 1e-8);
}

TEST(EquivalenceTest, MoreAggressiveDiffusionIsLessRegularized) {
  // Larger t (heat kernel) ⇒ closer to the rank-one exact answer ⇒
  // smaller Tr(ℒX). This is the aggressiveness/regularization tradeoff
  // of §3.1.
  const Graph g = LollipopGraph(8, 6);
  double previous = 10.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 16.0}) {
    const EquivalenceReport report = VerifyHeatKernelEquivalence(g, t);
    EXPECT_LT(report.diffusion_rayleigh, previous + 1e-12);
    previous = report.diffusion_rayleigh;
  }
}

TEST(EquivalenceTest, PageRankEtaIsPositiveAndMonotone) {
  const Graph g = GridGraph(4, 4);
  double prev_mu = 0.0;
  for (double gamma : {0.05, 0.2, 0.5, 0.8}) {
    const ImpliedParameters imp = ImpliedForPageRank(g, gamma);
    EXPECT_GT(imp.eta, 0.0);
    EXPECT_GT(imp.mu, prev_mu);  // μ = γ/(1−γ) increases with γ.
    prev_mu = imp.mu;
  }
}

TEST(EquivalenceTest, LazyWalkRequiresHalfLaziness) {
  const Graph g = CycleGraph(8);
  EXPECT_DEATH(LazyWalkDensity(g, 0.2, 3), "alpha");
}

TEST(EquivalenceTest, DensitiesAreValidDensityMatrices) {
  const Graph g = GridGraph(3, 4);
  for (const DenseMatrix& x :
       {HeatKernelDensity(g, 2.0), PageRankDensity(g, 0.15),
        LazyWalkDensity(g, 0.5, 4)}) {
    const DensityDiagnostics diag = CheckDensity(g, x);
    EXPECT_LT(diag.trace_defect, 1e-10);
    EXPECT_LT(diag.psd_defect, 1e-10);
    EXPECT_LT(diag.orthogonality_defect, 1e-9);
  }
}

}  // namespace
}  // namespace impreg
