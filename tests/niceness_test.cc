#include "ncp/niceness.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/random_graphs.h"

namespace impreg {
namespace {

TEST(NicenessTest, CliqueClusterIsMaximallyNice) {
  const Graph g = DumbbellGraph(8, 0);
  std::vector<NodeId> clique;
  for (NodeId u = 0; u < 8; ++u) clique.push_back(u);
  const NicenessReport report = ComputeNiceness(g, clique);
  EXPECT_DOUBLE_EQ(report.avg_shortest_path, 1.0);
  EXPECT_TRUE(report.connected);
  EXPECT_DOUBLE_EQ(report.density, 1.0);
  EXPECT_EQ(report.diameter, 1);
  EXPECT_LT(report.external_conductance, 0.05);
  // Internal conductance of a clique is high (≈ 0.5 for even split).
  EXPECT_GT(report.internal_conductance, 0.4);
  EXPECT_LT(report.conductance_ratio, 0.1);
}

TEST(NicenessTest, PathClusterIsStringyNotNice) {
  const Graph g = LollipopGraph(10, 12);
  std::vector<NodeId> tail;
  for (NodeId u = 10; u < 22; ++u) tail.push_back(u);
  const NicenessReport report = ComputeNiceness(g, tail);
  EXPECT_TRUE(report.connected);
  // A path of 12 nodes: long average distance, low internal
  // conductance.
  EXPECT_GT(report.avg_shortest_path, 3.0);
  EXPECT_LT(report.internal_conductance, 0.3);
  EXPECT_EQ(report.diameter, 11);
  // External conductance is tiny (one attachment edge), but the ratio
  // is penalized by the weak interior.
  EXPECT_LT(report.external_conductance, 0.1);
}

TEST(NicenessTest, DisconnectedClusterIsPenalized) {
  const Graph g = PathGraph(10);
  const NicenessReport report = ComputeNiceness(g, {0, 1, 8, 9});
  EXPECT_FALSE(report.connected);
  EXPECT_DOUBLE_EQ(report.internal_conductance, 0.0);
  EXPECT_GE(report.conductance_ratio, 1e8);
}

TEST(NicenessTest, SingletonCluster) {
  const Graph g = StarGraph(5);
  const NicenessReport report = ComputeNiceness(g, {1});
  EXPECT_DOUBLE_EQ(report.internal_conductance, 1.0);
  EXPECT_DOUBLE_EQ(report.avg_shortest_path, 0.0);
  EXPECT_EQ(report.diameter, 0);
  EXPECT_TRUE(report.connected);
}

TEST(NicenessTest, TwoNodeEdgeCluster) {
  const Graph g = PathGraph(4);
  const NicenessReport report = ComputeNiceness(g, {1, 2});
  EXPECT_TRUE(report.connected);
  EXPECT_DOUBLE_EQ(report.internal_conductance, 1.0);
  EXPECT_DOUBLE_EQ(report.avg_shortest_path, 1.0);
}

TEST(NicenessTest, RatioComparesCompactVsStringyAtSimilarConductance) {
  // The Figure-1 mechanism in miniature: a clique community and a
  // whisker path with the SAME external cut; the clique must score
  // "nicer" on both measures.
  // Sizing: the whisker path has *larger volume* than the clique so it
  // wins on conductance (both cut exactly one edge), while the clique
  // is far more cohesive. Core K8 (vol 56), clique K6 (vol 31 with the
  // attachment), whisker path of 20 nodes (vol 39).
  GraphBuilder builder(34);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) builder.AddEdge(i, j);
  }
  // Clique cluster: nodes 8..13, complete, one edge to core.
  for (NodeId i = 8; i < 14; ++i) {
    for (NodeId j = i + 1; j < 14; ++j) builder.AddEdge(i, j);
  }
  builder.AddEdge(8, 0);
  // Whisker path: nodes 14..33, one edge to core.
  builder.AddEdge(14, 1);
  for (NodeId i = 14; i < 33; ++i) builder.AddEdge(i, i + 1);
  const Graph g = builder.Build();

  std::vector<NodeId> clique, whisker;
  for (NodeId u = 8; u < 14; ++u) clique.push_back(u);
  for (NodeId u = 14; u < 34; ++u) whisker.push_back(u);
  const NicenessReport nice_clique = ComputeNiceness(g, clique);
  const NicenessReport nice_whisker = ComputeNiceness(g, whisker);
  EXPECT_LT(nice_clique.avg_shortest_path, nice_whisker.avg_shortest_path);
  EXPECT_LT(nice_clique.conductance_ratio, nice_whisker.conductance_ratio);
  // While the whisker actually has the better (lower) conductance.
  EXPECT_LT(nice_whisker.external_conductance,
            nice_clique.external_conductance);
}

}  // namespace
}  // namespace impreg
