// Acceptance tests for the deterministic load harness and admission
// control (src/service/load, core/budget_pool.h).
//
// The load story rests on four claims, each pinned here:
//  1. Replay: the same WorkloadOptions regenerate the identical
//     request stream and the identical per-query digests.
//  2. Statistics: the Zipf sampler's empirical frequencies match its
//     analytic CDF — the workload really is the skew it advertises.
//  3. Overload determinism: under admission pressure the *same* query
//     set is shed at 1 and 8 threads, cache on or off.
//  4. Honesty: no degraded or shed result is ever emitted unmarked.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "graph/generators.h"
#include "service/load/harness.h"
#include "service/load/workload.h"
#include "service/query_engine.h"
#include "util/rng.h"

namespace impreg {
namespace {

WorkloadOptions BaseOptions() {
  WorkloadOptions options;
  options.seed = 7;
  options.num_requests = 256;
  options.zipf_exponent = 1.1;
  options.batch_size = 8;
  options.epsilon = 1e-4;
  return options;
}

TEST(WorkloadTest, GenerationIsAPureFunctionOfOptions) {
  const Graph g = CavemanGraph(8, 10);
  WorkloadOptions options = BaseOptions();
  options.write_fraction = 0.15;
  options.tenants = {"a", "b"};
  const Workload first = GenerateWorkload(options, g.NumNodes());
  const Workload second = GenerateWorkload(options, g.NumNodes());
  ASSERT_EQ(first.events.size(), second.events.size());
  for (std::size_t i = 0; i < first.events.size(); ++i) {
    const WorkloadEvent& a = first.events[i];
    const WorkloadEvent& b = second.events[i];
    EXPECT_EQ(a.is_add_edge, b.is_add_edge);
    if (a.is_add_edge) {
      EXPECT_EQ(a.u, b.u);
      EXPECT_EQ(a.v, b.v);
    } else {
      EXPECT_EQ(a.query.seeds, b.query.seeds);
      EXPECT_EQ(a.query.tenant, b.query.tenant);
    }
  }
  EXPECT_EQ(first.batch_sizes, second.batch_sizes);
  EXPECT_EQ(first.interarrival, second.interarrival);
}

TEST(WorkloadTest, BatchPartitionCoversEveryEventForEveryPattern) {
  const Graph g = CavemanGraph(8, 10);
  for (const ArrivalPattern pattern :
       {ArrivalPattern::kSteady, ArrivalPattern::kBurst,
        ArrivalPattern::kRamp}) {
    SCOPED_TRACE(ArrivalPatternName(pattern));
    WorkloadOptions options = BaseOptions();
    options.pattern = pattern;
    const Workload workload = GenerateWorkload(options, g.NumNodes());
    int total = 0;
    for (const int size : workload.batch_sizes) {
      EXPECT_GE(size, 1);
      total += size;
    }
    EXPECT_EQ(total, options.num_requests);
    EXPECT_EQ(workload.interarrival.size(), workload.batch_sizes.size());
    for (const double gap : workload.interarrival) EXPECT_GE(gap, 0.0);
  }
}

TEST(WorkloadTest, ZipfEmpiricalFrequenciesMatchAnalyticCdf) {
  constexpr std::int64_t kRanks = 64;
  constexpr int kSamples = 200000;
  const ZipfSampler zipf(kRanks, 1.2);

  // The CDF itself must be a CDF.
  EXPECT_DOUBLE_EQ(zipf.Cdf(kRanks - 1), 1.0);
  for (std::int64_t k = 1; k < kRanks; ++k) {
    EXPECT_GE(zipf.Cdf(k), zipf.Cdf(k - 1));
  }

  Rng rng(11);
  std::vector<int> counts(kRanks, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::int64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kRanks);
    ++counts[static_cast<std::size_t>(k)];
  }
  for (std::int64_t k = 0; k < kRanks; ++k) {
    const double expected = zipf.Cdf(k) - zipf.Cdf(k - 1);
    const double observed =
        static_cast<double>(counts[static_cast<std::size_t>(k)]) / kSamples;
    // 200k draws put the per-rank standard error below 1.2e-3; 5e-3 is
    // > 4 sigma for every rank, so this never flakes on a correct
    // sampler and still catches an off-by-one in the inverse CDF
    // (rank 0 carries ~0.23 of the mass at s = 1.2).
    EXPECT_NEAR(observed, expected, 5e-3) << "rank " << k;
  }
  // The skew is really there: the head outweighs the uniform share by
  // an order of magnitude.
  EXPECT_GT(zipf.Cdf(0), 10.0 / static_cast<double>(kRanks));
}

TEST(LoadHarnessTest, ReplayProducesBitIdenticalDigests) {
  const Graph g = CavemanGraph(8, 10);
  WorkloadOptions options = BaseOptions();
  options.write_fraction = 0.1;
  auto run = [&] {
    QueryEngine engine(g);
    const Workload workload = GenerateWorkload(options, g.NumNodes());
    return RunLoadWorkload(engine, workload);
  };
  const LoadStats first = run();
  const LoadStats second = run();
  EXPECT_EQ(first.status, SolveStatus::kConverged);
  ASSERT_EQ(first.digests.size(), second.digests.size());
  ASSERT_GT(first.digests.size(), 0u);
  for (std::size_t i = 0; i < first.digests.size(); ++i) {
    EXPECT_EQ(first.digests[i], second.digests[i]) << "query " << i;
  }
  EXPECT_EQ(first.cold, second.cold);
  EXPECT_EQ(first.warm, second.warm);
  EXPECT_EQ(first.cached, second.cached);
  EXPECT_EQ(first.writes, second.writes);
}

/// Overload workload + engine options used by the determinism tests:
/// two tenants, a pool small enough that the heavy skew drains it.
struct OverloadSetup {
  WorkloadOptions workload;
  QueryEngine::Options engine;
};

OverloadSetup Overload() {
  OverloadSetup setup;
  setup.workload = BaseOptions();
  setup.workload.tenants = {"heavy", "light"};
  setup.workload.max_work = 4096;
  setup.engine.admission.enabled = true;
  setup.engine.admission.policy.capacity = 200000;
  setup.engine.admission.policy.degrade_fraction = 0.4;
  setup.engine.admission.policy.shed_fraction = 0.6;
  setup.engine.admission.policy.degraded_cap = 512;
  return setup;
}

std::vector<std::size_t> ShedSet(const LoadStats& stats) {
  std::vector<std::size_t> shed;
  for (std::size_t i = 0; i < stats.digests.size(); ++i) {
    if (stats.digests[i].shed) shed.push_back(i);
  }
  return shed;
}

TEST(LoadHarnessTest, OverloadShedsTheSameQueriesAtOneAndEightThreads) {
  const Graph g = CavemanGraph(8, 10);
  const OverloadSetup setup = Overload();
  const Workload workload = GenerateWorkload(setup.workload, g.NumNodes());

  for (const bool cache_on : {true, false}) {
    SCOPED_TRACE(cache_on ? "cache on" : "cache off");
    QueryEngine::Options engine_options = setup.engine;
    engine_options.enable_cache = cache_on;
    auto run = [&](int threads) {
      ScopedNumThreads scoped(threads);
      QueryEngine engine(g, engine_options);
      return RunLoadWorkload(engine, workload);
    };
    const LoadStats one = run(1);
    const LoadStats eight = run(8);

    // The whole digest stream — not just the shed set — must be
    // bit-identical across thread counts.
    ASSERT_EQ(one.digests.size(), eight.digests.size());
    for (std::size_t i = 0; i < one.digests.size(); ++i) {
      EXPECT_EQ(one.digests[i], eight.digests[i]) << "query " << i;
    }
    // And the overload really happened: some queries shed, some
    // admitted degraded, but never everything shed.
    EXPECT_GT(one.shed, 0);
    EXPECT_LT(one.shed, one.queries);
    EXPECT_EQ(one.shed, eight.shed);
  }
}

TEST(LoadHarnessTest, ShedSetIsIdenticalWithCacheOnAndOff) {
  const Graph g = CavemanGraph(8, 10);
  const OverloadSetup setup = Overload();
  const Workload workload = GenerateWorkload(setup.workload, g.NumNodes());

  auto run = [&](bool cache_on) {
    QueryEngine::Options engine_options = setup.engine;
    engine_options.enable_cache = cache_on;
    QueryEngine engine(g, engine_options);
    return RunLoadWorkload(engine, workload);
  };
  const LoadStats with_cache = run(true);
  const LoadStats without_cache = run(false);

  // Admission bills deterministic admission-time estimates, never the
  // measured work a cache hit would zero out — so the shed set cannot
  // move when the cache is switched off.
  EXPECT_EQ(ShedSet(with_cache), ShedSet(without_cache));
  EXPECT_GT(with_cache.shed, 0);
  // The cache did change execution (some hits), which is exactly why
  // this invariance is a design property and not a tautology.
  EXPECT_GT(with_cache.cached + with_cache.warm, 0);
  EXPECT_EQ(without_cache.cached, 0);
  EXPECT_EQ(without_cache.warm, 0);
}

TEST(LoadHarnessTest, EveryNonConvergedResultIsMarked) {
  const Graph g = CavemanGraph(8, 10);
  OverloadSetup setup = Overload();
  // Tighten the per-query budget so budget-capped degraded answers
  // appear alongside shed ones; shrink the pool to match (64-arc
  // queries would never drain the default 200k pool).
  setup.workload.max_work = 64;
  setup.workload.epsilon = 1e-7;
  setup.engine.admission.policy.capacity = 4000;
  const Workload workload = GenerateWorkload(setup.workload, g.NumNodes());
  QueryEngine engine(g, setup.engine);
  const LoadStats stats = RunLoadWorkload(engine, workload);

  bool saw_degraded = false;
  bool saw_shed = false;
  for (const ResponseDigest& digest : stats.digests) {
    if (digest.status != SolveStatus::kConverged) {
      EXPECT_TRUE(digest.degraded)
          << "unmarked non-converged result: "
          << SolveStatusName(digest.status);
    } else {
      EXPECT_FALSE(digest.degraded);
      EXPECT_FALSE(digest.shed);
    }
    if (digest.shed) {
      saw_shed = true;
      // A shed is a refusal: no computation, no answer, marked twice.
      EXPECT_EQ(digest.status, SolveStatus::kShed);
      EXPECT_TRUE(digest.degraded);
      EXPECT_EQ(digest.work, 0);
      EXPECT_EQ(digest.checksum, 0.0);
    }
    if (digest.degraded && !digest.shed) saw_degraded = true;
  }
  EXPECT_TRUE(saw_degraded) << "setup produced no degraded results";
  EXPECT_TRUE(saw_shed) << "setup produced no shed results";
}

TEST(LoadHarnessTest, TenantStatsAccountForEveryQuery) {
  const Graph g = CavemanGraph(8, 10);
  const OverloadSetup setup = Overload();
  const Workload workload = GenerateWorkload(setup.workload, g.NumNodes());
  QueryEngine engine(g, setup.engine);
  const LoadStats stats = RunLoadWorkload(engine, workload);

  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  for (const auto& [tenant, t] : stats.tenants) {
    EXPECT_TRUE(tenant == "heavy" || tenant == "light") << tenant;
    admitted += t.admitted_exact + t.admitted_degraded;
    shed += t.shed;
  }
  EXPECT_EQ(shed, stats.shed);
  EXPECT_EQ(admitted + shed, stats.queries);
}

TEST(LoadHarnessTest, LoadStatsRecordCarriesPercentiles) {
  const Graph g = CavemanGraph(8, 10);
  QueryEngine engine(g);
  const Workload workload = GenerateWorkload(BaseOptions(), g.NumNodes());
  const LoadStats stats = RunLoadWorkload(engine, workload);

  const BenchRecord record =
      LoadStatsRecord("BM_LoadServe/test", stats, g.NumNodes(), g.NumEdges(),
                      1);
  EXPECT_EQ(record.bench, "BM_LoadServe/test");
  EXPECT_GT(record.ns_per_iter, 0.0);
  EXPECT_GT(record.p50_ns, 0.0);
  EXPECT_GE(record.p99_ns, record.p50_ns);

  // The reproducible half round-trips through the report format.
  const std::string json = BenchReportToJson({record}, LoadMetricsJson(stats));
  const BenchParseResult parsed = ParseBenchReport(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].p50_ns, record.p50_ns);
  EXPECT_EQ(parsed.records[0].p99_ns, record.p99_ns);
}

}  // namespace
}  // namespace impreg
