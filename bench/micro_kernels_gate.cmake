# Perf gate for the micro-kernel suite (ctest: micro_kernels_report_gate).
# Runs the full google-benchmark family fresh (short timing windows —
# this is a wiring/coverage gate, not a precision measurement) and
# diffs it against the checked-in baseline
# bench/out/BENCH_micro_kernels.json with impreg_bench_diff. Thresholds
# are generous (the baseline was recorded on a different machine under
# different load): this trips on catastrophic regressions and on
# schema / coverage drift (a kernel benchmark disappearing is a hard
# failure because the gate requires shared benchmarks), not on timer
# noise. Machine-metadata mismatches (native/SIMD configuration) print
# as warnings from impreg_bench_diff — expected when gating against a
# baseline from another machine. Invoked as:
#
#   cmake -DMICRO=<micro_kernels> -DDIFF=<impreg_bench_diff>
#         -DBASELINE=<bench/out/BENCH_micro_kernels.json>
#         -DOUT_DIR=<scratch dir> -P micro_kernels_gate.cmake

foreach(var MICRO DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "micro_kernels_gate: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
  COMMAND ${MICRO} --out=${OUT_DIR}/fresh.json --benchmark_min_time=0.02
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "micro_kernels run failed (${rc})")
endif()

execute_process(
  COMMAND ${DIFF} ${BASELINE} ${OUT_DIR}/fresh.json --max-regress=2000%
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "micro kernels perf gate failed (${rc})")
endif()
