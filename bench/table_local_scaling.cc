// Table T5 (§3.3): strong locality — the operational methods' work is
// independent of graph size.
//
// Workload: whiskered social graphs of growing size, each with the same
// planted 100-node community; seed one community node and cluster with
// ACL push, ST Nibble, heat-kernel relax, and (as the optimization-
// approach baseline) the exact PPR solve. Columns: nodes touched and
// wall time. The paper's shape: the local methods' columns are flat in
// n; the exact solve grows linearly.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  std::printf("== T5: strongly local methods vs graph size ==\n");
  Table table({"n", "method", "touched", "ms", "|S|", "phi"});
  for (NodeId core : {2000, 8000, 32000, 128000}) {
    Rng rng(123);  // Same seed: the planted structures are comparable.
    SocialGraphParams params;
    params.core_nodes = core;
    params.num_communities = 5;
    params.min_community_size = 100;
    params.max_community_size = 100;
    params.num_whiskers = core / 100;
    const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);
    const Graph& g = social.graph;
    const NodeId seed = social.communities[0][0];
    Timer timer;

    {
      timer.Reset();
      PushOptions options;
      options.alpha = 0.05;
      options.epsilon = 2e-5;
      const LocalClusterResult r = PushLocalCluster(g, seed, options);
      table.AddRow({std::to_string(g.NumNodes()), "ACL push",
                    std::to_string(r.push.support), FormatG(timer.Millis(), 3),
                    std::to_string(r.set.size()),
                    FormatG(r.stats.conductance, 3)});
    }
    {
      timer.Reset();
      NibbleOptions options;
      options.steps = 50;
      options.epsilon = 2e-5;
      const NibbleResult r = Nibble(g, seed, options);
      std::int64_t touched = 0;
      for (double v : r.distribution) {
        if (v > 0.0) ++touched;
      }
      table.AddRow({std::to_string(g.NumNodes()), "ST Nibble",
                    std::to_string(touched), FormatG(timer.Millis(), 3),
                    std::to_string(r.set.size()),
                    FormatG(r.stats.conductance, 3)});
    }
    {
      timer.Reset();
      HkRelaxOptions options;
      options.t = 12.0;
      options.delta = 1e-5;
      const HkRelaxResult r = HeatKernelRelax(g, seed, options);
      std::int64_t touched = 0;
      for (double v : r.rho) {
        if (v > 0.0) ++touched;
      }
      table.AddRow({std::to_string(g.NumNodes()), "hk-relax",
                    std::to_string(touched), FormatG(timer.Millis(), 3),
                    std::to_string(r.set.size()),
                    FormatG(r.stats.conductance, 3)});
    }
    {
      timer.Reset();
      PageRankOptions options;
      options.gamma = StandardTeleportFromLazy(0.05);
      const PageRankResult exact =
          PersonalizedPageRankExact(g, SingleNodeSeed(g, seed), options);
      SweepOptions sweep;
      sweep.scaling = SweepScaling::kDegreeNormalized;
      const SweepResult cut =
          SweepCutOverSupport(g, exact.scores, sweep, 1e-12);
      table.AddRow({std::to_string(g.NumNodes()), "exact PPR",
                    std::to_string(g.NumNodes()), FormatG(timer.Millis(), 3),
                    std::to_string(cut.set.size()),
                    FormatG(cut.stats.conductance, 3)});
    }
  }
  table.Print();
  std::printf("\npaper's shape: touched/time flat in n for the local "
              "methods; the exact solve\n(optimization approach) touches "
              "every node and scales with n.\n");
  return 0;
}
