// Ablation A4: solvers for the "exact" Personalized PageRank system.
//
// The paper's §3.1/§3.3 contrast approximate diffusions with exact
// solves; this ablation measures the exact-solve side itself. The
// system (γI + (1−γ)ℒ) has condition number ≈ (2−γ)/γ, so:
//   Richardson (the vanilla power-style iteration): Θ(1/γ) iterations;
//   CG and Chebyshev: Θ(1/√γ) — with Chebyshev needing no inner
//   products (cheaper per step, embarrassingly distributable).
// Push is included as the strongly local comparison point: its work is
// bounded by 1/(ε·α), independent of both n and the condition number.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(11);
  SocialGraphParams params;
  params.core_nodes = 8000;
  params.num_communities = 5;
  params.num_whiskers = 60;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const Graph& g = sg.graph;
  const Vector seed = SingleNodeSeed(g, sg.communities[0][0]);
  std::printf("== A4: PPR solver comparison (n=%d, m=%lld, tol=1e-10) ==\n",
              g.NumNodes(), static_cast<long long>(g.NumEdges()));

  Table table({"gamma", "solver", "iterations", "ms", "l1_vs_cg"});
  Timer timer;
  for (double gamma : {0.2, 0.05, 0.01, 0.002}) {
    PageRankOptions options;
    options.gamma = gamma;
    options.tolerance = 1e-10;
    options.max_iterations = 200000;

    timer.Reset();
    const PageRankResult cg = PersonalizedPageRankExact(g, seed, options);
    table.AddRow({FormatG(gamma, 3), "CG", std::to_string(cg.iterations),
                  FormatG(timer.Millis(), 3), "0"});

    timer.Reset();
    const PageRankResult cheb =
        PersonalizedPageRankChebyshev(g, seed, options);
    table.AddRow({FormatG(gamma, 3), "Chebyshev",
                  std::to_string(cheb.iterations),
                  FormatG(timer.Millis(), 3),
                  FormatG(DistanceL1(cheb.scores, cg.scores), 2)});

    timer.Reset();
    const PageRankResult rich = PersonalizedPageRank(g, seed, options);
    table.AddRow({FormatG(gamma, 3), "Richardson",
                  std::to_string(rich.iterations),
                  FormatG(timer.Millis(), 3),
                  FormatG(DistanceL1(rich.scores, cg.scores), 2)});

    timer.Reset();
    PushOptions push;
    push.alpha = LazyTeleportFromStandard(gamma);
    push.epsilon = 1e-8;
    const PushResult local = ApproximatePageRank(g, seed, push);
    table.AddRow({FormatG(gamma, 3), "push(eps=1e-8)",
                  std::to_string(local.pushes),
                  FormatG(timer.Millis(), 3),
                  FormatG(DistanceL1(local.p, cg.scores), 2)});
  }
  table.Print();
  std::printf("\ndesign takeaway: Richardson iterations scale like 1/gamma, "
              "CG/Chebyshev like\n1/sqrt(gamma) (Chebyshev within ~2x of CG "
              "without inner products); push's work\nis set by epsilon "
              "alone. The library defaults to CG for oracles and push for\n"
              "everything interactive.\n");
  return 0;
}
