// Microbenchmarks (google-benchmark) for the computational kernels
// under every experiment: sparse matvec, diffusion steps, push, sweep,
// max-flow, and the eigensolvers. Results are also dumped as an
// impreg-bench-v2 JSON report (bench/out/BENCH_micro_kernels.json by
// default — gitignored; override with --out=PATH or the
// IMPREG_BENCH_REPORT environment variable) with the process metrics
// snapshot embedded, so the perf trajectory is tracked by
// impreg_bench_diff rather than by committed files — see
// bench/report.h and docs/observability.md. --link-root refreshes a
// BENCH_micro_kernels.json symlink at the repo root for the old
// habit of looking there.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/report.h"
#include "core/impreg.h"

namespace impreg {
namespace {

const Graph& BenchGraph(std::int64_t n) {
  static std::map<std::int64_t, Graph>* cache = new std::map<std::int64_t, Graph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(42 + static_cast<std::uint64_t>(n));
    it = cache->emplace(n, ErdosRenyi(static_cast<NodeId>(n), 8.0 / n, rng))
             .first;
  }
  return it->second;
}

// Tags the run with the {n, m, threads} counters the JSON report emits.
void SetReportCounters(benchmark::State& state, std::int64_t n,
                       std::int64_t m, int threads = 1) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(m);
  state.counters["threads"] = static_cast<double>(threads);
}

void SetGraphCounters(benchmark::State& state, const Graph& g,
                      int threads = 1) {
  SetReportCounters(state, g.NumNodes(), g.NumEdges(), threads);
}

void BM_NormalizedLaplacianMatvec(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const NormalizedLaplacianOperator lap(g);
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  for (auto _ : state) {
    lap.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
  SetGraphCounters(state, g);
}
BENCHMARK(BM_NormalizedLaplacianMatvec)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

// —— SIMD-dispatch and relabeling sweeps ——
// Scalar-vs-vector pins the dispatch cost model: the two paths are
// bit-identical (tests/determinism_test.cc), so whichever is faster on
// a given machine is always safe to serve. Original-vs-reordered
// isolates the gather-locality win of RCM relabeling at the 2^17
// acceptance size; `locality` counters carry AvgNeighborLabelDistance
// into the JSON report.

void MatvecBody(benchmark::State& state, const Graph& g) {
  const NormalizedLaplacianOperator lap(g);
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  for (auto _ : state) {
    lap.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
  SetGraphCounters(state, g);
}

void BM_NormalizedLaplacianMatvecScalar(benchmark::State& state) {
  const simd::ScopedSimdLevel forced(simd::SimdLevel::kScalar);
  MatvecBody(state, BenchGraph(state.range(0)));
}
BENCHMARK(BM_NormalizedLaplacianMatvecScalar)->Arg(1 << 17);

// Forced kAvx2 clamps to scalar on machines without AVX2+FMA, so this
// sweep runs (and the diff stays meaningful) everywhere.
void BM_NormalizedLaplacianMatvecSimd(benchmark::State& state) {
  const simd::ScopedSimdLevel forced(simd::SimdLevel::kAvx2);
  MatvecBody(state, BenchGraph(state.range(0)));
}
BENCHMARK(BM_NormalizedLaplacianMatvecSimd)->Arg(1 << 17);

const ReorderedGraph& BenchReorderedGraph(std::int64_t n) {
  static std::map<std::int64_t, ReorderedGraph>* cache =
      new std::map<std::int64_t, ReorderedGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, ReorderedGraph(BenchGraph(n), ReorderMethod::kRcm))
             .first;
  }
  return it->second;
}

void BM_NormalizedLaplacianMatvecReordered(benchmark::State& state) {
  const ReorderedGraph& rg = BenchReorderedGraph(state.range(0));
  MatvecBody(state, rg.graph());
  state.counters["locality_original"] = rg.locality_original();
  state.counters["locality_reordered"] = rg.locality_reordered();
}
BENCHMARK(BM_NormalizedLaplacianMatvecReordered)->Arg(1 << 17);

// One-time relabeling cost (permutation + row copy), amortized over
// every subsequent matvec on the reordered graph.
void BM_RcmReorderBuild(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    const ReorderedGraph rg(g, ReorderMethod::kRcm);
    benchmark::DoNotOptimize(rg.graph().NumNodes());
  }
  SetGraphCounters(state, g);
}
BENCHMARK(BM_RcmReorderBuild)->Arg(1 << 17);

void BM_SpMMBatchScalar(benchmark::State& state) {
  const simd::ScopedSimdLevel forced(simd::SimdLevel::kScalar);
  const Graph& g = BenchGraph(1 << 17);
  const NormalizedLaplacianOperator lap(g);
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Vector> xs(k, Vector(g.NumNodes()));
  for (Vector& x : xs) {
    for (double& v : x) v = rng.NextGaussian();
  }
  std::vector<Vector> ys;
  for (auto _ : state) {
    lap.ApplyBatch(xs, ys);
    benchmark::DoNotOptimize(ys.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs() * k);
  SetGraphCounters(state, g);
}
BENCHMARK(BM_SpMMBatchScalar)->Arg(4);

void BM_DotSimdSweep(benchmark::State& state) {
  const simd::ScopedSimdLevel forced(
      static_cast<simd::SimdLevel>(state.range(0)));
  Rng rng(2);
  Vector x(1 << 20), y(1 << 20);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
  SetReportCounters(state, static_cast<std::int64_t>(x.size()), 0);
}
BENCHMARK(BM_DotSimdSweep)->Arg(0)->Arg(1);  // 0 = scalar, 1 = avx2.

void BM_AxpySimdSweep(benchmark::State& state) {
  const simd::ScopedSimdLevel forced(
      static_cast<simd::SimdLevel>(state.range(0)));
  Rng rng(2);
  Vector x(1 << 20), y(1 << 20);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  for (auto _ : state) {
    Axpy(0.37, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
  SetReportCounters(state, static_cast<std::int64_t>(x.size()), 0);
}
BENCHMARK(BM_AxpySimdSweep)->Arg(0)->Arg(1);

void BM_LazyWalkStep(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const LazyWalkOperator walk(g, 0.5);
  Vector p(g.NumNodes(), 1.0 / g.NumNodes());
  Vector q(g.NumNodes());
  for (auto _ : state) {
    walk.Apply(p, q);
    benchmark::DoNotOptimize(q.data());
  }
  SetGraphCounters(state, g);
}
BENCHMARK(BM_LazyWalkStep)->Arg(1 << 12)->Arg(1 << 15);

void BM_PushClustering(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 15);
  PushOptions options;
  options.alpha = 0.1;
  options.epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    const PushResult r = ApproximatePageRank(g, SingleNodeSeed(g, 7), options);
    benchmark::DoNotOptimize(r.p.data());
  }
}
BENCHMARK(BM_PushClustering)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SweepCut(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  Rng rng(3);
  Vector values(g.NumNodes());
  for (double& v : values) v = rng.NextGaussian();
  for (auto _ : state) {
    const SweepResult r = SweepCut(g, values);
    benchmark::DoNotOptimize(r.stats.conductance);
  }
  SetGraphCounters(state, g);
}
BENCHMARK(BM_SweepCut)->Arg(1 << 12)->Arg(1 << 15);

void BM_Lanczos(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const NormalizedLaplacianOperator lap(g);
  for (auto _ : state) {
    LanczosOptions options;
    options.deflate.push_back(lap.TrivialEigenvector());
    options.max_iterations = 80;
    const LanczosResult r = LanczosSmallest(lap, 1, options);
    benchmark::DoNotOptimize(r.eigenvalues.data());
  }
}
BENCHMARK(BM_Lanczos)->Arg(1 << 12)->Arg(1 << 14);

void BM_Dinic(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = ErdosRenyi(n, 8.0 / n, rng);
  for (auto _ : state) {
    FlowNetwork net(n);
    for (NodeId u = 0; u < n; ++u) {
      for (const Arc& arc : g.Neighbors(u)) {
        if (arc.head > u) net.AddEdge(u, arc.head, arc.weight, arc.weight);
      }
    }
    benchmark::DoNotOptimize(net.MaxFlow(0, n - 1));
  }
}
BENCHMARK(BM_Dinic)->Arg(1 << 10)->Arg(1 << 13);

void BM_JacobiEigen(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  Graph g = ErdosRenyi(n, 0.2, rng);
  const DenseMatrix lap = DenseNormalizedLaplacian(g);
  for (auto _ : state) {
    const SymmetricEigen eigen = SymmetricEigendecomposition(lap);
    benchmark::DoNotOptimize(eigen.eigenvalues.data());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(128);

void BM_MultilevelBisection(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    const MultilevelResult r = MultilevelBisection(g);
    benchmark::DoNotOptimize(r.cut);
  }
}
BENCHMARK(BM_MultilevelBisection)->Arg(1 << 12)->Arg(1 << 14);


void BM_CoreDecomposition(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    const std::vector<int> core = CoreNumbers(g);
    benchmark::DoNotOptimize(core.data());
  }
}
BENCHMARK(BM_CoreDecomposition)->Arg(1 << 14)->Arg(1 << 16);

void BM_TriangleCounting(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
}
BENCHMARK(BM_TriangleCounting)->Arg(1 << 13)->Arg(1 << 15);

void BM_FindWhiskers(benchmark::State& state) {
  Rng rng(9);
  SocialGraphParams params;
  params.core_nodes = static_cast<NodeId>(state.range(0));
  params.num_whiskers = static_cast<int>(state.range(0) / 80);
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  for (auto _ : state) {
    const auto whiskers = FindWhiskers(sg.graph);
    benchmark::DoNotOptimize(whiskers.size());
  }
}
BENCHMARK(BM_FindWhiskers)->Arg(1 << 13)->Arg(1 << 15);

void BM_FastDenseEigen(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(6);
  Graph g = ErdosRenyi(n, 0.2, rng);
  const DenseMatrix lap = DenseNormalizedLaplacian(g);
  for (auto _ : state) {
    const SymmetricEigen eigen = SymmetricEigendecompositionFast(lap);
    benchmark::DoNotOptimize(eigen.eigenvalues.data());
  }
}
BENCHMARK(BM_FastDenseEigen)->Arg(32)->Arg(64)->Arg(128);

// —— Thread-count sweeps for the parallel execution layer ——
// Each benchmark runs the same kernel at 1/2/4/8 pool threads so the
// speedup is measured, not asserted. The SpMV graph has ~8·2^17/2 ≈
// 524k edges (the ISSUE-1 acceptance target is a ≥100k-edge graph).

void BM_SpMVThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const NormalizedLaplacianOperator lap(g);
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  for (auto _ : state) {
    lap.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
  SetGraphCounters(state, g, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SpMVThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DotThreads(benchmark::State& state) {
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(2);
  Vector x(1 << 22), y(1 << 22);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.size()));
  SetReportCounters(state, static_cast<std::int64_t>(x.size()), 0,
                    static_cast<int>(state.range(0)));
}
BENCHMARK(BM_DotThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PageRankThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  PageRankOptions options;
  options.gamma = 0.15;
  options.tolerance = 1e-8;
  const Vector seed = SingleNodeSeed(g, 7);
  for (auto _ : state) {
    const PageRankResult r = PersonalizedPageRank(g, seed, options);
    benchmark::DoNotOptimize(r.scores.data());
  }
  SetGraphCounters(state, g, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_PageRankThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_HeatKernelTaylorThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Vector seed = SingleNodeSeed(g, 3);
  for (auto _ : state) {
    const Vector h = HeatKernelWalkTaylor(g, seed, 5.0, 1e-8);
    benchmark::DoNotOptimize(h.data());
  }
  SetGraphCounters(state, g, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_HeatKernelTaylorThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SweepCutThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(3);
  Vector values(g.NumNodes());
  for (double& v : values) v = rng.NextGaussian();
  for (auto _ : state) {
    const SweepResult r = SweepCut(g, values);
    benchmark::DoNotOptimize(r.stats.conductance);
  }
  SetGraphCounters(state, g, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SweepCutThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// —— Memory-layout sweeps (ISSUE 2) ——
// AoS-vs-SoA isolates the adjacency layout: the same serial adjacency
// SpMV over {int32, double} structs (16 bytes/arc after padding) versus
// the split heads/weights arrays (12 bytes/arc). SpMV-vs-SpMM measures
// the register-blocked multi-vector path at k = 1, 4, 8.

struct AosArc {
  NodeId head;
  double weight;
};

struct AosGraph {
  std::vector<ArcIndex> offsets;
  std::vector<AosArc> arcs;
};

const AosGraph& AosReplica(std::int64_t n) {
  static std::map<std::int64_t, AosGraph>* cache =
      new std::map<std::int64_t, AosGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    const Graph& g = BenchGraph(n);
    AosGraph aos;
    aos.offsets.assign(g.Offsets().begin(), g.Offsets().end());
    aos.arcs.reserve(static_cast<std::size_t>(g.NumArcs()));
    const auto heads = g.Heads();
    const auto weights = g.Weights();
    for (std::size_t a = 0; a < heads.size(); ++a) {
      aos.arcs.push_back({heads[a], weights[a]});
    }
    it = cache->emplace(n, std::move(aos)).first;
  }
  return it->second;
}

void BM_SpMVAoS(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const AosGraph& aos = AosReplica(state.range(0));
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  const NodeId n = g.NumNodes();
  for (auto _ : state) {
    for (NodeId u = 0; u < n; ++u) {
      double sum = 0.0;
      const ArcIndex row_end = aos.offsets[u + 1];
      for (ArcIndex a = aos.offsets[u]; a < row_end; ++a) {
        sum += aos.arcs[a].weight * x[aos.arcs[a].head];
      }
      y[u] = sum;
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
  state.SetBytesProcessed(state.iterations() * g.NumArcs() *
                          static_cast<std::int64_t>(sizeof(AosArc)));
  SetGraphCounters(state, g);
}
BENCHMARK(BM_SpMVAoS)->Arg(1 << 15)->Arg(1 << 17);

void BM_SpMVSoA(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  const NodeId n = g.NumNodes();
  const auto offsets = g.Offsets();
  const auto heads = g.Heads();
  const auto weights = g.Weights();
  for (auto _ : state) {
    for (NodeId u = 0; u < n; ++u) {
      double sum = 0.0;
      const ArcIndex row_end = offsets[u + 1];
      for (ArcIndex a = offsets[u]; a < row_end; ++a) {
        sum += weights[a] * x[heads[a]];
      }
      y[u] = sum;
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
  state.SetBytesProcessed(
      state.iterations() * g.NumArcs() *
      static_cast<std::int64_t>(sizeof(NodeId) + sizeof(double)));
  SetGraphCounters(state, g);
}
BENCHMARK(BM_SpMVSoA)->Arg(1 << 15)->Arg(1 << 17);

// k right-hand sides via the register-blocked SpMM (one adjacency
// traversal for all k columns).
void BM_SpMMBatch(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const NormalizedLaplacianOperator lap(g);
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Vector> xs(k, Vector(g.NumNodes()));
  for (Vector& x : xs) {
    for (double& v : x) v = rng.NextGaussian();
  }
  std::vector<Vector> ys;
  for (auto _ : state) {
    lap.ApplyBatch(xs, ys);
    benchmark::DoNotOptimize(ys.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs() * k);
  SetGraphCounters(state, g);
}
BENCHMARK(BM_SpMMBatch)->Arg(1)->Arg(4)->Arg(8);

// The same k right-hand sides as k independent SpMVs (the baseline the
// SpMM path amortizes away).
void BM_SpMMLooped(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const NormalizedLaplacianOperator lap(g);
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Vector> xs(k, Vector(g.NumNodes()));
  for (Vector& x : xs) {
    for (double& v : x) v = rng.NextGaussian();
  }
  std::vector<Vector> ys(k);
  for (auto _ : state) {
    for (int j = 0; j < k; ++j) lap.Apply(xs[j], ys[j]);
    benchmark::DoNotOptimize(ys.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs() * k);
  SetGraphCounters(state, g);
}
BENCHMARK(BM_SpMMLooped)->Arg(1)->Arg(4)->Arg(8);

void BM_ChebyshevPpr(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 14);
  PageRankOptions options;
  options.gamma = 0.05;
  options.tolerance = 1e-8;
  for (auto _ : state) {
    const PageRankResult r =
        PersonalizedPageRankChebyshev(g, SingleNodeSeed(g, 3), options);
    benchmark::DoNotOptimize(r.scores.data());
  }
}
BENCHMARK(BM_ChebyshevPpr);

// The serving-layer record family: the same PPR push query answered
// cold (cache off), warm (post-AddEdge restart from the cached (p, r)
// pair), and cached (exact hit). The cold/warm/cached ordering is the
// point — impreg_bench_diff tracks all three, so a regression in the
// warm-restart path shows up even while cold stays flat.
Query BenchPprQuery() {
  Query q;
  q.method = QueryMethod::kPprPush;
  q.seeds = {3, 17};
  q.epsilon = 1e-4;
  return q;
}

void BM_QueryServeCold(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 13);
  QueryEngine::Options options;
  options.enable_cache = false;
  QueryEngine engine(g, options);
  const std::vector<Query> batch = {BenchPprQuery()};
  for (auto _ : state) {
    const std::vector<QueryResponse> responses = engine.RunBatch(batch);
    benchmark::DoNotOptimize(responses.front().scores.data());
  }
  SetGraphCounters(state, g);
}
BENCHMARK(BM_QueryServeCold);

void BM_QueryServeCached(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 13);
  QueryEngine engine(g);
  const std::vector<Query> batch = {BenchPprQuery()};
  engine.RunBatch(batch);  // Prime: every timed iteration is a hit.
  for (auto _ : state) {
    const std::vector<QueryResponse> responses = engine.RunBatch(batch);
    benchmark::DoNotOptimize(responses.front().scores.data());
  }
  SetGraphCounters(state, g);
}
BENCHMARK(BM_QueryServeCached);

void BM_QueryServeWarm(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 13);
  QueryEngine engine(g);
  const std::vector<Query> batch = {BenchPprQuery()};
  engine.RunBatch(batch);  // Seed the warm index.
  const NodeId n = g.NumNodes();
  NodeId next = 0;
  for (auto _ : state) {
    // Each edit bumps the epoch, so the exact key misses and the push
    // warm-restarts from the cached (p, r) via InvariantResidual.
    engine.AddEdge(next % n, (next * 7 + 1) % n, 1e-3);
    ++next;
    const std::vector<QueryResponse> responses = engine.RunBatch(batch);
    benchmark::DoNotOptimize(responses.front().scores.data());
  }
  SetGraphCounters(state, g);
}
BENCHMARK(BM_QueryServeWarm);

// Console output as usual, plus one BenchRecord per (non-aggregate)
// run for the JSON report.
class JsonDumpReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type == Run::RT_Aggregate) continue;
      BenchRecord record;
      record.bench = run.benchmark_name();
      record.ns_per_iter = run.GetAdjustedRealTime();
      auto counter = [&](const char* name, double fallback) {
        const auto it = run.counters.find(name);
        return it != run.counters.end()
                   ? static_cast<double>(it->second.value)
                   : fallback;
      };
      record.n = static_cast<std::int64_t>(counter("n", 0.0));
      record.m = static_cast<std::int64_t>(counter("m", 0.0));
      record.threads = static_cast<int>(counter("threads", 1.0));
      records_.push_back(std::move(record));
    }
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

// The configuration the numbers were measured under: the
// IMPREG_NATIVE_STATUS compile definition records whether -march=native
// was requested and honoured ("off" / "native" / "native-rejected" —
// the CMake warning path), and the per-kernel-class SIMD dispatch
// levels record what actually ran. impreg_bench_diff compares these
// maps and flags cross-machine/cross-configuration baselines.
BenchMetadata MachineMetadata() {
  return {
      {"native", IMPREG_NATIVE_STATUS},
      {"simd_dense",
       simd::SimdLevelName(simd::ActiveSimdLevel(simd::SimdKernel::kDense))},
      {"simd_row_gather", simd::SimdLevelName(simd::ActiveSimdLevel(
                              simd::SimdKernel::kRowGather))},
      {"simd_row_block4", simd::SimdLevelName(simd::ActiveSimdLevel(
                              simd::SimdKernel::kRowBlock4))},
  };
}

std::string DefaultReportPath() {
  if (const char* env = std::getenv("IMPREG_BENCH_REPORT")) {
    return env;
  }
  return std::string(IMPREG_BENCH_REPORT_DIR) + "/BENCH_micro_kernels.json";
}

// Refreshes the repo-root BENCH_micro_kernels.json symlink (the
// pre-bench/out location) to point at `target`. Best-effort: symlink
// failures (exotic filesystems, an existing regular file we should not
// clobber) are reported, not fatal.
void LinkReportAtRepoRoot(const std::string& target) {
  namespace fs = std::filesystem;
  const fs::path link =
      fs::path(IMPREG_BENCH_REPO_ROOT) / "BENCH_micro_kernels.json";
  std::error_code ec;
  if (fs::is_symlink(link, ec)) fs::remove(link, ec);
  if (fs::exists(fs::symlink_status(link, ec))) {
    std::fprintf(stderr,
                 "micro_kernels: not replacing non-symlink %s\n",
                 link.c_str());
    return;
  }
  fs::create_symlink(fs::absolute(target, ec), link, ec);
  if (ec) {
    std::fprintf(stderr, "micro_kernels: cannot link %s: %s\n", link.c_str(),
                 ec.message().c_str());
  } else {
    std::printf("bench report link: %s -> %s\n", link.c_str(), target.c_str());
  }
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) {
  // Our own flags come out of argv before google-benchmark sees it
  // (ReportUnrecognizedArguments would reject them).
  std::string report_path = impreg::DefaultReportPath();
  bool link_root = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      report_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--link-root") == 0) {
      link_root = true;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  // The report embeds the process metrics snapshot (solver counters,
  // pool busy time); collection is on for the whole run. Kernels'
  // outputs are unaffected — see core/metrics.h.
  impreg::ImpregEnableMetrics(true);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  impreg::JsonDumpReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string metrics_json =
      impreg::MetricsRegistry::Get().Snapshot().ToJson();
  if (impreg::WriteBenchReport(report_path, reporter.records(), metrics_json,
                               impreg::MachineMetadata())) {
    std::printf("bench report: %s (%zu records)\n", report_path.c_str(),
                reporter.records().size());
    if (link_root) impreg::LinkReportAtRepoRoot(report_path);
  } else {
    std::fprintf(stderr, "failed to write bench report: %s\n",
                 report_path.c_str());
  }
  return 0;
}
