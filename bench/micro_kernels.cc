// Microbenchmarks (google-benchmark) for the computational kernels
// under every experiment: sparse matvec, diffusion steps, push, sweep,
// max-flow, and the eigensolvers.

#include <benchmark/benchmark.h>

#include "core/impreg.h"

namespace impreg {
namespace {

const Graph& BenchGraph(std::int64_t n) {
  static std::map<std::int64_t, Graph>* cache = new std::map<std::int64_t, Graph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(42 + static_cast<std::uint64_t>(n));
    it = cache->emplace(n, ErdosRenyi(static_cast<NodeId>(n), 8.0 / n, rng))
             .first;
  }
  return it->second;
}

void BM_NormalizedLaplacianMatvec(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const NormalizedLaplacianOperator lap(g);
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  for (auto _ : state) {
    lap.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
}
BENCHMARK(BM_NormalizedLaplacianMatvec)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_LazyWalkStep(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const LazyWalkOperator walk(g, 0.5);
  Vector p(g.NumNodes(), 1.0 / g.NumNodes());
  Vector q(g.NumNodes());
  for (auto _ : state) {
    walk.Apply(p, q);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_LazyWalkStep)->Arg(1 << 12)->Arg(1 << 15);

void BM_PushClustering(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 15);
  PushOptions options;
  options.alpha = 0.1;
  options.epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    const PushResult r = ApproximatePageRank(g, SingleNodeSeed(g, 7), options);
    benchmark::DoNotOptimize(r.p.data());
  }
}
BENCHMARK(BM_PushClustering)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SweepCut(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  Rng rng(3);
  Vector values(g.NumNodes());
  for (double& v : values) v = rng.NextGaussian();
  for (auto _ : state) {
    const SweepResult r = SweepCut(g, values);
    benchmark::DoNotOptimize(r.stats.conductance);
  }
}
BENCHMARK(BM_SweepCut)->Arg(1 << 12)->Arg(1 << 15);

void BM_Lanczos(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  const NormalizedLaplacianOperator lap(g);
  for (auto _ : state) {
    LanczosOptions options;
    options.deflate.push_back(lap.TrivialEigenvector());
    options.max_iterations = 80;
    const LanczosResult r = LanczosSmallest(lap, 1, options);
    benchmark::DoNotOptimize(r.eigenvalues.data());
  }
}
BENCHMARK(BM_Lanczos)->Arg(1 << 12)->Arg(1 << 14);

void BM_Dinic(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = ErdosRenyi(n, 8.0 / n, rng);
  for (auto _ : state) {
    FlowNetwork net(n);
    for (NodeId u = 0; u < n; ++u) {
      for (const Arc& arc : g.Neighbors(u)) {
        if (arc.head > u) net.AddEdge(u, arc.head, arc.weight, arc.weight);
      }
    }
    benchmark::DoNotOptimize(net.MaxFlow(0, n - 1));
  }
}
BENCHMARK(BM_Dinic)->Arg(1 << 10)->Arg(1 << 13);

void BM_JacobiEigen(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  Graph g = ErdosRenyi(n, 0.2, rng);
  const DenseMatrix lap = DenseNormalizedLaplacian(g);
  for (auto _ : state) {
    const SymmetricEigen eigen = SymmetricEigendecomposition(lap);
    benchmark::DoNotOptimize(eigen.eigenvalues.data());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(128);

void BM_MultilevelBisection(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    const MultilevelResult r = MultilevelBisection(g);
    benchmark::DoNotOptimize(r.cut);
  }
}
BENCHMARK(BM_MultilevelBisection)->Arg(1 << 12)->Arg(1 << 14);


void BM_CoreDecomposition(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    const std::vector<int> core = CoreNumbers(g);
    benchmark::DoNotOptimize(core.data());
  }
}
BENCHMARK(BM_CoreDecomposition)->Arg(1 << 14)->Arg(1 << 16);

void BM_TriangleCounting(benchmark::State& state) {
  const Graph& g = BenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
}
BENCHMARK(BM_TriangleCounting)->Arg(1 << 13)->Arg(1 << 15);

void BM_FindWhiskers(benchmark::State& state) {
  Rng rng(9);
  SocialGraphParams params;
  params.core_nodes = static_cast<NodeId>(state.range(0));
  params.num_whiskers = static_cast<int>(state.range(0) / 80);
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  for (auto _ : state) {
    const auto whiskers = FindWhiskers(sg.graph);
    benchmark::DoNotOptimize(whiskers.size());
  }
}
BENCHMARK(BM_FindWhiskers)->Arg(1 << 13)->Arg(1 << 15);

void BM_FastDenseEigen(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(6);
  Graph g = ErdosRenyi(n, 0.2, rng);
  const DenseMatrix lap = DenseNormalizedLaplacian(g);
  for (auto _ : state) {
    const SymmetricEigen eigen = SymmetricEigendecompositionFast(lap);
    benchmark::DoNotOptimize(eigen.eigenvalues.data());
  }
}
BENCHMARK(BM_FastDenseEigen)->Arg(32)->Arg(64)->Arg(128);

// —— Thread-count sweeps for the parallel execution layer ——
// Each benchmark runs the same kernel at 1/2/4/8 pool threads so the
// speedup is measured, not asserted. The SpMV graph has ~8·2^17/2 ≈
// 524k edges (the ISSUE-1 acceptance target is a ≥100k-edge graph).

void BM_SpMVThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const NormalizedLaplacianOperator lap(g);
  Rng rng(1);
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextGaussian();
  Vector y(g.NumNodes());
  for (auto _ : state) {
    lap.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
}
BENCHMARK(BM_SpMVThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DotThreads(benchmark::State& state) {
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(2);
  Vector x(1 << 22), y(1 << 22);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_DotThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PageRankThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  PageRankOptions options;
  options.gamma = 0.15;
  options.tolerance = 1e-8;
  const Vector seed = SingleNodeSeed(g, 7);
  for (auto _ : state) {
    const PageRankResult r = PersonalizedPageRank(g, seed, options);
    benchmark::DoNotOptimize(r.scores.data());
  }
}
BENCHMARK(BM_PageRankThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_HeatKernelTaylorThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Vector seed = SingleNodeSeed(g, 3);
  for (auto _ : state) {
    const Vector h = HeatKernelWalkTaylor(g, seed, 5.0, 1e-8);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_HeatKernelTaylorThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SweepCutThreads(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 17);
  const ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(3);
  Vector values(g.NumNodes());
  for (double& v : values) v = rng.NextGaussian();
  for (auto _ : state) {
    const SweepResult r = SweepCut(g, values);
    benchmark::DoNotOptimize(r.stats.conductance);
  }
}
BENCHMARK(BM_SweepCutThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ChebyshevPpr(benchmark::State& state) {
  const Graph& g = BenchGraph(1 << 14);
  PageRankOptions options;
  options.gamma = 0.05;
  options.tolerance = 1e-8;
  for (auto _ : state) {
    const PageRankResult r =
        PersonalizedPageRankChebyshev(g, SingleNodeSeed(g, 3), options);
    benchmark::DoNotOptimize(r.scores.data());
  }
}
BENCHMARK(BM_ChebyshevPpr);

}  // namespace
}  // namespace impreg

BENCHMARK_MAIN();
