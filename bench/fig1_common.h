#ifndef IMPREG_BENCH_FIG1_COMMON_H_
#define IMPREG_BENCH_FIG1_COMMON_H_

#include <vector>

#include "core/impreg.h"

/// \file
/// Shared machinery for the three panels of Figure 1: generate the
/// AtP-DBLP stand-in graph, run the spectral (LocalSpectral-style) and
/// flow (Metis+MQI) portfolios once, and reduce to per-size-bin
/// winners with niceness measurements attached.

namespace impreg::bench {

struct Fig1Point {
  std::int64_t size = 0;
  double conductance = 1.0;
  NicenessReport niceness;
  std::string method;
};

struct Fig1Data {
  Graph graph;
  std::vector<Fig1Point> spectral;
  std::vector<Fig1Point> flow;
};

/// Runs the full Figure-1 experiment. Deterministic given the seed.
Fig1Data RunFigure1(std::uint64_t seed = 2012, NodeId core_nodes = 12000);

/// Prints one panel: `value_name` selects which niceness column to show
/// next to conductance.
void PrintPanel(const Fig1Data& data, const char* panel,
                const char* value_name);

}  // namespace impreg::bench

#endif  // IMPREG_BENCH_FIG1_COMMON_H_
