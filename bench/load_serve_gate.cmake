# SLO gate for the serving-tier load report (ctest:
# load_serve_report_gate). Runs the BM_LoadServe family fresh and
# diffs it against the checked-in baseline
# bench/out/BENCH_load_serve.json with impreg_bench_diff, gating both
# the mean and — one-sided — the p99 tail. Thresholds are generous
# (the baseline was recorded on a different machine under different
# load): this trips on catastrophic tail regressions and on schema /
# coverage drift (a scenario disappearing is a hard failure because
# the gate requires shared benchmarks), not on timer noise. Invoked as:
#
#   cmake -DLOAD=<load_serve> -DDIFF=<impreg_bench_diff>
#         -DBASELINE=<bench/out/BENCH_load_serve.json>
#         -DOUT_DIR=<scratch dir> -P load_serve_gate.cmake

foreach(var LOAD DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "load_serve_gate: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
  COMMAND ${LOAD} --out=${OUT_DIR}/fresh.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "load_serve run failed (${rc})")
endif()

execute_process(
  COMMAND ${DIFF} ${BASELINE} ${OUT_DIR}/fresh.json
          --max-regress=2000% --max-regress-p99=2000%
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "load serve SLO gate failed (${rc})")
endif()
