# Regression gate for the sharded-serving report (ctest:
# shard_serve_report_gate). Runs the BM_ShardServe family fresh and
# diffs it against the checked-in baseline
# bench/out/BENCH_shard_serve.json with impreg_bench_diff. The timing
# thresholds are generous (the baseline was recorded on a different
# machine): they trip on catastrophic regressions and on schema /
# coverage drift, not on timer noise. The report's `metrics` member —
# the shard work counters and the deep-vs-boundary local-work ratio —
# is machine-independent, so any metrics drift the diff reports means
# the locality story itself changed. Invoked as:
#
#   cmake -DBENCH=<shard_serve> -DDIFF=<impreg_bench_diff>
#         -DBASELINE=<bench/out/BENCH_shard_serve.json>
#         -DOUT_DIR=<scratch dir> -P shard_serve_gate.cmake

foreach(var BENCH DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_serve_gate: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
  COMMAND ${BENCH} --out=${OUT_DIR}/fresh.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard_serve run failed (${rc})")
endif()

execute_process(
  COMMAND ${DIFF} ${BASELINE} ${OUT_DIR}/fresh.json --max-regress=2000%
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard_serve regression gate failed (${rc})")
endif()
