# Regression gate for the cache-retention report (ctest:
# cache_retention_gate). Runs the BM_CacheRetention family fresh and
# diffs it against the checked-in baseline
# bench/out/BENCH_cache_retention.json with impreg_bench_diff. The
# timing threshold is generous (the baseline was recorded on a
# different machine); the real teeth are inside the bench itself,
# which aborts unless surgical invalidation retains strictly more
# exact cache hits than the invalidate-all baseline under the same
# mixed add/remove edit stream. Invoked as:
#
#   cmake -DBENCH=<cache_retention> -DDIFF=<impreg_bench_diff>
#         -DBASELINE=<bench/out/BENCH_cache_retention.json>
#         -DOUT_DIR=<scratch dir> -P cache_retention_gate.cmake

foreach(var BENCH DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cache_retention_gate: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
  COMMAND ${BENCH} --out=${OUT_DIR}/fresh.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache_retention run failed (${rc})")
endif()

execute_process(
  COMMAND ${DIFF} ${BASELINE} ${OUT_DIR}/fresh.json --max-regress=2000%
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache retention regression gate failed (${rc})")
endif()
