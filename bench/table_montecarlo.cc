// Table T9 (extension; §3.3's closing paragraph, ref [37]): Monte Carlo
// PageRank on (stream-like) access models, and the walk budget as a
// regularization knob.
//
// The terminated-walk estimator is unbiased for R_γ s; its error decays
// as 1/√R. A small walk budget is a cheap, coarse, implicitly
// regularized estimate — and, as with every other approximation in the
// paper, it is already good enough for the downstream task (ranking the
// top nodes) long before it is accurate in norm.

#include <cmath>
#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(66);
  const Graph g = BarabasiAlbert(5000, 4, rng);
  std::printf("== T9: Monte Carlo PageRank — walks vs error vs ranking "
              "quality ==\n");
  std::printf("# web-like graph n=%d m=%lld, gamma=0.15\n", g.NumNodes(),
              static_cast<long long>(g.NumEdges()));

  PageRankOptions exact_options;
  exact_options.gamma = 0.15;
  exact_options.tolerance = 1e-12;
  const Vector exact = GlobalPageRank(g, exact_options).scores;

  Table table({"walks/node", "l1_error", "err*sqrt(R)", "top50_overlap",
               "kendall_tau", "ms"});
  Timer timer;
  for (int walks : {1, 4, 16, 64, 256}) {
    MonteCarloOptions options;
    options.gamma = 0.15;
    options.walks_per_node = walks;
    timer.Reset();
    const Vector estimate = MonteCarloPageRank(g, options);
    const double ms = timer.Millis();
    const double error = DistanceL1(estimate, exact);
    table.AddRow({std::to_string(walks), FormatG(error, 4),
                  FormatG(error * std::sqrt(static_cast<double>(walks)), 4),
                  FormatG(TopKOverlap(estimate, exact, 50), 3),
                  FormatG(KendallTau(estimate, exact), 3),
                  FormatG(ms, 3)});
  }
  table.Print();
  std::printf("\npaper's shape: l1 error decays ~ 1/sqrt(R) (the third "
              "column is ~constant),\nwhile the top-50 ranking is already "
              "nearly correct at tiny budgets — coarse\napproximation, "
              "useful inference.\n");
  return 0;
}
