#ifndef IMPREG_BENCH_REPORT_H_
#define IMPREG_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Machine-readable bench reports. Each benchmark run becomes one JSON
/// record `{bench, n, m, threads, ns_per_iter}`; a whole suite is
/// written as a JSON array so the perf trajectory can be tracked across
/// PRs (`BENCH_micro_kernels.json` at the repo root). Deliberately free
/// of any google-benchmark dependency so drivers and one-off harnesses
/// can emit the same format.

namespace impreg {

/// One benchmark measurement.
struct BenchRecord {
  std::string bench;           ///< Benchmark name, e.g. "BM_SpMVSoA/131072".
  std::int64_t n = 0;          ///< Problem size (nodes / vector length).
  std::int64_t m = 0;          ///< Edge count (0 when not graph-based).
  int threads = 1;             ///< Pool threads the kernel ran with.
  double ns_per_iter = 0.0;    ///< Wall time per iteration, nanoseconds.
};

/// Serializes `records` as a JSON array (one object per record).
std::string BenchReportToJson(const std::vector<BenchRecord>& records);

/// Writes the JSON report to `path` (overwrites). Returns false (and
/// leaves no partial file behind beyond normal stream behavior) if the
/// file cannot be opened.
bool WriteBenchReport(const std::string& path,
                      const std::vector<BenchRecord>& records);

}  // namespace impreg

#endif  // IMPREG_BENCH_REPORT_H_
