#ifndef IMPREG_BENCH_REPORT_H_
#define IMPREG_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file
/// Machine-readable bench reports. Each benchmark run becomes one JSON
/// record `{bench, n, m, threads, ns_per_iter}` — plus optional
/// `p50_ns`/`p99_ns` tail-latency members for serving-style harnesses
/// (the load generator) that measure a latency distribution rather
/// than a single mean; a whole suite is written as the
/// `impreg-bench-v2` document
///
///   {"schema": "impreg-bench-v2", "records": [...], "metrics": {...}}
///
/// where `metrics` is the process metrics snapshot taken after the run
/// (empty object when metrics were off). A run may also carry a
/// `machine` member — a flat string map describing the configuration
/// the numbers were measured under (`-march=native` status, SIMD
/// dispatch levels) — emitted only when non-empty so metadata-free
/// documents stay byte-identical to older ones. `impreg_bench_diff`
/// compares the two sides' machine maps and warns (or fails, with
/// --strict-metadata) when they differ: a baseline recorded with the
/// native/AVX2 kernels must not silently gate a scalar-fallback run,
/// or vice versa. The v1 format — a bare JSON array of records — is
/// still accepted by the parser so old baselines diff cleanly against
/// new runs. Reports default to `bench/out/`
/// (gitignored) so the perf trajectory is tracked by tooling
/// (`impreg_bench_diff`) rather than by committed files. Deliberately
/// free of any google-benchmark dependency so drivers and one-off
/// harnesses can emit the same format.

namespace impreg {

/// One benchmark measurement.
struct BenchRecord {
  std::string bench;           ///< Benchmark name, e.g. "BM_SpMVSoA/131072".
  std::int64_t n = 0;          ///< Problem size (nodes / vector length).
  std::int64_t m = 0;          ///< Edge count (0 when not graph-based).
  int threads = 1;             ///< Pool threads the kernel ran with.
  double ns_per_iter = 0.0;    ///< Wall time per iteration, nanoseconds.
  /// Latency-distribution percentiles, nanoseconds. 0 = not measured
  /// (classic throughput benches); serialized only when > 0 so v2
  /// documents without percentiles stay byte-identical.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

/// Flat machine/configuration metadata attached to a report (ordered so
/// serialization is deterministic). Typical keys: "native" (the
/// IMPREG_NATIVE_STATUS compile definition: "off", "native", or
/// "native-rejected"), "simd_dense"/"simd_row_gather"/"simd_row_block4"
/// (the dispatch level each kernel class resolved to at run time).
using BenchMetadata = std::map<std::string, std::string>;

/// Serializes `records` as an impreg-bench-v2 document. `metrics_json`,
/// when non-empty, must be a pre-rendered JSON object (typically
/// MetricsSnapshot::ToJson()) and is embedded verbatim as the
/// `metrics` member; when empty, `"metrics": {}` is emitted. A
/// non-empty `machine` map is emitted as the `machine` member (an
/// empty map emits nothing, keeping metadata-free documents
/// byte-identical to the pre-metadata format).
std::string BenchReportToJson(const std::vector<BenchRecord>& records,
                              const std::string& metrics_json = "",
                              const BenchMetadata& machine = {});

/// Writes the JSON report to `path` (overwrites), creating parent
/// directories as needed. Returns false if the file cannot be written.
bool WriteBenchReport(const std::string& path,
                      const std::vector<BenchRecord>& records,
                      const std::string& metrics_json = "",
                      const BenchMetadata& machine = {});

/// A parsed bench report: records plus which schema carried them.
struct BenchParseResult {
  std::vector<BenchRecord> records;
  BenchMetadata machine;  ///< Empty when the document carried none.
  std::string schema;  ///< "impreg-bench-v2", or "v1-array" for bare arrays.
  std::string error;   ///< Empty on success.
  bool ok() const { return error.empty(); }
};

/// Parses a report in either format: the v2 object or the v1 bare
/// array. Records missing `bench` or `ns_per_iter` are an error, not
/// silently dropped — a truncated baseline must not masquerade as a
/// clean diff.
BenchParseResult ParseBenchReport(const std::string& text);

/// Reads and parses `path`.
BenchParseResult ReadBenchReport(const std::string& path);

/// One benchmark compared across two reports.
struct BenchDiffEntry {
  std::string bench;
  double old_ns = 0.0;
  double new_ns = 0.0;
  double ratio = 1.0;      ///< new_ns / old_ns (1.0 when old_ns == 0).
  bool regressed = false;  ///< ratio > 1 + max_regress.
  /// p99 tail comparison; meaningful only when both sides carry a
  /// nonzero p99_ns (has_p99).
  bool has_p99 = false;
  double old_p99 = 0.0;
  double new_p99 = 0.0;
  double p99_ratio = 1.0;
  bool p99_regressed = false;  ///< p99_ratio > 1 + max_regress_p99.
};

/// The regression-gate verdict for a baseline/candidate report pair.
struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;    ///< Matched benches, name-sorted.
  std::vector<std::string> only_old;      ///< In baseline only (name-sorted).
  std::vector<std::string> only_new;      ///< In candidate only (name-sorted).
  double max_regress = 0.0;               ///< Threshold used, as a fraction.
  double max_regress_p99 = -1.0;          ///< p99 threshold (< 0 = no gate).
  int regressions = 0;                    ///< Entries past the threshold.
  int p99_regressions = 0;                ///< Entries past the p99 threshold.
  bool ok() const { return regressions == 0 && p99_regressions == 0; }
};

/// Compares two parsed reports benchmark-by-benchmark (matched on the
/// full bench name, which already encodes args like "/131072"). An
/// entry regresses when `new_ns > old_ns * (1 + max_regress)`;
/// `max_regress` is a fraction (0.10 = allow 10% slower). Benches
/// present on only one side are reported but never count as
/// regressions — the gate judges shared coverage.
///
/// `max_regress_p99 >= 0` additionally gates the p99 tail, one-sided:
/// an entry where both sides carry p99_ns and
/// `new_p99 > old_p99 * (1 + max_regress_p99)` counts as a p99
/// regression (a *faster* tail never fails, and a mean-only bench is
/// never p99-gated). The default (< 0) skips the tail gate entirely.
BenchDiffResult DiffBenchReports(const std::vector<BenchRecord>& old_records,
                                 const std::vector<BenchRecord>& new_records,
                                 double max_regress,
                                 double max_regress_p99 = -1.0);

/// Compares two machine-metadata maps key by key and returns one
/// human-readable line per mismatch ("native: 'native' vs 'off'"; a key
/// present on only one side reads "... vs <absent>"). Empty result ⇔
/// the maps agree on every key either side carries — two metadata-free
/// reports compare clean, so v1 baselines never warn against each
/// other.
std::vector<std::string> DiffBenchMetadata(const BenchMetadata& old_machine,
                                           const BenchMetadata& new_machine);

}  // namespace impreg

#endif  // IMPREG_BENCH_REPORT_H_
