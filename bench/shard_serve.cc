// BM_ShardServe — the sharded serving benchmark family.
//
// The quantity sharding exists to buy: a strongly-local query seeded
// deep inside one shard should touch (almost) nothing outside it,
// while a query seeded on a shard boundary pays escalations and halo
// crossings. This driver measures both shapes on a ring-of-cliques
// graph (the partitioner's best case: cuts fall on the ring edges)
// served at 8 shards, cache off so every query recomputes:
//
//   BM_ShardServe/deep       push seeded at clique-interior nodes
//   BM_ShardServe/boundary   push seeded at cross-shard edge endpoints
//
// The report's `metrics` member carries the reproducible half — the
// shard work counters (local rows, escalations, halo crossings) for
// one batch of each shape, and the deep-vs-boundary local-work ratio
// in parts per thousand. These are pure functions of the graph and
// the deterministic partition, identical on every machine; drift
// means the locality story changed, not the clock. The ns_per_iter
// fields are wall-clock and are gated by trajectory via
// `impreg_bench_diff` with generous thresholds (see the
// shard_serve_report_gate ctest and bench/shard_serve_gate.cmake). A
// copy of this report is checked in at
// bench/out/BENCH_shard_serve.json as the baseline.
//
// Usage: shard_serve [--out=PATH]
//                    (default: bench/out/BENCH_shard_serve.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "core/parallel.h"
#include "graph/graph.h"
#include "service/query_engine.h"
#include "service/sharding/shard_set.h"
#include "util/check.h"

#ifndef IMPREG_BENCH_REPORT_DIR
#define IMPREG_BENCH_REPORT_DIR "bench/out"
#endif

namespace impreg {
namespace {

constexpr int kCliques = 32;
constexpr int kCliqueSize = 48;
constexpr int kShards = 8;
constexpr int kSeedsPerShape = 64;
constexpr int kReps = 6;

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Graph RingOfCliques(int cliques, int clique_size) {
  GraphBuilder builder(cliques * clique_size);
  for (int c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
    const NodeId next = ((c + 1) % cliques) * clique_size;
    builder.AddEdge(base, next + 1);
  }
  return builder.Build();
}

std::vector<Query> BatchFor(const std::vector<NodeId>& seeds) {
  std::vector<Query> batch;
  batch.reserve(seeds.size());
  for (const NodeId s : seeds) {
    Query q;
    q.method = QueryMethod::kPprPush;
    q.seeds = {s};
    q.epsilon = 1e-4;
    batch.push_back(std::move(q));
  }
  return batch;
}

int Run(int argc, char** argv) {
  std::string out_path =
      std::string(IMPREG_BENCH_REPORT_DIR) + "/BENCH_shard_serve.json";
  if (const char* env = std::getenv("IMPREG_BENCH_REPORT")) out_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const Graph graph = RingOfCliques(kCliques, kCliqueSize);
  QueryEngine::Options options;
  options.enable_cache = false;  // Every rep recomputes the same work.
  options.sharding.shards = kShards;
  QueryEngine engine(graph, options);
  IMPREG_CHECK(engine.shards() != nullptr);
  const std::vector<int>& owner = engine.shards()->plan().owner;

  // Deep seeds: whole one-hop neighborhood co-owned. Boundary seeds:
  // tails of cross-shard arcs. Both deterministic in node order.
  std::vector<NodeId> deep, boundary;
  for (NodeId u = 0;
       u < graph.NumNodes() && (static_cast<int>(deep.size()) < kSeedsPerShape ||
                                static_cast<int>(boundary.size()) < kSeedsPerShape);
       ++u) {
    bool interior = graph.OutDegree(u) > 0;
    for (const Arc arc : graph.Neighbors(u)) {
      interior = interior && owner[arc.head] == owner[u];
    }
    if (interior && static_cast<int>(deep.size()) < kSeedsPerShape) {
      deep.push_back(u);
    } else if (!interior &&
               static_cast<int>(boundary.size()) < kSeedsPerShape) {
      boundary.push_back(u);
    }
  }
  IMPREG_CHECK(!deep.empty());
  IMPREG_CHECK(!boundary.empty());

  std::vector<BenchRecord> records;
  auto emit = [&](const std::string& name, double ns_per_iter) {
    BenchRecord r;
    r.bench = name;
    r.n = graph.NumNodes();
    r.m = graph.NumEdges();
    r.threads = ImpregNumThreads();
    r.ns_per_iter = ns_per_iter;
    records.push_back(r);
    std::printf("%-24s %12.0f ns/iter\n", name.c_str(), ns_per_iter);
  };

  // One counted pass per shape (counters are a pure function of the
  // batch, so one pass is exact), then timed reps.
  ShardSet::CounterTotals deep_work, boundary_work;
  auto measure = [&](const char* name, const std::vector<NodeId>& seeds,
                     ShardSet::CounterTotals* work) {
    const std::vector<Query> batch = BatchFor(seeds);
    engine.mutable_shards()->ResetCounters();
    (void)engine.RunBatch(batch);
    *work = engine.shards()->Totals();
    const double start = NowNs();
    for (int rep = 0; rep < kReps; ++rep) (void)engine.RunBatch(batch);
    emit(name, (NowNs() - start) /
                   (static_cast<double>(kReps) * seeds.size()));
  };
  measure("BM_ShardServe/deep", deep, &deep_work);
  measure("BM_ShardServe/boundary", boundary, &boundary_work);

  // Local-work ratio in parts per thousand: rows served by the home
  // shard over all rows, per shape. Integer so the metrics diff is
  // byte-stable across machines.
  auto local_ppt = [](const ShardSet::CounterTotals& t) -> std::int64_t {
    const std::int64_t rows = t.local_rows + t.escalations;
    return rows == 0 ? 0 : (1000 * t.local_rows) / rows;
  };

  std::ostringstream metrics;
  metrics << "{\"shard.shards\": " << kShards
          << ", \"shard.deep_seeds\": " << deep.size()
          << ", \"shard.boundary_seeds\": " << boundary.size()
          << ", \"shard.deep_local_rows\": " << deep_work.local_rows
          << ", \"shard.deep_escalations\": " << deep_work.escalations
          << ", \"shard.deep_halo_crossings\": " << deep_work.halo_crossings
          << ", \"shard.deep_local_ppt\": " << local_ppt(deep_work)
          << ", \"shard.boundary_local_rows\": " << boundary_work.local_rows
          << ", \"shard.boundary_escalations\": "
          << boundary_work.escalations
          << ", \"shard.boundary_halo_crossings\": "
          << boundary_work.halo_crossings
          << ", \"shard.boundary_local_ppt\": " << local_ppt(boundary_work)
          << "}";
  std::printf("deep local %lld/%lld rows (%lld ppt), boundary local "
              "%lld/%lld rows (%lld ppt)\n",
              static_cast<long long>(deep_work.local_rows),
              static_cast<long long>(deep_work.local_rows +
                                     deep_work.escalations),
              static_cast<long long>(local_ppt(deep_work)),
              static_cast<long long>(boundary_work.local_rows),
              static_cast<long long>(boundary_work.local_rows +
                                     boundary_work.escalations),
              static_cast<long long>(local_ppt(boundary_work)));

  if (!WriteBenchReport(out_path, records, metrics.str())) {
    std::fprintf(stderr, "shard_serve: cannot write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
