// Table T2 (§2.3/§3.1): early stopping of the Power Method as implicit
// regularization — with a measurable *inference benefit*.
//
// Workload: a planted bipartition (the signal) with a long whisker path
// glued on (the noise — the "long stringy piece" of §3.2). The exact
// leading nontrivial eigenvector localizes on the whisker, because the
// whisker cut has the smaller conductance; classifying the communities
// with it fails. Early-stopped power iterates have not yet converged to
// the whisker mode and still carry the community signal: approximate
// computation is both FASTER and BETTER for the downstream task.
//
// Rows: iteration budget k → Rayleigh quotient (forward error) and
// community-recovery accuracy (inference quality). The paper's shape:
// accuracy peaks at intermediate k and *degrades* as the computation
// becomes exact.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

struct Workload {
  Graph graph;
  NodeId community_nodes;  // Nodes [0, community_nodes) carry labels.
  NodeId block_size;
};

Workload MakeWorkload(Rng& rng) {
  const NodeId block = 150;
  const Graph planted = PlantedPartition(2, block, 0.25, 0.01, rng);
  const NodeId whisker_len = 40;
  GraphBuilder builder(planted.NumNodes() + whisker_len);
  for (NodeId u = 0; u < planted.NumNodes(); ++u) {
    for (const Arc& arc : planted.Neighbors(u)) {
      if (arc.head > u) builder.AddEdge(u, arc.head, arc.weight);
    }
  }
  builder.AddEdge(0, planted.NumNodes());
  for (NodeId i = 0; i + 1 < whisker_len; ++i) {
    builder.AddEdge(planted.NumNodes() + i, planted.NumNodes() + i + 1);
  }
  return {builder.Build(), planted.NumNodes(), block};
}

// Sign-classification accuracy against the planted labels, restricted
// to the community nodes, best over label swap.
double Accuracy(const Workload& w, const Vector& hat_vector) {
  int agree = 0;
  for (NodeId u = 0; u < w.community_nodes; ++u) {
    const bool predicted = hat_vector[u] >= 0.0;
    const bool truth = u < w.block_size;
    if (predicted == truth) ++agree;
  }
  const double frac = static_cast<double>(agree) / w.community_nodes;
  return std::max(frac, 1.0 - frac);
}

}  // namespace

int main() {
  Rng rng(11);
  const Workload w = MakeWorkload(rng);
  std::printf("== T2: early stopping vs inference quality ==\n");
  std::printf("# planted 2x%d bipartition + %d-node whisker; n=%d m=%lld\n",
              w.block_size, w.graph.NumNodes() - w.community_nodes,
              w.graph.NumNodes(),
              static_cast<long long>(w.graph.NumEdges()));

  // Average over several random starts for stability.
  const int kTrials = 7;
  Table table({"iterations", "rayleigh", "accuracy", "phi_sweep"});
  std::vector<int> budgets = {1, 2, 4, 8, 16, 32, 64, 128, 512, 4096};
  for (int budget : budgets) {
    double rayleigh = 0.0, accuracy = 0.0, phi = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng start_rng(1000 + trial);
      PowerMethodOptions options;
      options.max_iterations = budget;
      options.tolerance = 0.0;
      const PowerMethodResult run = SecondEigenpairPowerMethod(
          w.graph, RandomSignSeed(w.graph, start_rng), options);
      rayleigh += run.eigenvalue;
      accuracy += Accuracy(w, run.eigenvector);
      const SpectralPartitionResult sweep =
          SweepHatVector(w.graph, run.eigenvector);
      phi += sweep.stats.conductance;
    }
    table.AddRow({std::to_string(budget), FormatG(rayleigh / kTrials, 5),
                  FormatG(accuracy / kTrials, 4),
                  FormatG(phi / kTrials, 4)});
  }
  table.Print();
  std::printf("\npaper's shape: accuracy peaks at intermediate budgets and "
              "degrades as the\niteration converges to the exact "
              "(whisker-localized) eigenvector.\n");
  return 0;
}
