// Table T1 (§3.1, Problem (5)): the Mahoney–Orecchia correspondence,
// verified numerically across graph families and parameter sweeps.
//
// Each row: a diffusion dynamic on a graph, the regularized SDP it is
// claimed to solve exactly (regularizer G, strength η), and the two
// discrepancy measures — trace distance between the diffusion's density
// matrix and the SDP optimum, and the regularized-objective gap. The
// paper's theory says both are exactly zero; we reproduce zero to
// machine precision.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

struct NamedGraph {
  const char* name;
  Graph graph;
};

std::vector<NamedGraph> Graphs() {
  Rng rng(4);
  Graph er = ErdosRenyi(48, 0.15, rng);
  while (!IsConnected(er)) er = ErdosRenyi(48, 0.15, rng);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"cycle(32)", CycleGraph(32)});
  graphs.push_back({"grid(6x8)", GridGraph(6, 8)});
  graphs.push_back({"caveman(4x8)", CavemanGraph(4, 8)});
  graphs.push_back({"lollipop(12,12)", LollipopGraph(12, 12)});
  graphs.push_back({"ER(48,0.15)", std::move(er)});
  return graphs;
}

}  // namespace

int main() {
  Table table({"graph", "dynamic", "regularizer", "eta", "trace_dist",
               "objective_gap", "Tr(LX)"});
  for (const NamedGraph& g : Graphs()) {
    for (double t : {1.0, 4.0, 16.0}) {
      const EquivalenceReport r = VerifyHeatKernelEquivalence(g.graph, t);
      table.AddRow({g.name, "heat t=" + FormatG(t, 3), "entropy",
                    FormatG(r.implied.eta, 4), FormatG(r.trace_distance, 3),
                    FormatG(r.objective_gap, 3),
                    FormatG(r.diffusion_rayleigh, 4)});
    }
    for (double gamma : {0.05, 0.15, 0.4}) {
      const EquivalenceReport r = VerifyPageRankEquivalence(g.graph, gamma);
      table.AddRow({g.name, "pagerank g=" + FormatG(gamma, 3), "log-det",
                    FormatG(r.implied.eta, 4), FormatG(r.trace_distance, 3),
                    FormatG(r.objective_gap, 3),
                    FormatG(r.diffusion_rayleigh, 4)});
    }
    for (int steps : {2, 8, 32}) {
      const EquivalenceReport r =
          VerifyLazyWalkEquivalence(g.graph, 0.5, steps);
      table.AddRow({g.name, "lazy k=" + std::to_string(steps),
                    "p-norm p=" + FormatG(r.implied.p, 4),
                    FormatG(r.implied.eta, 4), FormatG(r.trace_distance, 3),
                    FormatG(r.objective_gap, 3),
                    FormatG(r.diffusion_rayleigh, 4)});
    }
  }
  std::printf("== T1: diffusions exactly solve regularized SDPs "
              "(theory: distance = gap = 0) ==\n");
  table.Print();
  return 0;
}
