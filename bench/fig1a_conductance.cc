// Figure 1(a): size-resolved conductance of the best clusters found by
// the spectral family (LocalSpectral-style push) and the flow family
// (Metis-like + MQI) on the synthetic AtP-DBLP network.
//
// Paper's shape: the flow curve sits at-or-below the spectral curve —
// flow is unambiguously better at optimizing the conductance objective.

#include <algorithm>
#include <cstdio>

#include "fig1_common.h"

int main() {
  using namespace impreg;
  using namespace impreg::bench;
  const Fig1Data data = RunFigure1();
  PrintPanel(data, "a", "conductance");

  // Headline comparison: family-wide minima and mid-scale medians.
  auto summarize = [](const std::vector<Fig1Point>& points) {
    std::vector<double> phis;
    for (const auto& p : points) phis.push_back(p.conductance);
    return Summarize(phis);
  };
  const Summary s = summarize(data.spectral);
  const Summary f = summarize(data.flow);
  std::printf("\nfamily minima: spectral %.4g, flow %.4g  "
              "(paper: flow <= spectral)\n",
              s.min, f.min);
  std::printf("family medians: spectral %.4g, flow %.4g\n", s.median,
              f.median);
  return 0;
}
