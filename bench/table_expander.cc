// Table T4 (§3.2): spectral and flow methods succeed and fail on
// complementary inputs.
//
//  * Constant-degree expanders: the flow family's O(log n) factor is
//    the binding one; spectral's quadratic factor is harmless ("the
//    square of a constant is a constant"). Both methods find Θ(1)
//    conductance, spectral certifies it cheaply.
//  * Whiskered social graphs: flow (Metis+MQI) chases the true minimum
//    conductance cuts and wins the objective.
//  * Stringy graphs: both find the good cut; spectral's *certificate*
//    is the loose part (see T3).
//
// Columns: best conductance found by the spectral sweep and by the flow
// pipeline, plus the spectral certificate λ₂/2.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

// Best conductance found by the flow pipeline among clusters whose size
// lands in [min_size, max_size] (0 = unconstrained).
double FlowBest(const Graph& g, std::int64_t min_size = 0,
                std::int64_t max_size = 0) {
  double best = 1.0;
  for (double fraction : {0.5, 0.25, 0.1, 0.04}) {
    MultilevelOptions options;
    options.target_fraction = fraction;
    const MultilevelResult bisect = MultilevelBisection(g, options);
    for (const CutStats* stats : {&bisect.stats}) {
      if ((min_size == 0 || stats->size >= min_size) &&
          (max_size == 0 || stats->size <= max_size)) {
        best = std::min(best, stats->conductance);
      }
    }
    const MqiResult improved = Mqi(g, bisect.set);
    if ((min_size == 0 || improved.stats.size >= min_size) &&
        (max_size == 0 || improved.stats.size <= max_size)) {
      best = std::min(best, improved.stats.conductance);
    }
  }
  return best;
}

void AddRow(Table& table, const char* family, const Graph& g,
            std::int64_t min_size = 0, std::int64_t max_size = 0) {
  SpectralPartitionOptions options;
  options.lanczos.max_iterations = 600;
  options.min_size = static_cast<NodeId>(min_size);
  options.max_size = static_cast<NodeId>(max_size);
  const SpectralPartitionResult spectral = SpectralPartition(g, options);
  const double flow = FlowBest(g, min_size, max_size);
  table.AddRow({family, std::to_string(g.NumNodes()),
                FormatG(spectral.cheeger_lower, 4),
                FormatG(spectral.stats.conductance, 4), FormatG(flow, 4),
                FormatG(spectral.stats.conductance / std::max(flow, 1e-12),
                        3)});
}

}  // namespace

int main() {
  std::printf("== T4: spectral vs flow across input families ==\n");
  Table table({"family", "n", "lambda2/2", "phi_spectral", "phi_flow",
               "spectral/flow"});
  Rng rng(9);
  for (NodeId n : {512, 2048, 8192}) {
    AddRow(table, "expander(d=6)", RandomRegular(n, 6, rng));
  }
  for (NodeId n : {512, 2048}) {
    AddRow(table, "cockroach", CockroachGraph(n / 4));
  }
  // Social graphs: the Figure-1 regime. Both families are compared at
  // mid scales (clusters of 100..2000 nodes), where whisker-grade cuts
  // are excluded and the objective race is meaningful; the fully
  // size-resolved comparison is bench fig1a.
  for (NodeId core : {2000, 8000}) {
    SocialGraphParams params;
    params.core_nodes = core;
    params.num_communities = 10;
    params.num_whiskers = core / 80;
    Rng social_rng(17);
    AddRow(table, "social[100..2k]",
           MakeWhiskeredSocialGraph(params, social_rng).graph, 100, 2000);
  }
  table.Print();
  std::printf("\npaper's shape: on expanders both families sit at Theta(1) "
              "and spectral's\ncertificate is tight up to a constant. On "
              "the social graphs this single\nsize-band race is within "
              "~25%% either way; the full size-resolved comparison\nwith "
              "complete portfolios is bench fig1a, where the flow family "
              "sits at-or-\nbelow spectral in every bin.\n");
  return 0;
}
