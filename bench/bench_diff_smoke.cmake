# Smoke test for the bench regression gate (ctest: bench_diff_smoke).
# Runs the micro-kernel suite twice (one fast benchmark, one timing
# window each) and asserts that impreg_bench_diff passes the two runs
# against each other under a generous threshold — the self-comparison
# that must never regress. Invoked as:
#
#   cmake -DMICRO=<micro_kernels> -DDIFF=<impreg_bench_diff>
#         -DOUT_DIR=<scratch dir> -P bench_diff_smoke.cmake

foreach(var MICRO DIFF OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_diff_smoke: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

foreach(run a b)
  execute_process(
    COMMAND ${MICRO}
            --out=${OUT_DIR}/smoke_${run}.json
            --benchmark_filter=BM_SweepCut/4096
            --benchmark_min_time=0.02
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "micro_kernels run '${run}' failed (${rc})")
  endif()
endforeach()

# 400%: the two runs measure the same binary moments apart, but a smoke
# window this short is noisy — the gate must still agree they match.
execute_process(
  COMMAND ${DIFF} ${OUT_DIR}/smoke_a.json ${OUT_DIR}/smoke_b.json
          --max-regress=400%
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench gate failed on self-comparison (${rc})")
endif()
