// BM_Wal* / BM_Snapshot* / BM_Recovery — the durability benchmark
// family.
//
// Measures the three costs the durability layer adds to the serving
// path, over one synthetic graph and edit stream:
//
//   BM_WalAppend/batched   append throughput, one fsync at the end
//   BM_WalAppend/durable   append with fsync-per-record (sync_every=1)
//   BM_SnapshotWrite       full checksummed image + atomic publish
//   BM_Recovery            snapshot load + WAL suffix replay + engine
//
// All files live in a scratch directory under the system temp path;
// nothing persists after the run. The report's `metrics` member carries
// the reproducible half (record/byte/epoch counts — identical across
// machines); the ns_per_iter fields are wall-clock and are gated by
// trajectory via `impreg_bench_diff` with generous thresholds (see the
// durability_report_gate ctest and bench/durability_gate.cmake). A copy
// of this report is checked in at bench/out/BENCH_durability.json as
// the baseline — minus BM_WalAppend/durable, whose fsync-bound time
// swings with concurrent disk load and is reported one-sided instead
// of gated.
//
// Usage: durability_bench [--out=PATH]
//                         (default: bench/out/BENCH_durability.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "core/parallel.h"
#include "graph/random_graphs.h"
#include "service/durability/recovery.h"
#include "service/durability/snapshot.h"
#include "service/durability/wal.h"
#include "service/query_engine.h"
#include "streaming/dynamic_graph.h"
#include "util/check.h"
#include "util/rng.h"

#ifndef IMPREG_BENCH_REPORT_DIR
#define IMPREG_BENCH_REPORT_DIR "bench/out"
#endif

namespace impreg {
namespace {

namespace fs = std::filesystem;

constexpr int kNodes = 2048;
constexpr int kEdits = 1024;
constexpr int kDurableEdits = 128;  // fsync per record: keep it short.
constexpr std::int64_t kSnapshotEpoch = kEdits / 2;

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<durability::WalRecord> MakeEdits(NodeId num_nodes, int count) {
  Rng rng(23);
  std::vector<durability::WalRecord> edits;
  edits.reserve(count);
  while (static_cast<int>(edits.size()) < count) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    edits.push_back({u, v, 0.5 + rng.NextBounded(4) * 0.25});
  }
  return edits;
}

int Run(int argc, char** argv) {
  std::string out_path =
      std::string(IMPREG_BENCH_REPORT_DIR) + "/BENCH_durability.json";
  if (const char* env = std::getenv("IMPREG_BENCH_REPORT")) out_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const fs::path dir = fs::temp_directory_path() / "impreg_durability_bench";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);

  Rng graph_rng(7);
  const Graph base = ErdosRenyi(kNodes, 8.0 / (kNodes - 1), graph_rng);
  const std::vector<durability::WalRecord> edits = MakeEdits(kNodes, kEdits);

  std::vector<BenchRecord> records;
  auto emit = [&](const std::string& name, double ns_per_iter) {
    BenchRecord r;
    r.bench = name;
    r.n = kNodes;
    r.m = base.NumEdges();
    r.threads = ImpregNumThreads();
    r.ns_per_iter = ns_per_iter;
    records.push_back(r);
    std::printf("%-24s %12.0f ns/iter\n", name.c_str(), ns_per_iter);
  };

  // BM_WalAppend/batched: framing + checksum + write(2) per record, one
  // fsync when the batch closes — the bulk-ingest shape.
  {
    constexpr int kReps = 4;
    double total = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::string path =
          (dir / ("batched-" + std::to_string(rep) + ".wal")).string();
      durability::WriteAheadLog wal;
      durability::WalOptions opts;
      opts.sync_every = 0;
      IMPREG_CHECK(wal.Open(path, opts) == SolveStatus::kConverged);
      const double start = NowNs();
      for (const auto& e : edits) {
        IMPREG_CHECK(wal.AppendAddEdge(e.u, e.v, e.weight) ==
                     SolveStatus::kConverged);
      }
      IMPREG_CHECK(wal.Sync() == SolveStatus::kConverged);
      total += NowNs() - start;
      wal.Close();
    }
    emit("BM_WalAppend/batched", total / (kReps * kEdits));
  }

  // BM_WalAppend/durable: fsync per record — the per-edit durability
  // cost an acknowledged mutation pays.
  {
    const std::string path = (dir / "durable.wal").string();
    durability::WriteAheadLog wal;
    IMPREG_CHECK(wal.Open(path, {}) == SolveStatus::kConverged);
    const double start = NowNs();
    for (int i = 0; i < kDurableEdits; ++i) {
      const auto& e = edits[i];
      IMPREG_CHECK(wal.AppendAddEdge(e.u, e.v, e.weight) ==
                   SolveStatus::kConverged);
    }
    const double total = NowNs() - start;
    wal.Close();
    emit("BM_WalAppend/durable", total / kDurableEdits);
  }

  // The recovery scene both remaining benches share: a snapshot halfway
  // through the edit stream plus the full WAL.
  DynamicGraph graph = DynamicGraph::FromGraph(base);
  const std::string wal_path = (dir / "scene.wal").string();
  const std::string snap_dir = (dir / "snapshots").string();
  {
    durability::WriteAheadLog wal;
    IMPREG_CHECK(wal.Open(wal_path, {}) == SolveStatus::kConverged);
    for (std::int64_t i = 0; i < kEdits; ++i) {
      const auto& e = edits[static_cast<std::size_t>(i)];
      IMPREG_CHECK(wal.AppendAddEdge(e.u, e.v, e.weight) ==
                   SolveStatus::kConverged);
      graph.AddEdge(e.u, e.v, e.weight);
      if (i + 1 == kSnapshotEpoch) {
        IMPREG_CHECK(
            durability::WriteSnapshot(snap_dir, kSnapshotEpoch, graph, {})
                .status == SolveStatus::kConverged);
      }
    }
  }

  // BM_SnapshotWrite: serialize + checksum + atomic publish of the full
  // graph image.
  {
    constexpr int kReps = 8;
    const double start = NowNs();
    for (int rep = 0; rep < kReps; ++rep) {
      IMPREG_CHECK(durability::WriteSnapshot((dir / "snap-bench").string(),
                                             kEdits, graph, {})
                       .status == SolveStatus::kConverged);
    }
    emit("BM_SnapshotWrite", (NowNs() - start) / kReps);
  }

  // BM_Recovery: the full ladder — newest snapshot, WAL read + suffix
  // replay, engine rebuild.
  std::int64_t recovered_epoch = 0;
  {
    constexpr int kReps = 8;
    durability::RecoveryOptions ropts;
    ropts.wal_path = wal_path;
    ropts.snapshot_dir = snap_dir;
    const double start = NowNs();
    for (int rep = 0; rep < kReps; ++rep) {
      std::unique_ptr<QueryEngine> engine;
      const durability::RecoveryReport report = durability::RecoverEngine(
          DynamicGraph::FromGraph(base), {}, ropts, &engine);
      IMPREG_CHECK(report.status == SolveStatus::kConverged);
      recovered_epoch = report.epoch;
    }
    emit("BM_Recovery", (NowNs() - start) / kReps);
  }

  // The reproducible half of the run: counts that must be identical on
  // every machine (drift here means the bench lost coverage, not speed).
  std::ostringstream metrics;
  metrics << "{\"durability.wal_records\": " << kEdits
          << ", \"durability.snapshot_epoch\": " << kSnapshotEpoch
          << ", \"durability.recovered_epoch\": " << recovered_epoch
          << ", \"durability.wal_bytes\": "
          << static_cast<std::int64_t>(fs::file_size(wal_path))
          << ", \"durability.snapshot_bytes\": "
          << static_cast<std::int64_t>(fs::file_size(
                 snap_dir + "/snapshot-" + std::to_string(kSnapshotEpoch)))
          << "}";

  fs::remove_all(dir, ec);

  if (!WriteBenchReport(out_path, records, metrics.str())) {
    std::fprintf(stderr, "durability_bench: cannot write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
