// BM_CacheRetention/* — surgical invalidation vs the invalidate-all
// baseline under a mixed add/remove edit stream.
//
// The scenario the surgical path exists for: a ring of cliques serves
// one locality per clique (one cached push answer each), while edits —
// alternating insertions and removals of the same cross-clique pairs —
// land in two cliques only. With surgical (region-fingerprint)
// invalidation, the edits evict or demote only the two entries whose
// read regions they touch; every other locality keeps serving exact
// cache hits. The invalidate-all baseline retires every entry on every
// edit, so the same probe sweep runs warm each round.
//
// The report's `metrics` member carries the machine-independent half:
// served-source counts (cached/warm/cold per mode) and the cache's
// region_retained/demoted/evicted counters — all pure functions of the
// deterministic engine, so drift means lost retention, not timer
// noise. The ns_per_iter fields are wall-clock per probe and gated by
// trajectory via `impreg_bench_diff` with generous thresholds (see the
// cache_retention_gate ctest and bench/cache_retention_gate.cmake).
// The checked-in baseline is bench/out/BENCH_cache_retention.json.
//
// The driver itself asserts the retention property (surgical serves
// strictly more exact hits than invalidate-all), so the gate fails on
// a correctness regression even before the diff runs.
//
// Usage: cache_retention [--out=PATH]
//                        (default: bench/out/BENCH_cache_retention.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "core/parallel.h"
#include "graph/graph.h"
#include "service/query_engine.h"
#include "util/check.h"

#ifndef IMPREG_BENCH_REPORT_DIR
#define IMPREG_BENCH_REPORT_DIR "bench/out"
#endif

namespace impreg {
namespace {

constexpr int kCliques = 24;
constexpr int kCliqueSize = 16;
constexpr int kEditPairs = 8;  // Each pair is added, then removed.

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Graph RingOfCliques(int cliques, int clique_size) {
  GraphBuilder builder(cliques * clique_size);
  for (int c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
    const NodeId next = ((c + 1) % cliques) * clique_size;
    builder.AddEdge(base, next + 1);
  }
  return builder.Build();
}

struct ModeCounts {
  std::int64_t cached = 0;
  std::int64_t warm = 0;
  std::int64_t cold = 0;
  std::int64_t probes = 0;
  double ns_per_probe = 0.0;
  ResultCacheStats stats;
};

/// One clique-interior probe per clique, at a coarse ε so each read
/// region is its clique plus the one-hop ring neighbors — localities
/// that genuinely do not overlap the edit site.
std::vector<Query> MakeProbes() {
  std::vector<Query> probes;
  probes.reserve(kCliques);
  for (int c = 0; c < kCliques; ++c) {
    Query q;
    q.seeds = {static_cast<NodeId>(c * kCliqueSize + 4)};
    q.epsilon = 5e-2;
    probes.push_back(q);
  }
  return probes;
}

ModeCounts RunMode(const Graph& g, bool surgical) {
  QueryEngine::Options options;
  options.surgical_invalidation = surgical;
  options.cache_capacity = 2 * kCliques;
  QueryEngine engine(g, options);
  const std::vector<Query> probes = MakeProbes();

  // Warm fill: every locality lands one exact entry.
  for (const Query& q : probes) engine.Run(q);

  // Mixed edit stream confined to cliques 0 and 1: add a brand-new
  // cross-clique pair, probe-sweep, remove it again, probe-sweep.
  ModeCounts counts;
  const double start = NowNs();
  for (int i = 0; i < kEditPairs; ++i) {
    const NodeId u = static_cast<NodeId>(2 + i);
    const NodeId v = static_cast<NodeId>(kCliqueSize + 2 + i);
    for (const bool remove : {false, true}) {
      if (remove) {
        engine.RemoveEdge(u, v);
      } else {
        engine.AddEdge(u, v, 1.0);
      }
      for (const Query& q : probes) {
        const QueryResponse r = engine.Run(q);
        ++counts.probes;
        switch (r.source) {
          case QuerySource::kCached: ++counts.cached; break;
          case QuerySource::kWarm:   ++counts.warm;   break;
          case QuerySource::kCold:   ++counts.cold;   break;
        }
      }
    }
  }
  counts.ns_per_probe = (NowNs() - start) / counts.probes;
  counts.stats = engine.cache().stats();
  return counts;
}

int Run(int argc, char** argv) {
  std::string out_path =
      std::string(IMPREG_BENCH_REPORT_DIR) + "/BENCH_cache_retention.json";
  if (const char* env = std::getenv("IMPREG_BENCH_REPORT")) out_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const Graph g = RingOfCliques(kCliques, kCliqueSize);
  const ModeCounts surgical = RunMode(g, /*surgical=*/true);
  const ModeCounts baseline = RunMode(g, /*surgical=*/false);

  // The property this bench guards: with edits confined to two
  // cliques, surgical invalidation keeps the untouched localities
  // servable as exact hits; invalidate-all cannot keep any.
  IMPREG_CHECK_MSG(surgical.cached > baseline.cached,
                   "surgical invalidation retained no more entries than "
                   "invalidate-all");
  IMPREG_CHECK_MSG(surgical.stats.region_retained > 0,
                   "no cache entry survived an edit outside its region");

  std::vector<BenchRecord> records;
  auto emit = [&](const std::string& name, const ModeCounts& counts) {
    BenchRecord r;
    r.bench = name;
    r.n = g.NumNodes();
    r.m = g.NumEdges();
    r.threads = ImpregNumThreads();
    r.ns_per_iter = counts.ns_per_probe;
    records.push_back(r);
    std::printf("%-32s %10.0f ns/probe  cached %5lld  warm %5lld  cold %5lld\n",
                name.c_str(), counts.ns_per_probe,
                static_cast<long long>(counts.cached),
                static_cast<long long>(counts.warm),
                static_cast<long long>(counts.cold));
  };
  emit("BM_CacheRetention/surgical", surgical);
  emit("BM_CacheRetention/invalidate_all", baseline);

  std::ostringstream metrics;
  metrics << "{\"retention.probes\": " << surgical.probes
          << ", \"retention.surgical_cached\": " << surgical.cached
          << ", \"retention.surgical_warm\": " << surgical.warm
          << ", \"retention.surgical_cold\": " << surgical.cold
          << ", \"retention.surgical_region_retained\": "
          << surgical.stats.region_retained
          << ", \"retention.surgical_region_demoted\": "
          << surgical.stats.region_demoted
          << ", \"retention.surgical_region_evicted\": "
          << surgical.stats.region_evicted
          << ", \"retention.baseline_cached\": " << baseline.cached
          << ", \"retention.baseline_warm\": " << baseline.warm
          << ", \"retention.baseline_cold\": " << baseline.cold << "}";

  if (!WriteBenchReport(out_path, records, metrics.str())) {
    std::fprintf(stderr, "cache_retention: cannot write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
