// Table T8 (extension; §3.3's closing paragraph, refs [6]/[37]):
// diffusion primitives in dynamic "database" environments.
//
// Stream the edges of a social graph in random order into the
// incremental PPR estimator and compare the maintenance cost (pushes
// per arriving edge) against recomputing from scratch at checkpoints.
// The residual truncation — the implicit regularizer of §3.3 — is
// precisely what makes the dynamic update O(local) instead of a full
// solve.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(55);
  SocialGraphParams params;
  params.core_nodes = 6000;
  params.num_communities = 6;
  params.num_whiskers = 60;
  const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);
  const Graph& final_graph = social.graph;
  const NodeId seed_node = social.communities[0][0];

  // Random arrival order for every edge.
  std::vector<std::pair<NodeId, NodeId>> stream;
  std::vector<double> weights;
  for (NodeId u = 0; u < final_graph.NumNodes(); ++u) {
    for (const Arc& arc : final_graph.Neighbors(u)) {
      if (arc.head >= u) {
        stream.push_back({u, arc.head});
        weights.push_back(arc.weight);
      }
    }
  }
  std::vector<int> order(stream.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(order);

  std::printf("== T8: incremental PPR over an edge stream ==\n");
  std::printf("# final graph: n=%d m=%zu; seed node %d; gamma=0.15, "
              "eps=1e-7\n",
              final_graph.NumNodes(), stream.size(), seed_node);

  Vector seed(final_graph.NumNodes(), 0.0);
  seed[seed_node] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-7;
  DynamicGraph empty(final_graph.NumNodes());
  IncrementalPersonalizedPageRank inc(empty, seed, options);

  Table table({"edges_inserted", "pushes/edge(window)", "rebuild_pushes",
               "l1_vs_exact"});
  const std::size_t checkpoints = 6;
  std::size_t next_checkpoint = stream.size() / checkpoints;
  std::int64_t window_pushes = 0;
  std::size_t window_edges = 0;
  Timer timer;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& [u, v] = stream[order[i]];
    inc.AddEdge(u, v, weights[order[i]]);
    window_pushes += inc.LastEdgePushes();
    ++window_edges;
    if (i + 1 == next_checkpoint || i + 1 == order.size()) {
      // From-scratch baseline at this snapshot.
      IncrementalPersonalizedPageRank rebuild(inc.graph(), seed, options);
      // Exact reference.
      PageRankOptions exact_options;
      exact_options.gamma = options.gamma;
      exact_options.tolerance = 1e-13;
      exact_options.max_iterations = 100000;
      const Vector exact =
          PersonalizedPageRank(inc.graph().ToGraph(), seed, exact_options)
              .scores;
      table.AddRow(
          {std::to_string(i + 1),
           FormatG(static_cast<double>(window_pushes) /
                       static_cast<double>(window_edges),
                   4),
           std::to_string(rebuild.TotalPushes()),
           FormatG(DistanceL1(inc.Scores(), exact), 3)});
      window_pushes = 0;
      window_edges = 0;
      next_checkpoint += stream.size() / checkpoints;
    }
  }
  table.Print();
  std::printf("\ntotal stream time: %.2f s for %zu insertions\n",
              timer.Seconds(), stream.size());
  std::printf("\npaper's shape: maintaining the *approximate* (truncated-"
              "residual) PPR costs a\nfew pushes per arriving edge, vs "
              "thousands for a from-scratch recomputation —\nthe truncation "
              "is what buys the interactivity the paper asks databases "
              "for.\n");
  return 0;
}
