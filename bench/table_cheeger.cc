// Table T3 (§3.2): the Cheeger inequality and where its quadratic
// factor is real.
//
// For stringy graphs (paths, ladders, cockroaches) the sweep cut sits
// near the UPPER bound √(2λ₂): the certificate λ₂/2 is quadratically
// loose, which is exactly the worst case the paper attributes to
// "long stringy pieces". For expander-like graphs (complete, random
// regular) the LOWER bound λ₂/2 is tight. Columns report both ratios;
// watch `phi/lower` grow with size on the stringy families while it
// stays Θ(1) on the expanders.

#include <cmath>
#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

void AddRow(Table& table, const char* family, const Graph& g) {
  SpectralPartitionOptions options;
  // Stringy graphs have tiny spectral gaps; give Lanczos enough room.
  options.lanczos.max_iterations = 800;
  options.lanczos.tolerance = 1e-12;
  const SpectralPartitionResult r = SpectralPartition(g, options);
  table.AddRow({family, std::to_string(g.NumNodes()),
                FormatG(r.lambda2, 4), FormatG(r.stats.conductance, 4),
                FormatG(r.stats.conductance / std::max(r.cheeger_lower, 1e-300),
                        4),
                FormatG(r.stats.conductance / std::max(r.cheeger_upper, 1e-300),
                        4)});
}

}  // namespace

int main() {
  std::printf("== T3: Cheeger bounds — lambda2/2 <= phi(sweep) <= "
              "sqrt(2*lambda2) ==\n");
  Table table(
      {"family", "n", "lambda2", "phi_sweep", "phi/lower", "phi/upper"});
  for (NodeId n : {64, 256, 1024}) {
    AddRow(table, "path", PathGraph(n));
  }
  for (NodeId n : {64, 256, 1024}) {
    AddRow(table, "ladder", LadderGraph(n / 2));
  }
  for (NodeId k : {16, 64, 256}) {
    AddRow(table, "cockroach", CockroachGraph(k));
  }
  for (NodeId n : {64, 128, 256}) {
    AddRow(table, "complete", CompleteGraph(n));
  }
  Rng rng(5);
  for (NodeId n : {64, 256, 1024}) {
    AddRow(table, "regular(d=8)", RandomRegular(n, 8, rng));
  }
  table.Print();
  std::printf("\npaper's shape: phi/lower grows ~ 1/sqrt(lambda2) ~ n on the "
              "stringy families\n(the quadratic factor is achieved); it "
              "stays O(1) on the expander families.\n");
  return 0;
}
