// Table T6 (§3.3): the push algorithm's truncation IS ℓ1-style
// regularization.
//
// Sweep the push tolerance ε on a planted-community graph and report:
// support size of the output (sparsity), ℓ1 distance to the exact PPR
// vector (bias introduced), pushes performed (work), and the quality of
// the sweep cut. The paper's shape: as ε grows the output gets sparser
// and more biased — yet the cluster quality holds over orders of
// magnitude of ε, because the truncation regularizes *toward the seed's
// community* rather than away from it.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(31);
  SocialGraphParams params;
  params.core_nodes = 12000;
  params.num_communities = 6;
  params.min_community_size = 80;
  params.max_community_size = 120;
  params.num_whiskers = 100;
  const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);
  const Graph& g = social.graph;
  const auto& community = social.communities[2];
  const NodeId seed = community[0];

  const double alpha = 0.05;
  PageRankOptions exact_options;
  exact_options.gamma = StandardTeleportFromLazy(alpha);
  exact_options.tolerance = 1e-13;
  const Vector exact =
      PersonalizedPageRankExact(g, SingleNodeSeed(g, seed), exact_options)
          .scores;

  std::vector<char> truth(g.NumNodes(), 0);
  for (NodeId u : community) truth[u] = 1;

  std::printf("== T6: push tolerance sweep (n=%d, planted community of "
              "%zu) ==\n",
              g.NumNodes(), community.size());
  Table table({"epsilon", "support", "pushes", "l1_error", "phi", "|S|",
               "overlap"});
  for (double eps : {1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5, 1e-6}) {
    PushOptions options;
    options.alpha = alpha;
    options.epsilon = eps;
    const PushResult push =
        ApproximatePageRank(g, SingleNodeSeed(g, seed), options);
    SweepOptions sweep;
    sweep.scaling = SweepScaling::kDegreeNormalized;
    const SweepResult cut = SweepCutOverSupport(g, push.p, sweep);
    int overlap = 0;
    for (NodeId u : cut.set) overlap += truth[u];
    table.AddRow({FormatG(eps, 3), std::to_string(push.support),
                  std::to_string(push.pushes),
                  FormatG(DistanceL1(push.p, exact), 3),
                  FormatG(cut.stats.conductance, 3),
                  std::to_string(cut.set.size()), std::to_string(overlap)});
  }
  table.Print();
  std::printf("\npaper's shape: support and l1 bias shrink/grow smoothly "
              "with epsilon while the\ncluster (phi, overlap) stays stable "
              "across orders of magnitude — truncation\nregularizes without "
              "destroying the inference target.\n");
  return 0;
}
