// Ablation A2: the lazy walk's holding probability α.
//
// §3.1 presents W_α = αI + (1−α)M with α as part of the dynamics, and
// the Mahoney–Orecchia correspondence requires α ≥ 1/2 (so W_α ⪰ 0,
// matching the p-norm SDP's PSD cone). This ablation shows why α = 1/2
// is the canonical choice operationally too: smaller α lets the
// periodic (negative-eigenvalue) modes survive, making the step count
// behave erratically on near-bipartite structure; α ≥ 1/2 gives clean
// monotone equilibration at a cost in speed as α → 1.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

// Steps until the walk from a single seed is within 1e-3 (ℓ1) of the
// stationary distribution, capped.
int StepsToMix(const Graph& g, double alpha, int cap = 100000) {
  const Vector pi = StationaryDistribution(g);
  const LazyWalkOperator walk(g, alpha);
  Vector current(g.NumNodes(), 0.0);
  current[0] = 1.0;
  Vector next;
  for (int step = 1; step <= cap; ++step) {
    walk.Apply(current, next);
    current.swap(next);
    if (DistanceL1(current, pi) < 1e-3) return step;
  }
  return cap;
}

}  // namespace

int main() {
  std::printf("== A2: lazy-walk holding probability alpha ==\n");
  Table table({"graph", "alpha", "steps_to_mix", "W_psd"});
  struct Workload {
    const char* name;
    Graph graph;
  };
  Rng rng(31);
  std::vector<Workload> workloads;
  workloads.push_back({"bipartite K(12,12)", [] {
                         // Exactly bipartite: the walk's periodic mode
                         // has eigenvalue 1-(1-a)*2 = 2a-1.
                         GraphBuilder b(24);
                         for (NodeId i = 0; i < 12; ++i) {
                           for (NodeId j = 12; j < 24; ++j) b.AddEdge(i, j);
                         }
                         return b.Build();
                       }()});
  workloads.push_back({"expander(d=8)", RandomRegular(256, 8, rng)});
  workloads.push_back({"caveman(4x8)", CavemanGraph(4, 8)});

  for (const Workload& w : workloads) {
    const SymmetricEigen eigen =
        SymmetricEigendecomposition(DenseNormalizedLaplacian(w.graph));
    for (double alpha : {0.05, 0.25, 0.5, 0.75, 0.9}) {
      // W_α similar to I − (1−α)ℒ: PSD iff 1 − (1−α)λ_max ≥ 0.
      const bool psd = 1.0 - (1.0 - alpha) * eigen.eigenvalues.back() >=
                       -1e-12;
      table.AddRow({w.name, FormatG(alpha, 3),
                    std::to_string(StepsToMix(w.graph, alpha)),
                    psd ? "yes" : "no"});
    }
  }
  table.Print();
  std::printf("\ndesign takeaway: alpha = 1/2 is the smallest holding "
              "probability that keeps\nW_alpha PSD on every graph — the SDP "
              "correspondence of Section 3.1 needs\nexactly that. Lower "
              "alpha usually mixes faster, EXCEPT on bipartite\nstructure, "
              "where the periodic mode decays like |2a-1| and alpha -> 0 "
              "stops\nmixing entirely; alpha = 1/2 kills it in one step. "
              "Among the PSD choices,\nalpha = 1/2 is also the fastest.\n");
  return 0;
}
