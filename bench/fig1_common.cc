#include "fig1_common.h"

#include <cstdio>
#include <cstring>

namespace impreg::bench {

namespace {

std::vector<Fig1Point> Reduce(const Graph& graph,
                              const std::vector<NcpCluster>& clusters,
                              int num_bins) {
  const std::vector<NcpPoint> best =
      BestPerSizeBin(clusters, num_bins, graph.NumNodes() / 2);
  std::vector<Fig1Point> points;
  for (const NcpPoint& point : best) {
    Fig1Point out;
    out.size = point.size;
    out.conductance = point.conductance;
    out.niceness = ComputeNiceness(graph, point.cluster.nodes);
    out.method = point.cluster.method;
    points.push_back(std::move(out));
  }
  return points;
}

}  // namespace

Fig1Data RunFigure1(std::uint64_t seed, NodeId core_nodes) {
  Rng rng(seed);
  SocialGraphParams params;
  params.core_nodes = core_nodes;
  params.num_communities = 20;
  params.min_community_size = 12;
  params.max_community_size = 400;
  params.num_whiskers = core_nodes / 80;
  const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);

  Fig1Data data;
  data.graph = social.graph;
  std::printf("# AtP-DBLP stand-in: n=%d m=%lld (core %d, %zu communities, "
              "%zu whiskers)\n",
              data.graph.NumNodes(),
              static_cast<long long>(data.graph.NumEdges()), core_nodes,
              social.communities.size(), social.whiskers.size());

  SpectralFamilyOptions spectral_options;
  spectral_options.num_seeds = 48;
  spectral_options.alphas = {0.1, 0.05, 0.02};
  spectral_options.epsilons = {3e-3, 1e-3, 1e-4, 3e-5, 1e-5};
  const auto spectral_clusters =
      SpectralFamilyClusters(data.graph, spectral_options);
  const auto flow_clusters = FlowFamilyClusters(data.graph);
  std::printf("# spectral portfolio: %zu clusters; flow portfolio: %zu "
              "clusters\n",
              spectral_clusters.size(), flow_clusters.size());

  const int kBins = 12;
  data.spectral = Reduce(data.graph, spectral_clusters, kBins);
  data.flow = Reduce(data.graph, flow_clusters, kBins);
  return data;
}

void PrintPanel(const Fig1Data& data, const char* panel,
                const char* value_name) {
  auto value_of = [&](const Fig1Point& p) {
    if (std::strcmp(value_name, "conductance") == 0) return p.conductance;
    if (std::strcmp(value_name, "avg_path") == 0) {
      return p.niceness.avg_shortest_path;
    }
    return p.niceness.conductance_ratio;
  };
  std::printf("\n== Figure 1(%s): size-resolved %s "
              "(lower is better) ==\n",
              panel, value_name);
  const bool is_conductance_panel =
      std::strcmp(value_name, "conductance") == 0;
  std::vector<std::string> header = {"family", "size", value_name};
  if (!is_conductance_panel) header.push_back("conductance");
  header.push_back("method");
  Table table(std::move(header));
  const std::pair<const std::vector<Fig1Point>*, const char*> families[] = {
      {&data.spectral, "spectral"}, {&data.flow, "flow"}};
  for (const auto& family : families) {
    for (const Fig1Point& p : *family.first) {
      std::vector<std::string> row = {family.second, std::to_string(p.size),
                                      FormatG(value_of(p), 4)};
      if (!is_conductance_panel) row.push_back(FormatG(p.conductance, 4));
      row.push_back(p.method);
      table.AddRow(std::move(row));
    }
  }
  table.Print();
}

}  // namespace impreg::bench
