// Figure 1(c): the second "niceness" measure — the ratio of external
// conductance to internal conductance for each best-per-size cluster.
//
// Paper's shape: the spectral family's clusters have lower ratios
// (well-separated AND internally coherent); flow's conductance-chasing
// returns sets with weak interiors (ratio blows up when the set is
// internally disconnected).

#include <cstdio>

#include "fig1_common.h"

int main() {
  using namespace impreg;
  using namespace impreg::bench;
  const Fig1Data data = RunFigure1();
  PrintPanel(data, "c", "ext/int_ratio");

  auto stats = [](const std::vector<Fig1Point>& points) {
    int disconnected = 0;
    std::vector<double> ratios;
    for (const auto& p : points) {
      if (p.size < 8) continue;
      if (!p.niceness.connected) ++disconnected;
      ratios.push_back(std::min(p.niceness.conductance_ratio, 1e3));
    }
    return std::pair(Mean(ratios), disconnected);
  };
  const auto [spectral_mean, spectral_disc] = stats(data.spectral);
  const auto [flow_mean, flow_disc] = stats(data.flow);
  std::printf("\nmean capped ratio (size >= 8): spectral %.3f (%d "
              "disconnected), flow %.3f (%d disconnected)\n"
              "(paper: spectral lower = nicer)\n",
              spectral_mean, spectral_disc, flow_mean, flow_disc);
  return 0;
}
