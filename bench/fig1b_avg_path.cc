// Figure 1(b): the first "niceness" measure — average shortest-path
// length inside each best-per-size cluster of Figure 1(a).
//
// Paper's shape: the spectral family's clusters are more compact (lower
// average internal distance) than the flow family's, even though flow
// wins on the conductance objective — implicit regularization made
// visible.

#include <cstdio>

#include "fig1_common.h"

int main() {
  using namespace impreg;
  using namespace impreg::bench;
  const Fig1Data data = RunFigure1();
  PrintPanel(data, "b", "avg_path");

  auto mean_path = [](const std::vector<Fig1Point>& points) {
    std::vector<double> values;
    for (const auto& p : points) {
      if (p.size >= 8) values.push_back(p.niceness.avg_shortest_path);
    }
    return Mean(values);
  };
  std::printf("\nmean internal avg-path over bins (size >= 8): spectral "
              "%.3f, flow %.3f\n(paper: spectral lower = nicer)\n",
              mean_path(data.spectral), mean_path(data.flow));
  return 0;
}
