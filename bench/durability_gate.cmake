# Regression gate for the durability report (ctest:
# durability_report_gate). Runs the BM_Wal*/BM_Snapshot*/BM_Recovery
# family fresh and diffs it against the checked-in baseline
# bench/out/BENCH_durability.json with impreg_bench_diff. Thresholds
# are generous (the baseline was recorded on a different machine):
# this trips on catastrophic regressions and on schema / coverage
# drift, not on timer noise. BM_WalAppend/durable is deliberately
# absent from the baseline: its time is dominated by fsync, whose
# latency depends on concurrent disk load (32x swings observed between
# a quiet machine and a parallel ctest run), so the diff reports it
# one-sided for trajectory visibility but never counts it. Invoked as:
#
#   cmake -DBENCH=<durability_bench> -DDIFF=<impreg_bench_diff>
#         -DBASELINE=<bench/out/BENCH_durability.json>
#         -DOUT_DIR=<scratch dir> -P durability_gate.cmake

foreach(var BENCH DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "durability_gate: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
  COMMAND ${BENCH} --out=${OUT_DIR}/fresh.json
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "durability_bench run failed (${rc})")
endif()

execute_process(
  COMMAND ${DIFF} ${BASELINE} ${OUT_DIR}/fresh.json --max-regress=2000%
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "durability regression gate failed (${rc})")
endif()
