// Ablation A3: MQI vs FlowImprove — shrink-only vs bidirectional flow
// improvement (§3.2/§3.3; refs [3] and the Metis+MQI pipeline of
// Figure 1).
//
// MQI only ever removes nodes from its input set; FlowImprove can also
// absorb nodes. Seeded with *half* of a planted community, the
// difference is stark: MQI sharpens the half (good conductance, poor
// recall of the true community), FlowImprove grows back to the whole
// community. Seeded with a sloppy superset, both do well. This is the
// design reason the library ships both.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

struct Row {
  const char* scenario;
  const char* method;
  std::size_t size;
  double phi;
  int recall_num;
  int truth_size;
};

}  // namespace

int main() {
  Rng rng(91);
  SocialGraphParams params;
  params.core_nodes = 4000;
  params.num_communities = 5;
  params.min_community_size = 120;
  params.max_community_size = 160;
  params.num_whiskers = 30;
  const SocialGraph sg = MakeWhiskeredSocialGraph(params, rng);
  const Graph& g = sg.graph;
  const auto& truth = sg.communities[3];
  std::vector<char> in_truth(g.NumNodes(), 0);
  for (NodeId u : truth) in_truth[u] = 1;
  auto recall = [&](const std::vector<NodeId>& set) {
    int count = 0;
    for (NodeId u : set) count += in_truth[u];
    return count;
  };

  std::printf("== A3: MQI (shrink-only) vs FlowImprove (bidirectional) ==\n");
  std::printf("# planted community: %zu nodes, phi = %.4f\n\n", truth.size(),
              Conductance(g, truth));

  Table table({"seed_set", "method", "|S|", "phi", "recall"});
  auto report = [&](const char* scenario, const char* method,
                    const std::vector<NodeId>& set) {
    table.AddRow({scenario, method, std::to_string(set.size()),
                  FormatG(Conductance(g, set), 4),
                  std::to_string(recall(set)) + "/" +
                      std::to_string(truth.size())});
  };

  {  // Scenario 1: half the community.
    const std::vector<NodeId> half(truth.begin(),
                                   truth.begin() + truth.size() / 2);
    report("half-community", "input", half);
    report("half-community", "MQI", Mqi(g, half).set);
    report("half-community", "FlowImprove", FlowImprove(g, half).set);
  }
  {  // Scenario 2: the community plus random noise nodes.
    std::vector<NodeId> sloppy = truth;
    Rng noise(5);
    for (int i = 0; i < 60; ++i) {
      const NodeId u = static_cast<NodeId>(noise.NextBounded(sg.core_size));
      if (!in_truth[u] &&
          std::find(sloppy.begin(), sloppy.end(), u) == sloppy.end()) {
        sloppy.push_back(u);
      }
    }
    report("community+noise", "input", sloppy);
    report("community+noise", "MQI", Mqi(g, sloppy).set);
    report("community+noise", "FlowImprove", FlowImprove(g, sloppy).set);
  }
  table.Print();
  std::printf("\ndesign takeaway: from a partial seed set, only the "
              "bidirectional method can\nrecover the full community (MQI's "
              "recall is capped by its input); from a\nnoisy superset both "
              "clean up, with MQI slightly sharper on pure "
              "conductance.\n");
  return 0;
}
