#include "bench/report.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace impreg {

namespace {

// JSON string escaping for benchmark names (quotes, backslashes,
// control characters — names like "BM_Foo/8" need none, but stay safe).
void AppendEscaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// One record from a parsed JSON object; returns false (with an error
// message) when required members are missing or mistyped.
bool RecordFromJson(const JsonValue& obj, BenchRecord* record,
                    std::string* error) {
  if (!obj.is_object()) {
    *error = "record is not a JSON object";
    return false;
  }
  const JsonValue* bench = obj.FindOfType("bench", JsonValue::Type::kString);
  const JsonValue* ns = obj.FindOfType("ns_per_iter", JsonValue::Type::kNumber);
  if (bench == nullptr || ns == nullptr) {
    *error = "record missing \"bench\" or \"ns_per_iter\"";
    return false;
  }
  record->bench = bench->AsString();
  record->ns_per_iter = ns->AsDouble();
  if (const JsonValue* v = obj.FindOfType("n", JsonValue::Type::kNumber)) {
    record->n = static_cast<std::int64_t>(v->AsDouble());
  }
  if (const JsonValue* v = obj.FindOfType("m", JsonValue::Type::kNumber)) {
    record->m = static_cast<std::int64_t>(v->AsDouble());
  }
  if (const JsonValue* v = obj.FindOfType("threads", JsonValue::Type::kNumber)) {
    record->threads = static_cast<int>(v->AsDouble());
  }
  if (const JsonValue* v = obj.FindOfType("p50_ns", JsonValue::Type::kNumber)) {
    record->p50_ns = v->AsDouble();
  }
  if (const JsonValue* v = obj.FindOfType("p99_ns", JsonValue::Type::kNumber)) {
    record->p99_ns = v->AsDouble();
  }
  return true;
}

bool RecordsFromArray(const JsonValue& array, std::vector<BenchRecord>* records,
                      std::string* error) {
  for (const JsonValue& item : array.Items()) {
    BenchRecord record;
    if (!RecordFromJson(item, &record, error)) return false;
    records->push_back(std::move(record));
  }
  return true;
}

}  // namespace

std::string BenchReportToJson(const std::vector<BenchRecord>& records,
                              const std::string& metrics_json,
                              const BenchMetadata& machine) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n  \"schema\": \"impreg-bench-v2\",\n";
  if (!machine.empty()) {
    out << "  \"machine\": {";
    bool first = true;
    for (const auto& [key, value] : machine) {
      if (!first) out << ", ";
      first = false;
      AppendEscaped(out, key);
      out << ": ";
      AppendEscaped(out, value);
    }
    out << "},\n";
  }
  out << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "    {\"bench\": ";
    AppendEscaped(out, r.bench);
    out << ", \"n\": " << r.n << ", \"m\": " << r.m
        << ", \"threads\": " << r.threads
        << ", \"ns_per_iter\": " << r.ns_per_iter;
    // Percentiles are opt-in: throughput-only records keep the exact
    // byte layout older baselines were written with.
    if (r.p50_ns > 0.0) out << ", \"p50_ns\": " << r.p50_ns;
    if (r.p99_ns > 0.0) out << ", \"p99_ns\": " << r.p99_ns;
    out << "}";
    if (i + 1 < records.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n  \"metrics\": "
      << (metrics_json.empty() ? "{}" : metrics_json) << "\n}\n";
  return out.str();
}

bool WriteBenchReport(const std::string& path,
                      const std::vector<BenchRecord>& records,
                      const std::string& metrics_json,
                      const BenchMetadata& machine) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // A failure here surfaces as the open failing below.
  }
  std::ofstream out(path);
  if (!out) return false;
  out << BenchReportToJson(records, metrics_json, machine);
  return static_cast<bool>(out);
}

BenchParseResult ParseBenchReport(const std::string& text) {
  BenchParseResult result;
  const JsonParseResult parsed = JsonParse(text);
  if (!parsed.ok()) {
    result.error = parsed.error;
    return result;
  }
  const JsonValue& doc = parsed.value;
  if (doc.is_array()) {
    // v1: a bare array of records.
    result.schema = "v1-array";
    if (!RecordsFromArray(doc, &result.records, &result.error)) {
      result.records.clear();
    }
    return result;
  }
  if (doc.is_object()) {
    const JsonValue* schema =
        doc.FindOfType("schema", JsonValue::Type::kString);
    if (schema == nullptr || schema->AsString() != "impreg-bench-v2") {
      result.error = "unrecognized report schema (want impreg-bench-v2)";
      return result;
    }
    result.schema = schema->AsString();
    if (const JsonValue* machine =
            doc.FindOfType("machine", JsonValue::Type::kObject)) {
      for (const auto& [key, value] : machine->Members()) {
        if (!value.is_string()) {
          result.error = "machine metadata value for \"" + key +
                         "\" is not a string";
          return result;
        }
        result.machine.emplace(key, value.AsString());
      }
    }
    const JsonValue* records =
        doc.FindOfType("records", JsonValue::Type::kArray);
    if (records == nullptr) {
      result.error = "impreg-bench-v2 document missing \"records\" array";
      return result;
    }
    if (!RecordsFromArray(*records, &result.records, &result.error)) {
      result.records.clear();
    }
    return result;
  }
  result.error = "report is neither a record array nor a v2 object";
  return result;
}

BenchParseResult ReadBenchReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    BenchParseResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseBenchReport(text.str());
}

BenchDiffResult DiffBenchReports(const std::vector<BenchRecord>& old_records,
                                 const std::vector<BenchRecord>& new_records,
                                 double max_regress,
                                 double max_regress_p99) {
  BenchDiffResult result;
  result.max_regress = max_regress;
  result.max_regress_p99 = max_regress_p99;
  // Duplicate names (benchmark repetitions) keep the first occurrence:
  // reports from the JSON reporter emit one record per run in run
  // order, so "first" is stable across both sides.
  std::map<std::string, const BenchRecord*> old_by_name, new_by_name;
  for (const BenchRecord& r : old_records) old_by_name.emplace(r.bench, &r);
  for (const BenchRecord& r : new_records) new_by_name.emplace(r.bench, &r);

  for (const auto& [bench, old_rec] : old_by_name) {
    const auto it = new_by_name.find(bench);
    if (it == new_by_name.end()) {
      result.only_old.push_back(bench);
      continue;
    }
    const BenchRecord& new_rec = *it->second;
    BenchDiffEntry entry;
    entry.bench = bench;
    entry.old_ns = old_rec->ns_per_iter;
    entry.new_ns = new_rec.ns_per_iter;
    entry.ratio = entry.old_ns > 0.0 ? entry.new_ns / entry.old_ns : 1.0;
    entry.regressed = entry.ratio > 1.0 + max_regress;
    if (entry.regressed) ++result.regressions;
    if (old_rec->p99_ns > 0.0 && new_rec.p99_ns > 0.0) {
      entry.has_p99 = true;
      entry.old_p99 = old_rec->p99_ns;
      entry.new_p99 = new_rec.p99_ns;
      entry.p99_ratio = entry.new_p99 / entry.old_p99;
      if (max_regress_p99 >= 0.0) {
        entry.p99_regressed = entry.p99_ratio > 1.0 + max_regress_p99;
        if (entry.p99_regressed) ++result.p99_regressions;
      }
    }
    result.entries.push_back(std::move(entry));
  }
  for (const auto& [bench, rec] : new_by_name) {
    if (old_by_name.find(bench) == old_by_name.end()) {
      result.only_new.push_back(bench);
    }
  }
  return result;
}

std::vector<std::string> DiffBenchMetadata(const BenchMetadata& old_machine,
                                           const BenchMetadata& new_machine) {
  std::vector<std::string> mismatches;
  // One pass over the union of keys (both maps are ordered, so the
  // output is deterministic and key-sorted).
  std::map<std::string, std::pair<const std::string*, const std::string*>>
      merged;
  for (const auto& [key, value] : old_machine) merged[key].first = &value;
  for (const auto& [key, value] : new_machine) merged[key].second = &value;
  for (const auto& [key, sides] : merged) {
    const auto& [old_value, new_value] = sides;
    if (old_value != nullptr && new_value != nullptr &&
        *old_value == *new_value) {
      continue;
    }
    const std::string old_text =
        old_value != nullptr ? "'" + *old_value + "'" : "<absent>";
    const std::string new_text =
        new_value != nullptr ? "'" + *new_value + "'" : "<absent>";
    mismatches.push_back(key + ": " + old_text + " vs " + new_text);
  }
  return mismatches;
}

}  // namespace impreg
