#include "bench/report.h"

#include <fstream>
#include <sstream>

namespace impreg {

namespace {

// JSON string escaping for benchmark names (quotes, backslashes,
// control characters — names like "BM_Foo/8" need none, but stay safe).
void AppendEscaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string BenchReportToJson(const std::vector<BenchRecord>& records) {
  std::ostringstream out;
  out.precision(17);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "  {\"bench\": ";
    AppendEscaped(out, r.bench);
    out << ", \"n\": " << r.n << ", \"m\": " << r.m
        << ", \"threads\": " << r.threads
        << ", \"ns_per_iter\": " << r.ns_per_iter << "}";
    if (i + 1 < records.size()) out << ",";
    out << "\n";
  }
  out << "]\n";
  return out.str();
}

bool WriteBenchReport(const std::string& path,
                      const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << BenchReportToJson(records);
  return static_cast<bool>(out);
}

}  // namespace impreg
