// BM_LoadServe — the serving-tier load benchmark family.
//
// Runs the deterministic closed-loop load harness
// (src/service/load/harness.h) through five production-shaped
// scenarios over one synthetic graph and writes the whole family as a
// single impreg-bench-v2 report with p50_ns/p99_ns on every record:
//
//   BM_LoadServe/steady         uniform batches, cache on
//   BM_LoadServe/steady-nocache the same stream, every query cold
//   BM_LoadServe/burst          alternating lulls and 4x spikes
//   BM_LoadServe/ramp-writes    doubling ramp with a 10% AddEdge mix
//   BM_LoadServe/overload       two tenants vs a small admission pool
//
// The report's `metrics` member carries the *reproducible* half of
// each run (event/provenance/shed counts — bit-identical across
// machines and thread counts); the latency fields are wall-clock and
// are gated by trajectory via `impreg_bench_diff --max-regress-p99`
// (see the load_serve_report_gate ctest). A copy of this report is
// checked in at bench/out/BENCH_load_serve.json as the baseline.
//
// Usage: load_serve [--out=PATH]   (default: bench/out/BENCH_load_serve.json)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/parallel.h"
#include "graph/random_graphs.h"
#include "service/load/harness.h"
#include "service/load/workload.h"
#include "service/query_engine.h"
#include "util/rng.h"

#ifndef IMPREG_BENCH_REPORT_DIR
#define IMPREG_BENCH_REPORT_DIR "bench/out"
#endif

namespace impreg {
namespace {

struct Scenario {
  std::string name;
  WorkloadOptions workload;
  QueryEngine::Options engine;
};

std::vector<Scenario> Scenarios() {
  WorkloadOptions base;
  base.seed = 42;
  base.num_requests = 768;
  base.zipf_exponent = 1.1;
  base.batch_size = 16;
  base.epsilon = 1e-4;

  std::vector<Scenario> scenarios;

  {
    Scenario s;
    s.name = "BM_LoadServe/steady";
    s.workload = base;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "BM_LoadServe/steady-nocache";
    s.workload = base;
    s.engine.enable_cache = false;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "BM_LoadServe/burst";
    s.workload = base;
    s.workload.pattern = ArrivalPattern::kBurst;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "BM_LoadServe/ramp-writes";
    s.workload = base;
    s.workload.pattern = ArrivalPattern::kRamp;
    s.workload.write_fraction = 0.10;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "BM_LoadServe/overload";
    s.workload = base;
    s.workload.tenants = {"heavy", "light"};
    s.workload.max_work = 4096;
    s.engine.admission.enabled = true;
    s.engine.admission.policy.capacity = 400000;
    s.engine.admission.policy.degrade_fraction = 0.5;
    s.engine.admission.policy.degraded_cap = 1024;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

/// Scenario-prefixed reproducible counts, merged into one JSON object.
std::string FamilyMetricsJson(const std::vector<std::string>& names,
                              const std::vector<LoadStats>& runs) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Strip the family prefix: "BM_LoadServe/steady" -> "steady".
    std::string tag = names[i];
    const std::size_t slash = tag.rfind('/');
    if (slash != std::string::npos) tag = tag.substr(slash + 1);
    const LoadStats& s = runs[i];
    const std::string p = "load." + tag + ".";
    auto emit = [&](const char* key, std::int64_t value) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << p << key << "\": " << value;
    };
    emit("queries", s.queries);
    emit("writes", s.writes);
    emit("cold", s.cold);
    emit("warm", s.warm);
    emit("cached", s.cached);
    emit("degraded", s.degraded);
    emit("shed", s.shed);
  }
  out << "}";
  return out.str();
}

int Run(int argc, char** argv) {
  std::string out_path =
      std::string(IMPREG_BENCH_REPORT_DIR) + "/BENCH_load_serve.json";
  if (const char* env = std::getenv("IMPREG_BENCH_REPORT")) out_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // One shared base graph: all five scenarios serve the same topology,
  // so their latency profiles differ only by workload shape.
  Rng graph_rng(7);
  const Graph graph = ErdosRenyi(512, 8.0 / 511.0, graph_rng);

  std::vector<BenchRecord> records;
  std::vector<std::string> names;
  std::vector<LoadStats> runs;
  for (const Scenario& scenario : Scenarios()) {
    QueryEngine engine(graph, scenario.engine);
    const Workload load =
        GenerateWorkload(scenario.workload, graph.NumNodes());
    const LoadStats stats = RunLoadWorkload(engine, load);
    records.push_back(LoadStatsRecord(scenario.name, stats, graph.NumNodes(),
                                      graph.NumEdges(), ImpregNumThreads()));
    std::printf("%-28s mean %10.0f ns  p50 %10.0f  p99 %10.0f  "
                "cold %4lld warm %4lld cached %4lld degraded %4lld "
                "shed %4lld\n",
                scenario.name.c_str(), stats.mean_ns, stats.p50_ns,
                stats.p99_ns, static_cast<long long>(stats.cold),
                static_cast<long long>(stats.warm),
                static_cast<long long>(stats.cached),
                static_cast<long long>(stats.degraded),
                static_cast<long long>(stats.shed));
    names.push_back(scenario.name);
    runs.push_back(stats);
  }

  if (!WriteBenchReport(out_path, records, FamilyMetricsJson(names, runs))) {
    std::fprintf(stderr, "load_serve: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
