// Table T10 (§2.3): "adding noise to the input data before running a
// training algorithm can be equivalent to Tikhonov regularization."
//
// Same workload as T2 (planted bipartition + a whisker that the exact
// eigenvector localizes on), but instead of approximating the
// computation we perturb the INPUT: overlay sparse uniform random
// edges at rate ρ before computing the exact v₂. Random edges act like
// a scaled complete graph — exactly the teleportation term of PageRank
// — so moderate ρ detaches v₂ from the whisker and recovers the
// communities, while large ρ drowns the signal: the same interior-
// optimum curve as explicit regularization (compare T2's iteration
// knob and T7's diffusion-time knob).

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

struct Workload {
  Graph graph;
  NodeId community_nodes;
  NodeId block_size;
};

Workload MakeWorkload(Rng& rng) {
  const NodeId block = 150;
  const Graph planted = PlantedPartition(2, block, 0.12, 0.03, rng);
  const NodeId whisker_len = 40;
  GraphBuilder builder(planted.NumNodes() + whisker_len);
  for (NodeId u = 0; u < planted.NumNodes(); ++u) {
    for (const Arc& arc : planted.Neighbors(u)) {
      if (arc.head > u) builder.AddEdge(u, arc.head, arc.weight);
    }
  }
  builder.AddEdge(0, planted.NumNodes());
  for (NodeId i = 0; i + 1 < whisker_len; ++i) {
    builder.AddEdge(planted.NumNodes() + i, planted.NumNodes() + i + 1);
  }
  return {builder.Build(), planted.NumNodes(), block};
}

Graph AddNoiseEdges(const Graph& g, double rate, Rng& rng) {
  GraphBuilder builder(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (arc.head >= u) builder.AddEdge(u, arc.head, arc.weight);
    }
  }
  const Graph noise = ErdosRenyi(g.NumNodes(), rate, rng);
  for (NodeId u = 0; u < noise.NumNodes(); ++u) {
    for (const Arc& arc : noise.Neighbors(u)) {
      if (arc.head > u) builder.AddEdge(u, arc.head, arc.weight);
    }
  }
  return builder.Build();
}

double Accuracy(const Workload& w, const Vector& x) {
  int agree = 0;
  for (NodeId u = 0; u < w.community_nodes; ++u) {
    if ((x[u] >= 0.0) == (u < w.block_size)) ++agree;
  }
  const double frac = static_cast<double>(agree) / w.community_nodes;
  return std::max(frac, 1.0 - frac);
}

}  // namespace

int main() {
  Rng rng(11);
  const Workload w = MakeWorkload(rng);
  std::printf("== T10: input-noise injection as implicit regularization "
              "==\n");
  std::printf("# planted 2x%d bipartition + %d-node whisker (the T2 "
              "workload); exact v2 each time\n",
              w.block_size, w.graph.NumNodes() - w.community_nodes);

  const int kTrials = 7;
  Table table({"noise_rate", "added_m(avg)", "accuracy", "lambda2"});
  for (double rate :
       {0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 0.3, 0.6}) {
    double accuracy = 0.0, lambda2 = 0.0, added = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng noise_rng(900 + trial);
      const Graph noisy = AddNoiseEdges(w.graph, rate, noise_rng);
      added += static_cast<double>(noisy.NumEdges() - w.graph.NumEdges());
      ApproxEigenvectorOptions options;
      options.method = EigenvectorMethod::kExact;
      options.rng_seed = 100 + trial;
      const ApproxEigenvectorResult v2 =
          ApproximateSecondEigenvector(noisy, options);
      accuracy += Accuracy(w, v2.x);
      lambda2 += v2.rayleigh;
    }
    table.AddRow({FormatG(rate, 3), FormatG(added / kTrials, 4),
                  FormatG(accuracy / kTrials, 4),
                  FormatG(lambda2 / kTrials, 4)});
  }
  table.Print();
  std::printf("\npaper's shape (Section 2.3): with no noise the exact "
              "eigenvector chases the\nwhisker (accuracy ~ 0.5); moderate "
              "injected noise acts like a teleportation/\nTikhonov term and "
              "recovers the planted labels; too much noise destroys the\n"
              "signal — the same interior optimum as T2's early stopping "
              "and T7's diffusion\ntime, produced by perturbing the DATA "
              "instead of the COMPUTATION.\n");
  return 0;
}
