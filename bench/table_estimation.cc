// Table T7 (extension; paper footnote 17 / ref [36], Perry–Mahoney):
// regularized Laplacian estimation — the Bayesian face of implicit
// regularization.
//
// Population: a clean planted bipartition. Observation: each edge kept
// independently with probability q (a sparse, noisy sample). Task:
// recover the planted labels from the sample. Estimators: heat-kernel-
// regularized eigenvectors across a grid of diffusion times t (small t
// = strong regularization), plus the exact v₂ of the sample.
//
// Paper's shape: on dense samples the exact eigenvector is fine; on
// sparse samples it localizes on sampling artifacts (dangling trees,
// near-disconnected fragments) and a *finite* t — i.e. genuine
// regularization — maximizes accuracy.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(77);
  const NodeId block = 200;
  const Graph population = PlantedPartition(2, block, 0.25, 0.02, rng);
  std::vector<int> labels(population.NumNodes());
  for (NodeId u = 0; u < population.NumNodes(); ++u) {
    labels[u] = u < block ? 1 : 0;
  }
  std::printf("== T7: regularized estimation from edge-sampled graphs ==\n");
  std::printf("# population: planted 2x%d bipartition, m=%lld\n", block,
              static_cast<long long>(population.NumEdges()));

  const std::vector<double> times = {0.5, 1.0, 2.0, 4.0, 8.0,
                                     16.0, 32.0, 64.0};
  Table table({"keep_q", "sample_m", "estimator", "t", "accuracy",
               "rayleigh(sample)"});
  for (double keep : {1.0, 0.30, 0.10, 0.06}) {
    Rng sample_rng(123);
    const Graph sample = SubsampleEdges(population, keep, sample_rng);
    EstimationOptions options;
    options.trials = 7;
    const auto path = HeatKernelEstimationPath(sample, labels, times,
                                               options);
    for (const EstimationPoint& point : path) {
      table.AddRow({FormatG(keep, 3),
                    std::to_string(sample.NumEdges()), "heat-kernel",
                    FormatG(point.t, 4), FormatG(point.accuracy, 4),
                    FormatG(point.rayleigh, 4)});
    }
    const EstimationPoint exact =
        ExactEigenvectorEstimate(sample, labels, options);
    table.AddRow({FormatG(keep, 3), std::to_string(sample.NumEdges()),
                  "exact v2", "inf", FormatG(exact.accuracy, 4),
                  FormatG(exact.rayleigh, 4)});
  }
  table.Print();
  std::printf("\npaper's shape: with dense samples (q=1) accuracy is high "
              "for every estimator;\nas the sample thins the exact "
              "eigenvector degrades and the best accuracy moves\nto an "
              "interior t — explicit evidence that the approximation is a "
              "statistically\nbeneficial regularizer (footnote 17 / [36]).\n");
  return 0;
}
