// Ablation A1: the sweep-cut ordering convention.
//
// DESIGN.md calls out a quiet design choice inside every spectral-
// family method: the key that orders nodes before the sweep. The three
// candidates — raw values, value/degree, value/√degree — correspond to
// reading the diffusion vector in different geometries (§2.3's
// "implicitly-imposed geometry" made concrete). This ablation measures
// the choice on both method families and both graph regimes.
//
// Expected outcome (and the reason the library's defaults are what they
// are): probability-space vectors (PPR/push) need /degree; hat-space
// eigenvectors need /√degree; using the wrong convention costs real
// conductance on degree-heterogeneous graphs and nothing on regular
// ones.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

double SweepWith(const Graph& g, const Vector& values, SweepScaling scaling) {
  SweepOptions options;
  options.scaling = scaling;
  return SweepCut(g, values, options).stats.conductance;
}

}  // namespace

int main() {
  std::printf("== A1: sweep ordering convention vs conductance found ==\n");
  Table table({"graph", "vector", "raw", "value/deg", "value/sqrt(deg)"});

  struct Workload {
    const char* name;
    Graph graph;
  };
  Rng rng(21);
  SocialGraphParams params;
  params.core_nodes = 3000;
  params.num_communities = 6;
  params.num_whiskers = 40;
  std::vector<Workload> workloads;
  workloads.push_back({"social(hetero)",
                       MakeWhiskeredSocialGraph(params, rng).graph});
  workloads.push_back({"torus(regular)", TorusGraph(40, 40)});

  for (const Workload& w : workloads) {
    // Hat-space eigenvector from Lanczos.
    SpectralPartitionOptions spectral;
    spectral.lanczos.max_iterations = 500;
    const SpectralPartitionResult eig = SpectralPartition(w.graph, spectral);
    table.AddRow({w.name, "eigenvector(hat)",
                  FormatG(SweepWith(w.graph, eig.v2, SweepScaling::kRaw), 4),
                  FormatG(SweepWith(w.graph, eig.v2,
                                    SweepScaling::kDegreeNormalized),
                          4),
                  FormatG(SweepWith(w.graph, eig.v2,
                                    SweepScaling::kSqrtDegreeNormalized),
                          4)});

    // Probability-space PPR vector from a well-placed seed.
    PushOptions push;
    push.alpha = 0.05;
    push.epsilon = 1e-6;
    const PushResult ppr = ApproximatePageRank(
        w.graph, SingleNodeSeed(w.graph, w.graph.NumNodes() / 2), push);
    table.AddRow(
        {w.name, "PPR(probability)",
         FormatG(SweepWith(w.graph, ppr.p, SweepScaling::kRaw), 4),
         FormatG(SweepWith(w.graph, ppr.p, SweepScaling::kDegreeNormalized),
                 4),
         FormatG(SweepWith(w.graph, ppr.p,
                           SweepScaling::kSqrtDegreeNormalized),
                 4)});
  }
  table.Print();
  std::printf("\ndesign takeaway: /deg for probability vectors and /sqrt(deg) "
              "for hat vectors\nare at or near the best column in their rows; "
              "on the regular torus the choice\nis (correctly) immaterial.\n");
  return 0;
}
