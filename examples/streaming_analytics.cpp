// Streaming analytics: diffusion primitives in a "database" setting
// (§3.3's closing paragraph).
//
// Edges of a social network arrive one at a time. We maintain a
// Personalized PageRank vector incrementally — the push residual makes
// each update O(local) — and watch the seed's community assemble
// itself in real time. At the end, a Monte Carlo sweep shows the other
// streaming-friendly estimator from the paper's citations.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(2024);
  SocialGraphParams params;
  params.core_nodes = 3000;
  params.num_communities = 4;
  params.min_community_size = 60;
  params.max_community_size = 90;
  params.num_whiskers = 25;
  const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);
  const Graph& final_graph = social.graph;
  const auto& community = social.communities[1];
  const NodeId seed_node = community.front();

  // Random arrival order.
  std::vector<std::pair<NodeId, NodeId>> stream;
  for (NodeId u = 0; u < final_graph.NumNodes(); ++u) {
    for (const Arc& arc : final_graph.Neighbors(u)) {
      if (arc.head >= u) stream.push_back({u, arc.head});
    }
  }
  rng.Shuffle(stream);
  std::printf("streaming %zu edges; watching node %d's community "
              "(planted size %zu)\n\n",
              stream.size(), seed_node, community.size());

  Vector seed(final_graph.NumNodes(), 0.0);
  seed[seed_node] = 1.0;
  IncrementalPprOptions options;
  options.epsilon = 1e-6;
  DynamicGraph empty(final_graph.NumNodes());
  IncrementalPersonalizedPageRank inc(empty, seed, options);

  std::vector<char> truth(final_graph.NumNodes(), 0);
  for (NodeId u : community) truth[u] = 1;

  Table table({"edges", "pushes/edge", "|S|", "phi", "recall"});
  std::int64_t window_pushes = 0;
  std::size_t window_edges = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    inc.AddEdge(stream[i].first, stream[i].second);
    window_pushes += inc.LastEdgePushes();
    ++window_edges;
    if ((i + 1) % (stream.size() / 5) == 0 || i + 1 == stream.size()) {
      // Sweep the current estimate on the current graph snapshot.
      const Graph snapshot = inc.graph().ToGraph();
      SweepOptions sweep;
      sweep.scaling = SweepScaling::kDegreeNormalized;
      const SweepResult cut =
          SweepCutOverSupport(snapshot, inc.Scores(), sweep, 1e-12);
      int recall = 0;
      for (NodeId u : cut.set) recall += truth[u];
      table.AddRow({std::to_string(i + 1),
                    FormatG(static_cast<double>(window_pushes) /
                                static_cast<double>(window_edges),
                            3),
                    std::to_string(cut.set.size()),
                    FormatG(cut.stats.conductance, 3),
                    std::to_string(recall) + "/" +
                        std::to_string(community.size())});
      window_pushes = 0;
      window_edges = 0;
    }
  }
  table.Print();

  std::printf("\nMonte Carlo cross-check on the final graph (1000 walks "
              "from the seed):\n");
  MonteCarloOptions mc;
  mc.gamma = 0.15;
  mc.walks_per_node = 1000;
  const Vector estimate =
      MonteCarloPersonalizedPageRank(final_graph, seed_node, mc);
  PageRankOptions exact_options;
  exact_options.gamma = 0.15;
  const Vector exact =
      PersonalizedPageRank(final_graph, seed, exact_options).scores;
  std::printf("  l1 distance to exact PPR: %.4f; top-20 overlap: %.2f\n",
              DistanceL1(estimate, exact), TopKOverlap(estimate, exact, 20));
  std::printf("\nthe community is recoverable long before the stream "
              "finishes, at a few\npushes per arriving edge — approximation "
              "state is what makes the\nmaintenance cheap.\n");
  return 0;
}
