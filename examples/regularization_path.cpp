// The regularization path, traced explicitly.
//
// The paper frames regularization as a tradeoff between "solution
// quality" (the objective Tr(ℒX)) and "solution niceness" (here: the
// entropy of the density — how spread-out / stable the answer is).
// Sweeping the aggressiveness knob of each diffusion traces that
// tradeoff curve — this example prints all three curves on one grid so
// you can see the three dynamics are three *parameterizations of the
// same path* between the maximally-mixed density and the rank-one
// exact answer.

#include <cmath>
#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  const Graph graph = LollipopGraph(16, 12);  // Clique + stringy tail.
  std::printf("graph: lollipop(16,12), n=%d m=%lld\n", graph.NumNodes(),
              static_cast<long long>(graph.NumEdges()));
  const RegularizedSdpSolution exact = SolveUnregularizedSdp(graph);
  std::printf("unregularized optimum: Tr(LX) = lambda2 = %.6f, entropy = 0 "
              "(rank one)\n\n",
              exact.rayleigh);

  Table table({"dynamic", "knob", "eta", "Tr(LX)", "entropy(X)",
               "dist_to_exact"});

  for (double t : {0.25, 1.0, 4.0, 16.0, 64.0, 256.0}) {
    const DenseMatrix x = HeatKernelDensity(graph, t);
    table.AddRow({"heat", "t=" + FormatG(t, 4), FormatG(t, 4),
                  FormatG(TraceOfProduct(DenseNormalizedLaplacian(graph), x),
                          4),
                  FormatG(VonNeumannEntropy(x), 4),
                  FormatG(TraceDistance(x, exact.x), 3)});
  }
  for (double gamma : {0.8, 0.5, 0.2, 0.05, 0.01, 0.001}) {
    const DenseMatrix x = PageRankDensity(graph, gamma);
    const ImpliedParameters imp = ImpliedForPageRank(graph, gamma);
    table.AddRow({"pagerank", "g=" + FormatG(gamma, 4),
                  FormatG(imp.eta, 4),
                  FormatG(TraceOfProduct(DenseNormalizedLaplacian(graph), x),
                          4),
                  FormatG(VonNeumannEntropy(x), 4),
                  FormatG(TraceDistance(x, exact.x), 3)});
  }
  for (int steps : {1, 4, 16, 64, 256, 1024}) {
    const DenseMatrix x = LazyWalkDensity(graph, 0.5, steps);
    const ImpliedParameters imp = ImpliedForLazyWalk(graph, 0.5, steps);
    table.AddRow({"lazy", "k=" + std::to_string(steps),
                  FormatG(imp.eta, 4),
                  FormatG(TraceOfProduct(DenseNormalizedLaplacian(graph), x),
                          4),
                  FormatG(VonNeumannEntropy(x), 4),
                  FormatG(TraceDistance(x, exact.x), 3)});
  }
  table.Print();

  std::printf("\nreading the path: every dynamic starts near the maximally "
              "mixed density\n(entropy ~ log(n-1) = %.3f) and converges to "
              "the rank-one exact answer\n(entropy 0) as its aggressiveness "
              "knob is cranked; quality Tr(LX) falls\nmonotonically along "
              "the way. That curve IS the quality/niceness tradeoff\nof "
              "Section 2.3 — no explicit regularizer was ever written "
              "down.\n",
              std::log(static_cast<double>(graph.NumNodes() - 1)));
  return 0;
}
