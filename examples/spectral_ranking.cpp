// Spectral ranking at "Web scale" in miniature (§3.1): PageRank as a
// regularized eigenvector computation.
//
// Builds a preferential-attachment graph (a web-like degree
// distribution), computes global PageRank across teleportation values,
// and shows the regularization knob at work: large gamma keeps the
// ranking close to the seed (uniform) distribution, small gamma
// approaches the walk's stationary distribution (pure degree ranking).
// Also demonstrates early stopping of the Power Method as implicit
// regularization on the induced ranking.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/impreg.h"

using namespace impreg;

namespace {

std::vector<int> TopK(const Vector& scores, int k) {
  std::vector<int> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](int a, int b) { return scores[a] > scores[b]; });
  ids.resize(k);
  return ids;
}

double SpearmanTop(const Vector& a, const Vector& b, int k) {
  // Fraction of the top-k of `a` that also appears in the top-k of `b`.
  const std::vector<int> ta = TopK(a, k);
  const std::vector<int> tb = TopK(b, k);
  int hits = 0;
  for (int u : ta) {
    if (std::find(tb.begin(), tb.end(), u) != tb.end()) ++hits;
  }
  return static_cast<double>(hits) / k;
}

}  // namespace

int main() {
  Rng rng(99);
  const Graph graph = BarabasiAlbert(20000, 4, rng);
  std::printf("web-like graph: n=%d m=%lld, max degree %.0f\n\n",
              graph.NumNodes(), static_cast<long long>(graph.NumEdges()),
              ComputeDegreeStats(graph).max);

  // Degree ranking = the stationary distribution of the walk.
  const Vector degree_rank = StationaryDistribution(graph);

  Table table({"gamma", "iters", "top20_vs_degree", "mass_on_top20"});
  for (double gamma : {0.5, 0.3, 0.15, 0.05, 0.01}) {
    PageRankOptions options;
    options.gamma = gamma;
    options.tolerance = 1e-10;
    const PageRankResult result = GlobalPageRank(graph, options);
    double top_mass = 0.0;
    for (int u : TopK(result.scores, 20)) top_mass += result.scores[u];
    table.AddRow({FormatG(gamma, 3), std::to_string(result.iterations),
                  FormatG(SpearmanTop(result.scores, degree_rank, 20), 3),
                  FormatG(top_mass, 3)});
  }
  table.Print();
  std::printf("\nsmall gamma -> ranking converges to the degree ranking "
              "(less regularization\ntoward the uniform seed); large gamma "
              "-> flatter, seed-biased ranking.\n\n");

  // Early stopping of the power method, measured on the ranking it
  // induces: few iterations give a smoother ranking that mixes in the
  // start vector; many iterations converge to |v2|-based scores.
  const NormalizedLaplacianOperator lap(graph);
  Vector start(graph.NumNodes());
  Rng rng2(5);
  for (double& v : start) v = rng2.NextGaussian();
  PowerMethodOptions exact_options;
  exact_options.max_iterations = 10000;
  exact_options.tolerance = 1e-12;
  const PowerMethodResult exact =
      SecondEigenpairPowerMethod(graph, start, exact_options);

  Table early({"power_iters", "rayleigh", "excess_over_lambda2"});
  for (int iters : {1, 2, 5, 10, 50, 200}) {
    PowerMethodOptions options;
    options.max_iterations = iters;
    options.tolerance = 0.0;
    const PowerMethodResult run =
        SecondEigenpairPowerMethod(graph, start, options);
    early.AddRow({std::to_string(iters), FormatG(run.eigenvalue, 6),
                  FormatG(run.eigenvalue - exact.eigenvalue, 3)});
  }
  early.Print();
  std::printf("\nearly stopping leaves a controlled excess in the Rayleigh "
              "quotient — the\nforward-error cost of the implicit "
              "regularization (Section 2.3).\n");
  return 0;
}
