// Quickstart: approximate computation IS implicit regularization.
//
// Builds a small noisy graph, computes the leading nontrivial
// eigenvector of its normalized Laplacian exactly and by the paper's
// three diffusion dynamics, and prints — for each approximation — the
// regularized SDP (Problem (5)) that it *exactly* solves, verified
// numerically via the Mahoney–Orecchia correspondence.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  // A two-community graph with noise: the kind of input where the
  // exact answer is brittle and regularized answers are useful.
  Rng rng(7);
  const Graph graph = PlantedPartition(/*blocks=*/2, /*block_size=*/40,
                                       /*p_in=*/0.25, /*p_out=*/0.02, rng);
  std::printf("graph: n=%d, m=%lld, connected=%s\n\n", graph.NumNodes(),
              static_cast<long long>(graph.NumEdges()),
              IsConnected(graph) ? "yes" : "no");

  // 1) The exact eigenvector (Lanczos to machine precision).
  ApproxEigenvectorOptions exact;
  exact.method = EigenvectorMethod::kExact;
  const ApproxEigenvectorResult v2 =
      ApproximateSecondEigenvector(graph, exact);
  std::printf("exact v2:        Rayleigh quotient = %.6f  (= lambda_2)\n\n",
              v2.rayleigh);

  // 2) The three diffusions of Section 3.1, each with its implicit
  //    regularizer.
  struct Setup {
    const char* name;
    EigenvectorMethod method;
  };
  const Setup setups[] = {
      {"heat kernel (t=8)", EigenvectorMethod::kHeatKernel},
      {"PageRank (gamma=0.1)", EigenvectorMethod::kPageRank},
      {"lazy walk (k=20)", EigenvectorMethod::kLazyWalk},
      {"power method (5 iters)", EigenvectorMethod::kPowerMethod},
  };
  for (const Setup& setup : setups) {
    ApproxEigenvectorOptions options;
    options.method = setup.method;
    options.t = 8.0;
    options.gamma = 0.1;
    options.steps = 20;
    options.power_iterations = 5;
    const ApproxEigenvectorResult result =
        ApproximateSecondEigenvector(graph, options);
    std::printf("%-24s Rayleigh = %.6f (excess %.2e)\n", setup.name,
                result.rayleigh, result.rayleigh - v2.rayleigh);
    std::printf("%-24s implicitly solves: %s\n\n", "",
                result.implicit_regularizer.c_str());
  }

  // 3) Verify the correspondence exactly (density-matrix level).
  std::printf("Mahoney–Orecchia correspondence (trace distance between the\n"
              "diffusion density and the regularized SDP optimum; theory says"
              " 0):\n");
  const EquivalenceReport hk = VerifyHeatKernelEquivalence(graph, 8.0);
  std::printf("  heat kernel <-> entropy SDP:  %.3e\n", hk.trace_distance);
  const EquivalenceReport pr = VerifyPageRankEquivalence(graph, 0.1);
  std::printf("  PageRank    <-> log-det SDP:  %.3e\n", pr.trace_distance);
  const EquivalenceReport lw = VerifyLazyWalkEquivalence(graph, 0.5, 20);
  std::printf("  lazy walk   <-> p-norm SDP:   %.3e  (p = %.3f)\n",
              lw.trace_distance, lw.implied.p);

  // 4) And the payoff: the regularized vectors still partition well.
  const SpectralPartitionResult cut = SpectralPartition(graph);
  std::printf("\nsweep cut of v2: |S| = %zu, conductance = %.4f "
              "(Cheeger: [%.4f, %.4f])\n",
              cut.set.size(), cut.stats.conductance, cut.cheeger_lower,
              cut.cheeger_upper);
  return 0;
}
