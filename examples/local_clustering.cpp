// Locally-biased graph partitioning (§3.3): the optimization approach
// vs the operational approach, side by side.
//
// On a large social graph with a planted community, compare:
//   * the "exact" Personalized PageRank (CG solve touching the whole
//     graph) + sweep,
//   * the MOV locally-biased spectral program (Problem (8)),
//   * the strongly local methods: ACL push, Spielman–Teng Nibble, and
//     heat-kernel relax — whose work is independent of graph size, and
//     whose truncation is the implicit regularizer.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

int main() {
  Rng rng(33);
  SocialGraphParams params;
  params.core_nodes = 20000;
  params.num_communities = 8;
  params.min_community_size = 60;
  params.max_community_size = 120;
  params.num_whiskers = 150;
  const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);
  const Graph& graph = social.graph;
  const auto& community = social.communities[3];
  const NodeId seed = community.front();
  std::printf("graph: n=%d m=%lld; seed node %d inside a %zu-node planted "
              "community\n\n",
              graph.NumNodes(), static_cast<long long>(graph.NumEdges()),
              seed, community.size());

  std::vector<char> truth(graph.NumNodes(), 0);
  for (NodeId u : community) truth[u] = 1;
  auto overlap = [&](const std::vector<NodeId>& set) {
    int count = 0;
    for (NodeId u : set) count += truth[u];
    return count;
  };

  Table table({"method", "|S|", "phi", "overlap", "touched", "ms"});
  Timer timer;

  {  // Exact PPR (global solve) + sweep.
    timer.Reset();
    PageRankOptions pr;
    pr.gamma = StandardTeleportFromLazy(0.05);
    const PageRankResult exact =
        PersonalizedPageRankExact(graph, SingleNodeSeed(graph, seed), pr);
    SweepOptions sweep;
    sweep.scaling = SweepScaling::kDegreeNormalized;
    const SweepResult cut = SweepCutOverSupport(graph, exact.scores, sweep,
                                                1e-12);
    table.AddRow({"exact PPR + sweep", std::to_string(cut.set.size()),
                  FormatG(cut.stats.conductance, 4),
                  std::to_string(overlap(cut.set)),
                  std::to_string(graph.NumNodes()),  // Touches everything.
                  FormatG(timer.Millis(), 3)});
  }

  {  // MOV (Problem (8)).
    timer.Reset();
    const std::vector<NodeId> seeds(community.begin(),
                                    community.begin() + 3);
    const MovResult mov = MovSolveAtSigma(graph, seeds, -0.05);
    table.AddRow({"MOV local spectral", std::to_string(mov.set.size()),
                  FormatG(mov.stats.conductance, 4),
                  std::to_string(overlap(mov.set)),
                  std::to_string(graph.NumNodes()),  // Global solves.
                  FormatG(timer.Millis(), 3)});
  }

  {  // ACL push.
    timer.Reset();
    PushOptions push;
    push.alpha = 0.05;
    push.epsilon = 2e-5;
    const LocalClusterResult acl = PushLocalCluster(graph, seed, push);
    table.AddRow({"ACL push", std::to_string(acl.set.size()),
                  FormatG(acl.stats.conductance, 4),
                  std::to_string(overlap(acl.set)),
                  std::to_string(acl.push.support),
                  FormatG(timer.Millis(), 3)});
  }

  {  // Spielman–Teng Nibble.
    timer.Reset();
    NibbleOptions nibble;
    nibble.steps = 60;
    nibble.epsilon = 2e-5;
    const NibbleResult st = Nibble(graph, seed, nibble);
    std::int64_t touched = 0;
    for (double v : st.distribution) {
      if (v > 0.0) ++touched;
    }
    table.AddRow({"ST Nibble", std::to_string(st.set.size()),
                  FormatG(st.stats.conductance, 4),
                  std::to_string(overlap(st.set)), std::to_string(touched),
                  FormatG(timer.Millis(), 3)});
  }

  {  // Heat-kernel relax.
    timer.Reset();
    HkRelaxOptions hk;
    hk.t = 12.0;
    hk.delta = 1e-5;
    const HkRelaxResult chung = HeatKernelRelax(graph, seed, hk);
    std::int64_t touched = 0;
    for (double v : chung.rho) {
      if (v > 0.0) ++touched;
    }
    table.AddRow({"heat-kernel relax", std::to_string(chung.set.size()),
                  FormatG(chung.stats.conductance, 4),
                  std::to_string(overlap(chung.set)),
                  std::to_string(touched), FormatG(timer.Millis(), 3)});
  }

  table.Print();
  std::printf("\nThe strongly local methods touch a few hundred nodes of a "
              "%d-node graph;\ntheir truncation steps are the implicit "
              "regularization of Section 3.3.\n",
              graph.NumNodes());
  return 0;
}
