// Community detection on a synthetic social network: the Figure-1
// experiment in miniature.
//
// Generates a whiskered power-law social graph (the paper's AtP-DBLP
// stand-in), runs the two approximation families — spectral
// (LocalSpectral-style push sweeps) and flow (Metis-like + MQI) — and
// prints the network community profile with the niceness measures of
// Figure 1(b,c). Watch the tradeoff: flow wins on conductance, spectral
// wins on niceness.

#include <cstdio>

#include "core/impreg.h"

using namespace impreg;

namespace {

void PrintProfile(const Graph& graph, const char* family,
                  const std::vector<NcpPoint>& profile) {
  Table table({"family", "size", "conductance", "avg_path", "ext/int",
               "connected", "method"});
  for (const NcpPoint& point : profile) {
    const NicenessReport nice = ComputeNiceness(graph, point.cluster.nodes);
    table.AddRow({family, std::to_string(point.size),
                  FormatG(point.conductance, 4),
                  FormatG(nice.avg_shortest_path, 4),
                  FormatG(nice.conductance_ratio, 4),
                  nice.connected ? "yes" : "no", point.cluster.method});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2012);
  SocialGraphParams params;
  params.core_nodes = 4000;
  params.num_communities = 12;
  params.min_community_size = 16;
  params.max_community_size = 200;
  params.num_whiskers = 80;
  const SocialGraph social = MakeWhiskeredSocialGraph(params, rng);
  const Graph& graph = social.graph;
  std::printf("social graph: n=%d, m=%lld, %zu planted communities, "
              "%zu whiskers\n\n",
              graph.NumNodes(), static_cast<long long>(graph.NumEdges()),
              social.communities.size(), social.whiskers.size());

  SpectralFamilyOptions spectral_options;
  spectral_options.num_seeds = 12;
  const auto spectral = SpectralFamilyClusters(graph, spectral_options);
  const auto flow = FlowFamilyClusters(graph);
  std::printf("spectral family produced %zu clusters, flow family %zu\n\n",
              spectral.size(), flow.size());

  const int kBins = 10;
  PrintProfile(graph, "spectral",
               BestPerSizeBin(spectral, kBins, graph.NumNodes() / 2));
  PrintProfile(graph, "flow",
               BestPerSizeBin(flow, kBins, graph.NumNodes() / 2));

  // How well do the methods recover a specific planted community?
  const auto& target = social.communities.back();
  PushOptions push;
  push.alpha = 0.05;
  push.epsilon = 1e-5;
  const LocalClusterResult found =
      PushLocalCluster(graph, target.front(), push);
  std::vector<char> truth(graph.NumNodes(), 0);
  for (NodeId u : target) truth[u] = 1;
  int overlap = 0;
  for (NodeId u : found.set) overlap += truth[u];
  std::printf("seeded recovery of a %zu-node planted community: found "
              "|S|=%zu, overlap=%d, conductance=%.4f\n",
              target.size(), found.set.size(), overlap,
              found.stats.conductance);
  return 0;
}
